//! State-space accounting: the census stays within the paper's envelopes
//! and far below the always-correct Ω(k²) bound.

use exact_plurality::prelude::*;

fn census_of_simple(n: usize, k: usize, seed: u64) -> usize {
    let counts = Counts::bias_one(n, k);
    let assignment = counts.assignment();
    let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(proto, states, seed);
    let mut census = Census::new();
    let r = sim.run_with_census(
        &RunOptions::with_parallel_time_budget(n, 300_000.0 * k as f64),
        &mut census,
    );
    assert_eq!(r.status, RunStatus::Converged, "census run must converge");
    census.len()
}

#[test]
fn simple_census_is_linear_in_k_not_quadratic() {
    // Doubling k roughly doubles the k-dependent share; it must stay far
    // from quadratic growth.
    let c4 = census_of_simple(800, 4, 1);
    let c8 = census_of_simple(800, 8, 1);
    assert!(c8 < 3 * c4, "k-growth too steep: census {c4} -> {c8}");
    // Both far below the always-correct Ω(k²)·constant regime at this size:
    // with C·(k + log n) and a generous per-item constant, a few thousand
    // states is the expected magnitude; k²·that would be tens of thousands.
    assert!(c8 < 8 * 8 * 150, "census {c8} is quadratic-scale");
}

#[test]
fn simple_census_grows_slowly_in_n() {
    let c1 = census_of_simple(600, 3, 2);
    let c2 = census_of_simple(2400, 3, 2);
    // ln(2400)/ln(600) ≈ 1.22: a 4x population pays well under 2x states.
    assert!(
        (c2 as f64) < 2.0 * c1 as f64,
        "n-growth too steep: {c1} -> {c2} for a 4x population"
    );
}

#[test]
fn encodings_distinguish_core_fields() {
    // Different opinions, phases and roles must encode differently; this is
    // what makes the census a sound lower bound on used state counts.
    use exact_plurality::core::roles::Agent;
    let counts = Counts::bias_one(600, 3);
    let assignment = counts.assignment();
    let (proto, _) = SimpleAlgorithm::new(&assignment, Tuning::default());
    let a1 = Agent::collector(1, -1, true);
    let a2 = Agent::collector(2, -1, true);
    let mut a3 = Agent::collector(1, -1, true);
    a3.phase = 0;
    let e = |a: &Agent| proto.encode(a);
    assert_ne!(e(&a1), e(&a2));
    assert_ne!(e(&a1), e(&a3));
}
