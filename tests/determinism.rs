//! Reproducibility: a fixed seed yields an identical trajectory, and
//! different seeds decorrelate.

use exact_plurality::prelude::*;

fn run_simple(seed: u64) -> (Option<u32>, u64) {
    let counts = Counts::bias_one(601, 3);
    let assignment = counts.assignment();
    let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(proto, states, seed);
    let r = sim.run(&RunOptions::with_parallel_time_budget(601, 500_000.0));
    (r.output, r.interactions)
}

#[test]
fn same_seed_same_run() {
    let a = run_simple(12345);
    let b = run_simple(12345);
    assert_eq!(a, b, "identical seeds must replay identically");
}

#[test]
fn different_seeds_differ_in_timing() {
    let (_, t1) = run_simple(1);
    let (_, t2) = run_simple(2);
    assert_ne!(
        t1, t2,
        "distinct seeds should not produce identical interaction counts"
    );
}

#[test]
fn improved_replays_identically() {
    let counts = Counts::one_large(1000, 9, 400);
    let assignment = counts.assignment();
    let run = |seed: u64| {
        let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(1000, 800_000.0));
        (r.output, r.interactions, *sim.protocol().milestones())
    };
    assert_eq!(run(777), run(777));
}
