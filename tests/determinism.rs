//! Reproducibility: a fixed seed yields an identical trajectory, and
//! different seeds decorrelate. The contract extends to the fault layer:
//! a fixed seed plus a fixed `FaultPlan` (and scheduler) replays the
//! strikes, the recovery bookkeeping, and the final configuration
//! identically on every engine.

use exact_plurality::majority::ThreeState;
use exact_plurality::prelude::*;

fn run_simple(seed: u64) -> (Option<u32>, u64) {
    let counts = Counts::bias_one(601, 3);
    let assignment = counts.assignment();
    let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(proto, states, seed);
    let r = sim.run(&RunOptions::with_parallel_time_budget(601, 500_000.0));
    (r.output, r.interactions)
}

#[test]
fn same_seed_same_run() {
    let a = run_simple(12345);
    let b = run_simple(12345);
    assert_eq!(a, b, "identical seeds must replay identically");
}

#[test]
fn different_seeds_differ_in_timing() {
    let (_, t1) = run_simple(1);
    let (_, t2) = run_simple(2);
    assert_ne!(
        t1, t2,
        "distinct seeds should not produce identical interaction counts"
    );
}

/// A run's observable trace, with fault records flattened through `Debug`
/// so `NaN` recovery times (never-recovered epochs) compare equal instead
/// of poisoning `==`.
fn trace(r: &RunResult) -> (Option<u32>, u64, String) {
    (r.output, r.interactions, format!("{:?}", r.faults))
}

#[test]
fn faulted_batch_runs_replay_identically() {
    let plan = FaultPlan::from_specs(
        &FaultSpec::parse_list("corrupt@20:0.2,churn@40:0.1").expect("specs parse"),
    );
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let run = |seed: u64| {
        let mut sim = BatchSimulation::new(ThreeState, vec![0, 600, 400], seed);
        trace(&sim.run_faulted(&opts, &plan))
    };
    assert_eq!(run(9), run(9), "same seed + same plan must replay");
    assert_ne!(run(9).1, run(10).1, "distinct seeds must decorrelate");
}

#[test]
fn scheduled_sequential_runs_replay_identically() {
    let plan =
        FaultPlan::from_specs(&FaultSpec::parse_list("inject@30:0.2:2").expect("spec parses"));
    let sched: SchedulerSpec = "pairbias:0.3".parse().expect("scheduler parses");
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 600, 400];
    let run = |seed: u64| {
        let states = SeqTable::<ThreeState>::initial_states(&init);
        let mut sim = Simulation::new(SeqTable::new(ThreeState), states, seed);
        sim.set_scheduler(sched.build());
        trace(&sim.run_faulted(&opts, &plan))
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn empty_fault_plan_replays_the_unfaulted_run() {
    // `run_faulted` with no hooks must be RNG-identical to `run` — the
    // fault layer may not perturb existing experiment trajectories.
    let plan = FaultPlan::new();
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 600, 400];

    let plain = BatchSimulation::new(ThreeState, init.clone(), 11).run(&opts);
    let faulted = BatchSimulation::new(ThreeState, init.clone(), 11).run_faulted(&opts, &plan);
    assert_eq!(trace(&plain), trace(&faulted), "batch");

    let plain = PairwiseBatchSimulation::new(ThreeState, init.clone(), 11).run(&opts);
    let faulted =
        PairwiseBatchSimulation::new(ThreeState, init.clone(), 11).run_faulted(&opts, &plan);
    assert_eq!(trace(&plain), trace(&faulted), "pairwise");

    let states = SeqTable::<ThreeState>::initial_states(&init);
    let plain = Simulation::new(SeqTable::new(ThreeState), states, 11).run(&opts);
    let states = SeqTable::<ThreeState>::initial_states(&init);
    let faulted = Simulation::new(SeqTable::new(ThreeState), states, 11).run_faulted(&opts, &plan);
    assert_eq!(trace(&plain), trace(&faulted), "seq");
}

#[test]
fn improved_replays_identically() {
    let counts = Counts::one_large(1000, 9, 400);
    let assignment = counts.assignment();
    let run = |seed: u64| {
        let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(1000, 800_000.0));
        (r.output, r.interactions, *sim.protocol().milestones())
    };
    assert_eq!(run(777), run(777));
}
