//! Cross-crate substrate checks: each building block delivers the guarantee
//! the plurality protocols lean on.

use exact_plurality::clocks::junta_clock::JuntaClockRun;
use exact_plurality::clocks::subpop::SubpopClocks;
use exact_plurality::dynamics::load_balance::discrepancy;
use exact_plurality::dynamics::{Epidemic, LoadBalance};
use exact_plurality::engine::{RunOptions, RunStatus, SimRng, Simulation};
use exact_plurality::leader::LeaderElectionRun;
use exact_plurality::majority::cancel_split::CancelSplitRun;
use rand::SeedableRng;

#[test]
fn epidemic_is_logarithmic_across_sizes() {
    for n in [1 << 10, 1 << 13] {
        let states = Epidemic::initial_states(n, 1);
        let mut sim = Simulation::new(Epidemic, states, 5);
        let r = sim.run(&RunOptions::default());
        let model = (n as f64).log2() + (n as f64).ln();
        assert!(
            r.parallel_time < 3.0 * model,
            "epidemic at n={n} took {} (model {model})",
            r.parallel_time
        );
    }
}

#[test]
fn load_balance_hits_the_band_within_logarithmic_time() {
    let n = 4096;
    let mut states = vec![0i64; n];
    states[0] = 2048;
    states[1] = -2048;
    let mut sim = Simulation::new(LoadBalance, states, 9);
    let r = sim.run(&RunOptions::with_parallel_time_budget(n, 10_000.0));
    assert_eq!(r.status, RunStatus::Converged);
    assert!(discrepancy(sim.states()) <= 2);
    assert!(r.parallel_time < 60.0 * (n as f64).ln());
}

#[test]
fn majority_is_exact_at_bias_one_over_seeds() {
    // Window 24: the reliable setting for the undiluted (no undecided
    // agents) standalone case — see the window sweep in the debug_majority
    // probe and experiment X14b. The in-tournament matches run diluted with
    // undecided players and get away with the smaller Tuning default.
    let mut wrong = 0;
    for seed in 0..10 {
        let (proto, states) = CancelSplitRun::new(1001, 1000, 0, 24);
        let n = states.len();
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 50_000.0));
        if r.output != Some(1) {
            wrong += 1;
        }
    }
    assert_eq!(wrong, 0, "{wrong}/10 bias-1 majorities failed");
}

#[test]
fn leader_election_is_unique_over_seeds() {
    for seed in 0..5 {
        let n = 2000;
        let mut rng = SimRng::seed_from_u64(100 + seed);
        let (proto, states) = LeaderElectionRun::new(n, 8, &mut rng);
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 300_000.0));
        assert_eq!(r.status, RunStatus::Converged, "seed {seed}");
        assert_eq!(r.output, Some(1), "seed {seed}: non-unique leader");
    }
}

#[test]
fn junta_clock_hours_strictly_increase() {
    let n = 8000;
    let (proto, states) = JuntaClockRun::new(n, 8);
    let mut sim = Simulation::new(proto, states, 3);
    sim.run(&RunOptions::with_parallel_time_budget(n, 1500.0));
    let marks = &sim.protocol().first_hour_at;
    assert!(marks.len() >= 2, "clock produced {} hours", marks.len());
    for w in marks.windows(2) {
        assert!(w[1] > w[0], "hour milestones must strictly increase");
    }
}

#[test]
fn subpopulation_clock_rate_orders_by_support() {
    // Three opinions with supports 4:2:1 — hours completed must order the
    // same way.
    let mut opinions = vec![1u16; 4000];
    opinions.extend(std::iter::repeat_n(2u16, 2000));
    opinions.extend(std::iter::repeat_n(3u16, 1000));
    let n = opinions.len();
    let (proto, states) = SubpopClocks::new(&opinions, 8);
    let mut sim = Simulation::new(proto, states, 17);
    sim.run(&RunOptions::with_parallel_time_budget(n, 6000.0));
    let h1 = sim.protocol().hours_of(1);
    let h2 = sim.protocol().hours_of(2);
    let h3 = sim.protocol().hours_of(3);
    assert!(h1 >= h2 && h2 >= h3, "hours not ordered: {h1} {h2} {h3}");
    assert!(
        h1 > h3,
        "largest opinion must be strictly fastest: {h1} vs {h3}"
    );
}
