//! Distribution-level consistency between the three schedulers.
//!
//! The sequential per-agent engine is the ground truth; the per-pair
//! configuration-space engine and the multinomial-tally engine must
//! reproduce its *observable statistics* (they are not trajectory-level
//! equivalent: both batch engines sample participants with replacement,
//! an `O(ℓ²/n)` per-batch approximation). For 3-state majority and USD,
//! at two population sizes each, we compare the median and IQR of the
//! parallel convergence time over a seed ensemble: medians must agree
//! within 15% (the workspace-wide tolerance) and spreads must stay within
//! a small factor of each other.

use exact_plurality::baselines::{Usd, UsdTable};
use exact_plurality::engine::{
    BatchSimulation, FaultPlan, FaultSpec, PairwiseBatchSimulation, Protocol, RunOptions,
    RunStatus, Simulation,
};
use exact_plurality::majority::ThreeState;

const TRIALS: u64 = 15;
const MEDIAN_TOLERANCE: f64 = 0.15;

/// Median and interquartile range.
fn median_iqr(mut times: Vec<f64>) -> (f64, f64) {
    assert!(!times.is_empty());
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |f: f64| times[((times.len() - 1) as f64 * f).round() as usize];
    (q(0.5), q(0.75) - q(0.25))
}

/// Assert that an engine's (median, IQR) matches the sequential
/// reference.
fn assert_consistent(label: &str, seq: (f64, f64), other: (f64, f64)) {
    let (med_s, iqr_s) = seq;
    let (med_o, iqr_o) = other;
    let rel = (med_o - med_s).abs() / med_s;
    assert!(
        rel < MEDIAN_TOLERANCE,
        "{label}: median {med_o:.2} vs sequential {med_s:.2} diverges ({rel:.3})"
    );
    // IQR at 15 samples is noisy: demand the same order of magnitude, not
    // equality. A degenerate (collapsed or exploded) spread still fails.
    let spread_floor = 0.02 * med_s;
    let (lo, hi) = (iqr_s.max(spread_floor), iqr_o.max(spread_floor));
    let ratio = (hi / lo).max(lo / hi);
    assert!(
        ratio < 5.0,
        "{label}: IQR {iqr_o:.2} vs sequential {iqr_s:.2} differ by {ratio:.1}x"
    );
}

/// Times of the sequential engine on an agent-level protocol. A fine
/// convergence-check stride (`n/16`) keeps detection-latency quantisation
/// well below the 15% budget.
fn seq_times<P: Protocol + Clone>(
    protocol: &P,
    states: &[P::State],
    n: usize,
    seed_base: u64,
) -> Vec<f64> {
    (0..TRIALS)
        .map(|i| {
            let mut sim = Simulation::new(protocol.clone(), states.to_vec(), seed_base + i);
            let opts = RunOptions {
                max_interactions: (n as u64) * 200_000,
                check_every: (n as u64 / 16).max(1),
            };
            let r = sim.run(&opts);
            assert_eq!(
                r.status,
                RunStatus::Converged,
                "sequential trial {i} exhausted"
            );
            r.parallel_time
        })
        .collect()
}

fn majority_counts(n: u64) -> Vec<u64> {
    vec![0, n * 11 / 20, n * 9 / 20]
}

fn usd_supports(n: usize) -> Vec<usize> {
    vec![n * 11 / 20, n - n * 11 / 20 - n / 5, n / 5]
}

#[test]
fn three_state_majority_engines_agree() {
    for n in [1_000u64, 20_000] {
        let states = ThreeState::initial_states((n * 11 / 20) as usize, (n * 9 / 20) as usize);
        let seq = median_iqr(seq_times(&ThreeState, &states, n as usize, 10));

        let opts = RunOptions {
            max_interactions: n * 200_000,
            check_every: 0,
        };
        let pairwise = median_iqr(
            (0..TRIALS)
                .map(|i| {
                    let mut sim =
                        PairwiseBatchSimulation::new(ThreeState, majority_counts(n), 2000 + i);
                    let r = sim.run(&opts);
                    assert_eq!(r.status, RunStatus::Converged);
                    r.parallel_time
                })
                .collect(),
        );
        let multinomial = median_iqr(
            (0..TRIALS)
                .map(|i| {
                    let mut sim = BatchSimulation::new(ThreeState, majority_counts(n), 3000 + i);
                    let r = sim.run(&opts);
                    assert_eq!(r.status, RunStatus::Converged);
                    r.parallel_time
                })
                .collect(),
        );

        assert_consistent(&format!("majority3 pairwise n={n}"), seq, pairwise);
        assert_consistent(&format!("majority3 multinomial n={n}"), seq, multinomial);
        assert_consistent(
            &format!("majority3 multinomial-vs-pairwise n={n}"),
            pairwise,
            multinomial,
        );
    }
}

#[test]
fn fault_recovery_times_agree_across_engines() {
    // The fault layer must not break cross-engine consistency: the same
    // strike (10% of a converged 3-state population scrambled at parallel
    // time 150) must yield statistically consistent recovery times on all
    // three engines, within the workspace tolerance.
    let n = 20_000u64;
    let plan =
        FaultPlan::from_specs(&FaultSpec::parse_list("corrupt@150:0.1").expect("spec parses"));

    let recovery = |r: &exact_plurality::engine::RunResult, label: &str, i: u64| -> f64 {
        assert_eq!(r.status, RunStatus::Converged, "{label} trial {i}");
        assert_eq!(r.faults.len(), 1, "{label} trial {i}");
        let f = &r.faults[0];
        assert!(f.recovered(), "{label} trial {i} never reconverged");
        assert!(f.recovery_time > 0.0, "{label} trial {i}");
        f.recovery_time
    };

    let states = ThreeState::initial_states((n * 11 / 20) as usize, (n * 9 / 20) as usize);
    let seq_opts = RunOptions {
        max_interactions: n * 200_000,
        check_every: (n / 16).max(1),
    };
    let seq = median_iqr(
        (0..TRIALS)
            .map(|i| {
                let mut sim = Simulation::new(ThreeState, states.clone(), 6000 + i);
                recovery(&sim.run_faulted(&seq_opts, &plan), "seq", i)
            })
            .collect(),
    );

    let opts = RunOptions {
        max_interactions: n * 200_000,
        check_every: 0,
    };
    let pairwise = median_iqr(
        (0..TRIALS)
            .map(|i| {
                let mut sim =
                    PairwiseBatchSimulation::new(ThreeState, majority_counts(n), 7000 + i);
                recovery(&sim.run_faulted(&opts, &plan), "pairwise", i)
            })
            .collect(),
    );
    let multinomial = median_iqr(
        (0..TRIALS)
            .map(|i| {
                let mut sim = BatchSimulation::new(ThreeState, majority_counts(n), 8000 + i);
                recovery(&sim.run_faulted(&opts, &plan), "multinomial", i)
            })
            .collect(),
    );

    assert_consistent("recovery pairwise", seq, pairwise);
    assert_consistent("recovery multinomial", seq, multinomial);
    assert_consistent("recovery multinomial-vs-pairwise", pairwise, multinomial);
}

#[test]
fn usd_engines_agree() {
    for n in [1_000usize, 20_000] {
        let supports = usd_supports(n);
        let opinions: Vec<u16> = supports
            .iter()
            .enumerate()
            .flat_map(|(i, &s)| std::iter::repeat_n(i as u16 + 1, s))
            .collect();
        let states = Usd::initial_states(&opinions);
        let seq = median_iqr(seq_times(&Usd, &states, n, 50));

        let table = || UsdTable::new(3);
        let init = table().initial_counts(&supports);
        let opts = RunOptions {
            max_interactions: (n as u64) * 200_000,
            check_every: 0,
        };
        let pairwise = median_iqr(
            (0..TRIALS)
                .map(|i| {
                    let mut sim = PairwiseBatchSimulation::new(table(), init.clone(), 4000 + i);
                    let r = sim.run(&opts);
                    assert_eq!(r.status, RunStatus::Converged);
                    r.parallel_time
                })
                .collect(),
        );
        let multinomial = median_iqr(
            (0..TRIALS)
                .map(|i| {
                    let mut sim = BatchSimulation::new(table(), init.clone(), 5000 + i);
                    let r = sim.run(&opts);
                    assert_eq!(r.status, RunStatus::Converged);
                    r.parallel_time
                })
                .collect(),
        );

        assert_consistent(&format!("usd pairwise n={n}"), seq, pairwise);
        assert_consistent(&format!("usd multinomial n={n}"), seq, multinomial);
        assert_consistent(
            &format!("usd multinomial-vs-pairwise n={n}"),
            pairwise,
            multinomial,
        );
    }
}
