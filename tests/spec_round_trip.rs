//! Property tests for the CLI/manifest spec grammars.
//!
//! Every fault-layer knob is a `Display`/`FromStr` pair — `--faults`,
//! `--scheduler`, `--adversary`, `--churn` and the run manifest all speak
//! the same spellings — so the printed form of any valid spec must parse
//! back to the identical value, and malformed spellings (fractions above
//! one, negative times, unknown kinds) must come back as `Err` usage
//! messages, never panics.

use exact_plurality::engine::{
    AdaptiveStrategy, AdversarySpec, Checkpoint, ChurnSpec, ChurnTarget, FaultSpec, SchedulerSpec,
};
use proptest::prelude::*;

/// Map an integer draw to a fraction in `[0, 1]` with a printable decimal.
fn frac(m: u32) -> f64 {
    f64::from(m) / 1000.0
}

proptest! {
    #[test]
    fn fault_specs_round_trip(
        kind in 0u8..3,
        at_m in 0u32..100_000,
        frac_m in 0u32..=1000,
        opinion in 0u32..10,
    ) {
        let at = f64::from(at_m) / 10.0;
        let frac = frac(frac_m);
        let spec = match kind {
            0 => FaultSpec::Corrupt { at, frac },
            1 => FaultSpec::Inject { at, frac, opinion },
            _ => FaultSpec::Churn { at, frac },
        };
        let printed = spec.to_string();
        prop_assert_eq!(printed.parse::<FaultSpec>(), Ok(spec));
        // The list grammar accepts what the scalar grammar accepts.
        prop_assert_eq!(FaultSpec::parse_list(&printed), Ok(vec![spec]));
    }

    #[test]
    fn scheduler_specs_round_trip(
        kind in 0u8..3,
        opinion in 0u32..10,
        weight_m in 1u32..=1000,
        assort_m in 0u32..=1000,
    ) {
        let spec = match kind {
            0 => SchedulerSpec::Uniform,
            1 => SchedulerSpec::PairBias { assort: frac(assort_m) },
            _ => SchedulerSpec::Starve { opinion, weight: frac(weight_m) },
        };
        let printed = spec.to_string();
        prop_assert_eq!(printed.parse::<SchedulerSpec>(), Ok(spec));
    }

    #[test]
    fn adversary_specs_round_trip(
        kind in 0u8..2,
        frac_m in 0u32..=1000,
        has_opinion in 0u8..2,
        opinion in 0u32..10,
        strategy in 0u8..3,
    ) {
        let spec = match kind {
            0 => AdversarySpec::Byzantine {
                frac: frac(frac_m),
                opinion: (has_opinion == 1).then_some(opinion),
            },
            _ => AdversarySpec::Adaptive {
                frac: frac(frac_m),
                strategy: match strategy {
                    0 => AdaptiveStrategy::BoostRunnerUp,
                    1 => AdaptiveStrategy::SuppressLeader,
                    _ => AdaptiveStrategy::Split,
                },
            },
        };
        let printed = spec.to_string();
        prop_assert_eq!(printed.parse::<AdversarySpec>(), Ok(spec));
    }

    #[test]
    fn churn_specs_round_trip(
        join_m in 0u32..=10_000,
        leave_m in 0u32..=10_000,
        target in 0u8..3,
    ) {
        let spec = ChurnSpec {
            join: frac(join_m),
            leave: frac(leave_m),
            target: match target {
                0 => ChurnTarget::Uniform,
                1 => ChurnTarget::Plurality,
                _ => ChurnTarget::Minority,
            },
        };
        let printed = spec.to_string();
        // `churn:R` folds the symmetric uniform case and targeted specs
        // always print all four fields — every spelling must parse back
        // to the same rates and target.
        prop_assert_eq!(printed.parse::<ChurnSpec>(), Ok(spec));
    }

    /// Corrupting any single byte of a serialized checkpoint (or cutting it
    /// short) must surface as `Err`, never a panic or abort — restore sits
    /// behind `--resume FILE` and eats whatever the filesystem hands it.
    #[test]
    fn mutated_checkpoints_never_panic(pos in 0usize..400, byte in 0u8..=255, cut in 0usize..400) {
        let good = demo_checkpoint_text();
        let mut bytes = good.clone().into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        if let Ok(text) = String::from_utf8(bytes) {
            // A mutation may happen to stay valid (e.g. rewriting a count
            // digit); the contract is only "no panic", so just run it.
            let _ = Checkpoint::from_text(&text);
        }
        // Cut strictly inside the trimmed body so the `end` marker (or
        // earlier content) is always severed; cutting only the trailing
        // newline would leave a still-valid checkpoint.
        let truncated = &good[..cut % good.trim_end().len()];
        prop_assert!(Checkpoint::from_text(truncated).is_err());
    }
}

/// A small well-formed `ppckpt v1` body for mutation testing.
fn demo_checkpoint_text() -> String {
    let ck = Checkpoint {
        engine: "batch".to_string(),
        interactions: 12_345,
        interactions_base: 1_000,
        time_base: 1.25,
        rng: [1, 2, 3, u64::MAX],
        counts: vec![0, 600, 400],
        states: Vec::new(),
        initial: vec![0, 600, 400],
        series: vec![exact_plurality::engine::ChurnSample {
            t: 2.5,
            population: 998,
            plurality_frac: 1.0,
            output: Some(1),
        }],
    };
    ck.to_text()
}

#[test]
fn malformed_specs_are_usage_errors_not_panics() {
    // Fractions above one, negative times/rates, unknown kinds, trailing
    // or missing fields: every one must yield Err, never a panic, and the
    // message must echo the offending input so the CLI error names it.
    let bad_faults = [
        "corrupt@50:1.5",
        "corrupt@-3:0.1",
        "corrupt@nan:0.1",
        "inject@50:0.1",
        "inject@50:0.1:2:9",
        "churn@50:-0.1",
        "meteor@9:0.1",
        "corrupt@50",
        "",
    ];
    for bad in bad_faults {
        assert!(bad.parse::<FaultSpec>().is_err(), "{bad:?} should fail");
    }
    assert!(FaultSpec::parse_list("corrupt@50:0.1,meteor@9:0.1").is_err());

    let bad_schedulers = [
        "starve:1:0",
        "starve:1:1.5",
        "pairbias:2",
        "chaotic",
        "uniform:1",
    ];
    for bad in bad_schedulers {
        assert!(bad.parse::<SchedulerSpec>().is_err(), "{bad:?} should fail");
    }

    let bad_adversaries = [
        "byz:1.5",
        "byz:-0.1",
        "byz",
        "byz:0.1:2:3",
        "byz:0.1:-2",
        "sybil:0.1",
        "adaptive",
        "adaptive:1.5",
        "adaptive:-0.1",
        "adaptive:0.1:warp",
        "adaptive:0.1:boost-runnerup:2",
    ];
    for bad in bad_adversaries {
        assert!(bad.parse::<AdversarySpec>().is_err(), "{bad:?} should fail");
    }

    let bad_churn = [
        "churn:-1",
        "churn:inf",
        "churn:0.1:-0.2",
        "churn",
        "drizzle:0.1",
        "churn:0.1:0.1:everyone",
        // `uniform` is the *absence* of a target — only the 2/3-part
        // spellings denote it, keeping Display∘FromStr canonical.
        "churn:0.1:0.1:uniform",
        "churn:0.1:0.1:plurality:9",
    ];
    for bad in bad_churn {
        assert!(bad.parse::<ChurnSpec>().is_err(), "{bad:?} should fail");
    }
}
