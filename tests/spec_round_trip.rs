//! Property tests for the CLI/manifest spec grammars.
//!
//! Every fault-layer knob is a `Display`/`FromStr` pair — `--faults`,
//! `--scheduler`, `--adversary`, `--churn` and the run manifest all speak
//! the same spellings — so the printed form of any valid spec must parse
//! back to the identical value, and malformed spellings (fractions above
//! one, negative times, unknown kinds) must come back as `Err` usage
//! messages, never panics.

use exact_plurality::engine::{AdversarySpec, ChurnSpec, FaultSpec, SchedulerSpec};
use proptest::prelude::*;

/// Map an integer draw to a fraction in `[0, 1]` with a printable decimal.
fn frac(m: u32) -> f64 {
    f64::from(m) / 1000.0
}

proptest! {
    #[test]
    fn fault_specs_round_trip(
        kind in 0u8..3,
        at_m in 0u32..100_000,
        frac_m in 0u32..=1000,
        opinion in 0u32..10,
    ) {
        let at = f64::from(at_m) / 10.0;
        let frac = frac(frac_m);
        let spec = match kind {
            0 => FaultSpec::Corrupt { at, frac },
            1 => FaultSpec::Inject { at, frac, opinion },
            _ => FaultSpec::Churn { at, frac },
        };
        let printed = spec.to_string();
        prop_assert_eq!(printed.parse::<FaultSpec>(), Ok(spec));
        // The list grammar accepts what the scalar grammar accepts.
        prop_assert_eq!(FaultSpec::parse_list(&printed), Ok(vec![spec]));
    }

    #[test]
    fn scheduler_specs_round_trip(
        kind in 0u8..3,
        opinion in 0u32..10,
        weight_m in 1u32..=1000,
        assort_m in 0u32..=1000,
    ) {
        let spec = match kind {
            0 => SchedulerSpec::Uniform,
            1 => SchedulerSpec::PairBias { assort: frac(assort_m) },
            _ => SchedulerSpec::Starve { opinion, weight: frac(weight_m) },
        };
        let printed = spec.to_string();
        prop_assert_eq!(printed.parse::<SchedulerSpec>(), Ok(spec));
    }

    #[test]
    fn adversary_specs_round_trip(
        frac_m in 0u32..=1000,
        has_opinion in 0u8..2,
        opinion in 0u32..10,
    ) {
        let spec = AdversarySpec::Byzantine {
            frac: frac(frac_m),
            opinion: (has_opinion == 1).then_some(opinion),
        };
        let printed = spec.to_string();
        prop_assert_eq!(printed.parse::<AdversarySpec>(), Ok(spec));
    }

    #[test]
    fn churn_specs_round_trip(join_m in 0u32..=10_000, leave_m in 0u32..=10_000) {
        let spec = ChurnSpec {
            join: frac(join_m),
            leave: frac(leave_m),
        };
        let printed = spec.to_string();
        // `churn:R` folds the symmetric case — both spellings must parse
        // back to the same pair of rates.
        prop_assert_eq!(printed.parse::<ChurnSpec>(), Ok(spec));
    }
}

#[test]
fn malformed_specs_are_usage_errors_not_panics() {
    // Fractions above one, negative times/rates, unknown kinds, trailing
    // or missing fields: every one must yield Err, never a panic, and the
    // message must echo the offending input so the CLI error names it.
    let bad_faults = [
        "corrupt@50:1.5",
        "corrupt@-3:0.1",
        "corrupt@nan:0.1",
        "inject@50:0.1",
        "inject@50:0.1:2:9",
        "churn@50:-0.1",
        "meteor@9:0.1",
        "corrupt@50",
        "",
    ];
    for bad in bad_faults {
        assert!(bad.parse::<FaultSpec>().is_err(), "{bad:?} should fail");
    }
    assert!(FaultSpec::parse_list("corrupt@50:0.1,meteor@9:0.1").is_err());

    let bad_schedulers = [
        "starve:1:0",
        "starve:1:1.5",
        "pairbias:2",
        "chaotic",
        "uniform:1",
    ];
    for bad in bad_schedulers {
        assert!(bad.parse::<SchedulerSpec>().is_err(), "{bad:?} should fail");
    }

    let bad_adversaries = [
        "byz:1.5",
        "byz:-0.1",
        "byz",
        "byz:0.1:2:3",
        "byz:0.1:-2",
        "sybil:0.1",
    ];
    for bad in bad_adversaries {
        assert!(bad.parse::<AdversarySpec>().is_err(), "{bad:?} should fail");
    }

    let bad_churn = [
        "churn:-1",
        "churn:inf",
        "churn:0.1:-0.2",
        "churn",
        "drizzle:0.1",
    ];
    for bad in bad_churn {
        assert!(bad.parse::<ChurnSpec>().is_err(), "{bad:?} should fail");
    }
}
