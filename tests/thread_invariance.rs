//! Thread-count invariance: the bedrock reproducibility contract of the
//! threaded batch engine. Same seed ⇒ byte-identical trajectory at *any*
//! `set_threads` value — full runs, fault records, adversarial runs,
//! churned segment runs, and checkpoints. Thread counts are pure
//! scheduling; if any assertion here fails, parallelism has leaked into
//! the random stream.
//!
//! Populations sit above ~3×10⁶ so batch lengths (ℓ ≈ 0.627·√n) cross
//! the engine's internal parallel cutoff and the pooled path actually
//! runs when threads > 1.

use exact_plurality::engine::fault::ByzantineAdversary;
use exact_plurality::engine::{rng, ChurnProcess, ChurnSpec, SegmentRunner};
use exact_plurality::majority::ThreeState;
use exact_plurality::prelude::*;
use std::sync::Arc;

const N: u64 = 4_000_000;
const THREADS: [usize; 3] = [1, 2, 8];

fn init() -> Vec<u64> {
    vec![0, 2 * N / 3, N - 2 * N / 3]
}

/// A run's observable trace: everything `RunResult` carries, flattened
/// through `Debug` so `NaN` recovery times compare equal.
fn trace(r: &RunResult) -> String {
    format!("{r:?}")
}

#[test]
fn full_runs_are_byte_identical_across_thread_counts() {
    let opts = RunOptions::with_parallel_time_budget(N as usize, 4.0);
    let run = |threads: usize| {
        let mut sim = BatchSimulation::new(ThreeState, init(), 7001);
        sim.set_threads(threads);
        let r = sim.run(&opts);
        (trace(&r), sim.counts().to_vec(), sim.rng_state())
    };
    let want = run(1);
    for threads in &THREADS[1..] {
        assert_eq!(run(*threads), want, "threads = {threads}");
    }
}

#[test]
fn faulted_runs_replay_fault_records_at_any_thread_count() {
    let plan = FaultPlan::from_specs(
        &FaultSpec::parse_list("corrupt@1:0.2,churn@2:0.1").expect("specs parse"),
    );
    let opts = RunOptions::with_parallel_time_budget(N as usize, 4.0);
    let run = |threads: usize| {
        let mut sim = BatchSimulation::new(ThreeState, init(), 7002);
        sim.set_threads(threads);
        let r = sim.run_faulted(&opts, &plan);
        assert!(!r.faults.is_empty(), "the plan must actually strike");
        (trace(&r), sim.counts().to_vec(), sim.rng_state())
    };
    let want = run(1);
    for threads in &THREADS[1..] {
        assert_eq!(run(*threads), want, "threads = {threads}");
    }
}

#[test]
fn adversarial_runs_are_thread_count_invariant() {
    let opts = RunOptions::with_parallel_time_budget(N as usize, 3.0);
    let run = |threads: usize| {
        let mut sim = BatchSimulation::new(ThreeState, init(), 7003);
        sim.set_adversary(Arc::new(ByzantineAdversary {
            frac: 0.05,
            opinion: Some(2),
        }));
        sim.set_threads(threads);
        let r = sim.run(&opts);
        (trace(&r), sim.counts().to_vec(), sim.rng_state())
    };
    let want = run(1);
    for threads in &THREADS[1..] {
        assert_eq!(run(*threads), want, "threads = {threads}");
    }
}

#[test]
fn pairwise_engine_accepts_the_knob_as_a_no_op() {
    // The per-pair reference engine is serial; `set_threads` exists for
    // interface parity and must not perturb its stream.
    let opts = RunOptions::with_parallel_time_budget(100_000, 50.0);
    let run = |threads: usize| {
        let mut sim = PairwiseBatchSimulation::new(ThreeState, vec![0, 60_000, 40_000], 7004);
        sim.set_threads(threads);
        trace(&sim.run(&opts))
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn churned_segment_runs_and_checkpoints_are_identical() {
    let spec: ChurnSpec = "churn:0.002:0.002".parse().expect("churn spec");
    let drive = |threads: usize| {
        let mut runner = SegmentRunner::new(
            BatchSimulation::new(ThreeState, init(), rng::derive(7005, 1)),
            ChurnProcess::new(spec),
            init(),
        );
        runner.set_threads(threads);
        runner.advance_to(4.0);
        (
            runner.checkpoint().to_text(),
            format!("{:?}", runner.series()),
        )
    };
    let want = drive(1);
    for threads in &THREADS[1..] {
        assert_eq!(drive(*threads), want, "threads = {threads}");
    }
}

#[test]
fn a_resume_may_change_the_thread_count_mid_flight() {
    // Kill at t=2 on one thread, resume on eight (and vice versa): the
    // stitched trajectory must match the uninterrupted single-thread
    // run because checkpoints never record scheduling state.
    let spec: ChurnSpec = "churn:0.002:0.002".parse().expect("churn spec");
    let uninterrupted = {
        let mut runner = SegmentRunner::new(
            BatchSimulation::new(ThreeState, init(), rng::derive(7006, 1)),
            ChurnProcess::new(spec),
            init(),
        );
        runner.advance_to(4.0);
        runner.checkpoint().to_text()
    };
    for (first, second) in [(1usize, 8usize), (8, 1)] {
        let mut runner = SegmentRunner::new(
            BatchSimulation::new(ThreeState, init(), rng::derive(7006, 1)),
            ChurnProcess::new(spec),
            init(),
        );
        runner.set_threads(first);
        runner.advance_to(2.0);
        let ck = runner.checkpoint();
        let mut resumed = SegmentRunner::from_checkpoint(&ck, ThreeState, ChurnProcess::new(spec))
            .expect("checkpoint restores");
        resumed.set_threads(second);
        resumed.advance_to(4.0);
        assert_eq!(
            resumed.checkpoint().to_text(),
            uninterrupted,
            "threads {first} -> {second}"
        );
    }
}
