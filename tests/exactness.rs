//! End-to-end exactness: all three protocols identify the plurality on
//! bias-1 inputs across several shapes and seeds.

use exact_plurality::prelude::*;

fn run(
    make: impl Fn(&OpinionAssignment, Tuning) -> (ProtocolBox, Vec<exact_plurality::core::roles::Agent>),
    counts: &Counts,
    seed: u64,
    budget: f64,
) -> (RunResult, u32) {
    let assignment = counts.assignment();
    let expected = assignment.plurality();
    let (proto, states) = make(&assignment, Tuning::default());
    match proto {
        ProtocolBox::Simple(p) => {
            let mut sim = Simulation::new(p, states, seed);
            (
                sim.run(&RunOptions::with_parallel_time_budget(
                    assignment.n(),
                    budget,
                )),
                expected,
            )
        }
        ProtocolBox::Unordered(p) => {
            let mut sim = Simulation::new(p, states, seed);
            (
                sim.run(&RunOptions::with_parallel_time_budget(
                    assignment.n(),
                    budget,
                )),
                expected,
            )
        }
        ProtocolBox::Improved(p) => {
            let mut sim = Simulation::new(p, states, seed);
            (
                sim.run(&RunOptions::with_parallel_time_budget(
                    assignment.n(),
                    budget,
                )),
                expected,
            )
        }
    }
}

enum ProtocolBox {
    Simple(SimpleAlgorithm),
    Unordered(UnorderedAlgorithm),
    Improved(ImprovedAlgorithm),
}

fn simple(
    a: &OpinionAssignment,
    t: Tuning,
) -> (ProtocolBox, Vec<exact_plurality::core::roles::Agent>) {
    let (p, s) = SimpleAlgorithm::new(a, t);
    (ProtocolBox::Simple(p), s)
}

fn unordered(
    a: &OpinionAssignment,
    t: Tuning,
) -> (ProtocolBox, Vec<exact_plurality::core::roles::Agent>) {
    let (p, s) = UnorderedAlgorithm::new(a, t);
    (ProtocolBox::Unordered(p), s)
}

fn improved(
    a: &OpinionAssignment,
    t: Tuning,
) -> (ProtocolBox, Vec<exact_plurality::core::roles::Agent>) {
    let (p, s) = ImprovedAlgorithm::new(a, t);
    (ProtocolBox::Improved(p), s)
}

#[test]
fn simple_is_exact_on_bias_one_across_seeds() {
    let counts = Counts::bias_one(901, 3);
    for seed in 0..5 {
        let (r, expected) = run(simple, &counts, seed, 500_000.0);
        assert!(r.is_correct(expected), "seed {seed}: {r:?}");
    }
}

#[test]
fn unordered_is_exact_on_bias_one() {
    let counts = Counts::bias_one(901, 3);
    for seed in 0..3 {
        let (r, expected) = run(unordered, &counts, seed, 800_000.0);
        assert!(r.is_correct(expected), "seed {seed}: {r:?}");
    }
}

#[test]
fn improved_is_exact_on_the_theorem2_regime() {
    // x_max ≈ n^0.87 with many insignificant opinions.
    let counts = Counts::one_large(1500, 12, 600);
    for seed in 0..3 {
        let (r, expected) = run(improved, &counts, seed, 800_000.0);
        assert!(r.is_correct(expected), "seed {seed}: {r:?}");
    }
}

#[test]
fn plurality_in_last_position_is_found() {
    // The ordered protocol must carry the defender bit through k − 1
    // tournaments to the final opinion.
    let counts = Counts::from_supports(vec![200, 200, 200, 201]);
    let (r, expected) = run(simple, &counts, 3, 800_000.0);
    assert_eq!(expected, 4);
    assert!(r.is_correct(4), "{r:?}");
}

#[test]
fn heavy_tailed_landscape_converges() {
    let counts = Counts::zipf(1200, 8, 1.0);
    let (r, expected) = run(simple, &counts, 1, 900_000.0);
    assert!(r.is_correct(expected), "{r:?}");
}

#[test]
fn geometric_landscape_with_improved() {
    let counts = Counts::geometric(1200, 8, 0.5);
    let (r, expected) = run(improved, &counts, 2, 900_000.0);
    assert!(r.is_correct(expected), "{r:?}");
}
