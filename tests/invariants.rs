//! Property-based invariants spanning crates.

use exact_plurality::clocks::leaderless::circular_spread;
use exact_plurality::clocks::{LeaderlessClock, PhaseSchedule};
use exact_plurality::dynamics::balance;
use exact_plurality::majority::cancel_split::total_value;
use exact_plurality::majority::{CancelSplit, Verdict};
use exact_plurality::workloads::Counts;
use proptest::prelude::*;

proptest! {
    /// Discrete averaging preserves the sum and never widens the range.
    #[test]
    fn balance_preserves_sum_and_contracts(a in -1000i64..1000, b in -1000i64..1000) {
        let (x, y) = balance(a, b);
        prop_assert_eq!(x + y, a + b);
        prop_assert!(x >= a.min(b) && y <= a.max(b));
        prop_assert!(y - x <= 1 && y >= x);
    }

    /// Counts generators always produce a unique plurality and exact totals.
    #[test]
    fn counts_generators_are_well_formed(n in 60usize..4000, k in 2usize..12) {
        prop_assume!(n >= 2 * k);
        for c in [
            Counts::bias_one(n, k),
            Counts::zipf(n, k, 1.0),
            Counts::geometric(n, k, 0.6),
        ] {
            prop_assert_eq!(c.n(), n);
            prop_assert_eq!(c.k(), k);
            prop_assert!(c.bias() >= 1);
            prop_assert!(c.supports().iter().all(|&x| x >= 1));
        }
    }

    /// one_large keeps the requested plurality support exactly.
    #[test]
    fn one_large_is_exact(k in 3usize..20, xmax in 200usize..800) {
        let n = 2000usize;
        prop_assume!(xmax > n / (k - 1) + 1);
        let c = Counts::one_large(n, k, xmax);
        prop_assert_eq!(c.x_max(), xmax);
        prop_assert_eq!(c.n(), n);
    }

    /// The cancel/split majority's signed total is invariant for the whole
    /// undeclared epoch, under arbitrary interaction sequences.
    #[test]
    fn majority_value_invariant(
        seed in 0u64..1000,
        a in 1usize..30,
        b in 1usize..30,
        u in 0usize..30,
        steps in 0usize..3000,
    ) {
        use rand::{Rng, SeedableRng};
        let n = a + b + u;
        prop_assume!(n >= 2);
        // Window large enough that nobody declares within `steps`.
        let cfg = CancelSplit::with_tail(6, 10_000, 0);
        let mut states = Vec::new();
        states.extend(std::iter::repeat_n(cfg.init_state(Verdict::A), a));
        states.extend(std::iter::repeat_n(cfg.init_state(Verdict::B), b));
        states.extend(std::iter::repeat_n(cfg.init_state(Verdict::Tie), u));
        let before = total_value(&cfg, &states);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..steps {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i { j += 1; }
            let (lo, hi) = states.split_at_mut(i.max(j));
            let (x, y) = if i < j { (&mut lo[i], &mut hi[0]) } else { (&mut hi[0], &mut lo[j]) };
            cfg.interact(x, y);
        }
        prop_assert_eq!(total_value(&cfg, &states), before);
        // Levels never exceed the cap, signs stay in {-1,0,1}.
        for s in &states {
            prop_assert!(s.level <= cfg.levels());
            prop_assert!((-1..=1).contains(&s.sign));
        }
    }

    /// The leaderless clock keeps every counter within the period and the
    /// catch-up rule advances exactly one counter by exactly one.
    #[test]
    fn leaderless_clock_steps_are_unit(ga in 0u32..64, gb in 0u32..64) {
        let clock = LeaderlessClock::new(64);
        let (mut a, mut b) = (ga, gb);
        clock.interact(&mut a, &mut b);
        let moved = (a != ga) as u32 + (b != gb) as u32;
        prop_assert_eq!(moved, 1);
        prop_assert!(a < 64 && b < 64);
        let diff_a = (a + 64 - ga) % 64;
        let diff_b = (b + 64 - gb) % 64;
        prop_assert!(diff_a <= 1 && diff_b <= 1);
    }

    /// Phase schedules partition the period.
    #[test]
    fn schedule_partitions_period(lengths in prop::collection::vec(1u32..40, 1..12)) {
        let s = PhaseSchedule::from_lengths(&lengths);
        let mut counts = vec![0u32; lengths.len()];
        for g in 0..s.period() {
            counts[s.phase_of(g) as usize] += 1;
        }
        prop_assert_eq!(counts, lengths);
    }

    /// Circular spread is 0 for singletons and bounded by the period.
    #[test]
    fn spread_bounds(vals in prop::collection::vec(0u32..100, 1..50)) {
        let spread = circular_spread(&vals, 100);
        prop_assert!(spread < 100);
        if vals.iter().all(|&v| v == vals[0]) {
            prop_assert_eq!(spread, 0);
        }
    }
}
