//! Failure injection: deliberately under-provisioned constants must
//! degrade *gracefully* — wrong outputs or exhausted budgets are acceptable,
//! panics, livelocks past the budget, or corrupted convergence (mixed
//! winner reports) are not.

use exact_plurality::prelude::*;

fn drive(tuning: Tuning, seed: u64) -> RunResult {
    let counts = Counts::bias_one(401, 3);
    let assignment = counts.assignment();
    let (proto, states) = SimpleAlgorithm::new(&assignment, tuning);
    let mut sim = Simulation::new(proto, states, seed);
    sim.run(&RunOptions::with_parallel_time_budget(
        assignment.n(),
        50_000.0,
    ))
}

#[test]
fn skimpy_constants_never_panic() {
    for seed in 0..5 {
        let r = drive(Tuning::skimpy(), seed);
        // Either outcome is legal; the protocol must simply terminate the
        // simulation loop cleanly.
        assert!(r.interactions > 0);
        if r.status == RunStatus::Converged {
            assert!(r.output.is_some());
        }
    }
}

#[test]
fn tiny_match_window_degrades_not_explodes() {
    let tuning = Tuning {
        match_window: 1,
        match_tail_windows: 0,
        ..Tuning::default()
    };
    let mut correct = 0;
    for seed in 0..5 {
        let r = drive(tuning, seed);
        correct += usize::from(r.is_correct(1));
    }
    // No assertion on the success count itself — only that all runs ended
    // cleanly. Record the count so regressions in *either* direction are
    // visible in test logs.
    eprintln!("window=1 correctness: {correct}/5");
}

#[test]
fn unordered_with_skimpy_leader_patience_terminates() {
    let tuning = Tuning {
        leader_wait_factor: 0.5,
        ..Tuning::default()
    };
    let counts = Counts::bias_one(401, 3);
    let assignment = counts.assignment();
    for seed in 0..3 {
        let (proto, states) = UnorderedAlgorithm::new(&assignment, tuning);
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            100_000.0,
        ));
        assert!(r.interactions > 0);
        // With an impatient leader, `fin` may fire before any tournament:
        // the output is then whatever defender existed — wrong but clean.
        if r.status == RunStatus::Converged {
            assert!(r.output.is_some());
        }
    }
}

#[test]
fn improved_without_dominant_plurality_still_behaves() {
    // Theorem 2 assumes x_max > n^(1/2+ε); violate it (all opinions tiny
    // and equal-ish) and check for clean termination.
    let counts = Counts::bias_one(600, 20); // x_max = 31 ≈ n^0.54, marginal
    let assignment = counts.assignment();
    for seed in 0..2 {
        let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            200_000.0,
        ));
        assert!(r.interactions > 0);
    }
}
