//! Failure injection: deliberately under-provisioned constants and
//! deliberately hostile runtime conditions (state corruption, churn,
//! adversarial schedulers) must degrade *gracefully* — wrong outputs or
//! exhausted budgets are acceptable, panics, livelocks past the budget, or
//! corrupted convergence (mixed winner reports) are not. The fault-layer
//! tests cover all three engines.

use exact_plurality::majority::ThreeState;
use exact_plurality::prelude::*;

fn drive(tuning: Tuning, seed: u64) -> RunResult {
    let counts = Counts::bias_one(401, 3);
    let assignment = counts.assignment();
    let (proto, states) = SimpleAlgorithm::new(&assignment, tuning);
    let mut sim = Simulation::new(proto, states, seed);
    sim.run(&RunOptions::with_parallel_time_budget(
        assignment.n(),
        50_000.0,
    ))
}

#[test]
fn skimpy_constants_never_panic() {
    for seed in 0..5 {
        let r = drive(Tuning::skimpy(), seed);
        // Either outcome is legal; the protocol must simply terminate the
        // simulation loop cleanly.
        assert!(r.interactions > 0);
        if r.status == RunStatus::Converged {
            assert!(r.output.is_some());
        }
    }
}

#[test]
fn tiny_match_window_degrades_not_explodes() {
    let tuning = Tuning {
        match_window: 1,
        match_tail_windows: 0,
        ..Tuning::default()
    };
    let mut correct = 0;
    for seed in 0..20 {
        let r = drive(tuning, seed);
        correct += usize::from(r.is_correct(1));
    }
    // Recorded baseline: 15/20 correct (seeds 0..20, n = 401, k = 3). The
    // band is ±3σ of Binomial(20, 0.75): a crippled match window must
    // leave the protocol degraded-but-functional — a drop below half
    // correct means the tournament broke, a perfect score means the
    // window stopped mattering and the test lost its teeth.
    assert!(
        (9..20).contains(&correct),
        "window=1 correctness {correct}/20 outside the recorded band [9, 19]"
    );
}

#[test]
fn unordered_with_skimpy_leader_patience_terminates() {
    let tuning = Tuning {
        leader_wait_factor: 0.5,
        ..Tuning::default()
    };
    let counts = Counts::bias_one(401, 3);
    let assignment = counts.assignment();
    for seed in 0..3 {
        let (proto, states) = UnorderedAlgorithm::new(&assignment, tuning);
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            100_000.0,
        ));
        assert!(r.interactions > 0);
        // With an impatient leader, `fin` may fire before any tournament:
        // the output is then whatever defender existed — wrong but clean.
        if r.status == RunStatus::Converged {
            assert!(r.output.is_some());
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-layer injection: the same "degrade, never panic" contract on all
// three engines, under a hostile plan (half the population corrupted, then
// churned, then swamped with minority supporters) and an adversarial
// scheduler on top.

fn hostile_plan() -> FaultPlan {
    FaultPlan::from_specs(
        &FaultSpec::parse_list("corrupt@5:0.5,churn@10:0.5,inject@15:0.9:2").expect("specs parse"),
    )
}

fn assert_degrades_cleanly(r: &RunResult) {
    assert!(r.interactions > 0);
    assert_eq!(r.faults.len(), 3, "every scheduled hook fired");
    if r.status == RunStatus::Converged {
        assert!(r.output.is_some());
    }
    for f in &r.faults {
        // Recovery bookkeeping stays internally consistent even when the
        // strike prevents reconvergence.
        assert_eq!(f.recovered(), f.output_after.is_some());
    }
}

#[test]
fn hostile_faults_degrade_never_panic_on_batch_engine() {
    let sched: SchedulerSpec = "starve:1:0.25".parse().expect("scheduler parses");
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let mut sim = BatchSimulation::new(ThreeState, vec![0, 700, 300], 3);
    sim.set_scheduler(sched.build());
    assert_degrades_cleanly(&sim.run_faulted(&opts, &hostile_plan()));
}

#[test]
fn hostile_faults_degrade_never_panic_on_pairwise_engine() {
    let sched: SchedulerSpec = "pairbias:0.5".parse().expect("scheduler parses");
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let mut sim = PairwiseBatchSimulation::new(ThreeState, vec![0, 700, 300], 3);
    sim.set_scheduler(sched.build());
    assert_degrades_cleanly(&sim.run_faulted(&opts, &hostile_plan()));
}

#[test]
fn hostile_faults_degrade_never_panic_on_sequential_table_engine() {
    let sched: SchedulerSpec = "starve:2:0.5".parse().expect("scheduler parses");
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];
    let states = SeqTable::<ThreeState>::initial_states(&init);
    let mut sim = Simulation::new(SeqTable::new(ThreeState), states, 3);
    sim.set_scheduler(sched.build());
    assert_degrades_cleanly(&sim.run_faulted(&opts, &hostile_plan()));
}

#[test]
fn corrupting_a_paper_protocol_mid_run_terminates_cleanly() {
    let counts = Counts::bias_one(401, 3);
    let assignment = counts.assignment();
    let plan =
        FaultPlan::from_specs(&FaultSpec::parse_list("corrupt@100:0.3").expect("spec parses"));
    for seed in 0..3 {
        let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run_faulted(
            &RunOptions::with_parallel_time_budget(assignment.n(), 50_000.0),
            &plan,
        );
        assert!(r.interactions > 0);
        assert_eq!(r.faults.len(), 1, "seed {seed}");
        if r.status == RunStatus::Converged {
            assert!(r.output.is_some());
        }
    }
}

#[test]
fn improved_without_dominant_plurality_still_behaves() {
    // Theorem 2 assumes x_max > n^(1/2+ε); violate it (all opinions tiny
    // and equal-ish) and check for clean termination.
    let counts = Counts::bias_one(600, 20); // x_max = 31 ≈ n^0.54, marginal
    let assignment = counts.assignment();
    for seed in 0..2 {
        let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            200_000.0,
        ));
        assert!(r.interactions > 0);
    }
}
