//! The adversarial-runtime layer: Byzantine lying adversaries, steady-state
//! churn, and crash-safe checkpoint/restore must honor two contracts. First,
//! *identity*: an empty adversary (zero lying fraction, or a forged opinion
//! the protocol cannot materialize) and an absent churn process leave every
//! engine on the exact RNG trajectory of a plain `run()`. Second,
//! *determinism*: the same seed and the same `byz:` spec produce the same
//! fault records on the sequential and per-pair engines, and the multinomial
//! engine's recovery statistics stay inside the 15% cross-engine tolerance
//! band the equivalence suite already enforces.

use std::sync::Arc;

use exact_plurality::engine::{
    AdversarySpec, Checkpoint, ChurnProcess, ChurnSpec, RunNote, StarveScheduler,
};
use exact_plurality::majority::ThreeState;
use exact_plurality::prelude::*;

fn byz(spec: &str) -> Arc<dyn exact_plurality::engine::Adversary> {
    spec.parse::<AdversarySpec>().expect("spec parses").build()
}

// ---------------------------------------------------------------------------
// Identity: an adversary that never lies is no adversary at all.

#[test]
fn zero_fraction_adversary_keeps_rng_identity_on_all_engines() {
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];

    let states = SeqTable::<ThreeState>::initial_states(&init);
    let mut plain = Simulation::new(SeqTable::new(ThreeState), states.clone(), 11);
    let mut byzed = Simulation::new(SeqTable::new(ThreeState), states, 11);
    byzed.set_adversary(byz("byz:0"));
    let (rp, rb) = (plain.run(&opts), byzed.run(&opts));
    assert_eq!(rp.interactions, rb.interactions);
    assert_eq!(rp.output, rb.output);
    assert_eq!(plain.states(), byzed.states());

    let mut plain = BatchSimulation::new(ThreeState, init.clone(), 11);
    let mut byzed = BatchSimulation::new(ThreeState, init.clone(), 11);
    byzed.set_adversary(byz("byz:0"));
    let (rp, rb) = (plain.run(&opts), byzed.run(&opts));
    assert_eq!(rp.interactions, rb.interactions);
    assert_eq!(plain.counts(), byzed.counts());
    assert_eq!(plain.rng_state(), byzed.rng_state());

    let mut plain = PairwiseBatchSimulation::new(ThreeState, init.clone(), 11);
    let mut byzed = PairwiseBatchSimulation::new(ThreeState, init, 11);
    byzed.set_adversary(byz("byz:0"));
    let (rp, rb) = (plain.run(&opts), byzed.run(&opts));
    assert_eq!(rp.interactions, rb.interactions);
    assert_eq!(plain.counts(), byzed.counts());
    assert_eq!(plain.rng_state(), byzed.rng_state());
}

#[test]
fn unmappable_forged_opinion_degrades_to_honesty_on_batch_engines() {
    // Opinion 9 has no state in ThreeState's table: the snapshot disables
    // the perturbation entirely rather than panicking mid-batch.
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];
    let mut plain = BatchSimulation::new(ThreeState, init.clone(), 4);
    let mut byzed = BatchSimulation::new(ThreeState, init, 4);
    byzed.set_adversary(byz("byz:0.3:9"));
    plain.run(&opts);
    byzed.run(&opts);
    assert_eq!(plain.counts(), byzed.counts());
    assert_eq!(plain.rng_state(), byzed.rng_state());
}

// ---------------------------------------------------------------------------
// Cross-engine determinism of the adversary layer.

#[test]
fn fault_records_match_across_seq_and_pairwise_under_byzantine_lies() {
    // Weak directed lying (5%, forging the majority opinion — a random
    // forgery would re-inject minority states forever and block ThreeState's
    // *exact* absorption predicate on every engine) around a mid-run
    // corruption: both engines converge to A before and after the strike,
    // so the structural record content — epoch, hook label, surrounding
    // outputs — must agree exactly. (The recovery *durations* differ: the
    // engines consume randomness differently.)
    let plan = FaultPlan::from_specs(&FaultSpec::parse_list("corrupt@40:0.4").expect("plan"));
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];

    let states = SeqTable::<ThreeState>::initial_states(&init);
    let mut seq = Simulation::new(SeqTable::new(ThreeState), states, 21);
    seq.set_adversary(byz("byz:0.05:1"));
    let rs = seq.run_faulted(&opts, &plan);

    let mut pw = PairwiseBatchSimulation::new(ThreeState, init, 21);
    pw.set_adversary(byz("byz:0.05:1"));
    let rp = pw.run_faulted(&opts, &plan);

    assert_eq!(rs.faults.len(), 1);
    assert_eq!(rp.faults.len(), 1);
    for (a, b) in rs.faults.iter().zip(&rp.faults) {
        assert_eq!(a.at.to_bits(), b.at.to_bits(), "strike epochs must agree");
        assert_eq!(a.hook, b.hook);
        assert_eq!(a.output_before, b.output_before);
        assert_eq!(a.output_after, b.output_after);
    }
    assert_eq!(rs.output, rp.output);
    assert_eq!(
        rs.output,
        Some(1),
        "directed lies must not block absorption"
    );
}

#[test]
fn batch_recovery_times_match_pairwise_within_tolerance_under_lies() {
    // The multinomial engine perturbs whole tallies (binomial lie splits)
    // rather than flipping per-pair coins; its recovery-time *median* over
    // trials must stay within the 15% band the engine-equivalence suite
    // uses for honest runs.
    let plan = FaultPlan::from_specs(&FaultSpec::parse_list("corrupt@20:0.5").expect("plan"));
    let opts = RunOptions::with_parallel_time_budget(10_000, 5_000.0);
    let init = vec![0u64, 7_000, 3_000];
    let trials = 25u64;

    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let mut batch_times = Vec::new();
    let mut pairwise_times = Vec::new();
    for seed in 0..trials {
        let mut sim = BatchSimulation::new(ThreeState, init.clone(), seed);
        sim.set_adversary(byz("byz:0.05:1"));
        let r = sim.run_faulted(&opts, &plan);
        batch_times.push(r.faults[0].recovery_time);

        let mut sim = PairwiseBatchSimulation::new(ThreeState, init.clone(), seed);
        sim.set_adversary(byz("byz:0.05:1"));
        let r = sim.run_faulted(&opts, &plan);
        pairwise_times.push(r.faults[0].recovery_time);
    }
    assert!(batch_times.iter().all(|t| t.is_finite()), "{batch_times:?}");
    assert!(
        pairwise_times.iter().all(|t| t.is_finite()),
        "{pairwise_times:?}"
    );
    let (mb, mp) = (median(batch_times), median(pairwise_times));
    assert!(
        (mb - mp).abs() / mp < 0.15,
        "batch median {mb} vs pairwise median {mp}"
    );
}

// ---------------------------------------------------------------------------
// Adaptive adversaries: frac = 0 is RNG-identical to clean, and a live
// fraction actually steers its lies by the census.

#[test]
fn zero_fraction_adaptive_adversary_keeps_rng_identity_on_all_engines() {
    // `adaptive:0[:any]` installs nothing: the census is never even read,
    // so every engine stays on the clean RNG trajectory byte for byte.
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];
    for spec in [
        "adaptive:0",
        "adaptive:0:suppress-leader",
        "adaptive:0:split",
    ] {
        let states = SeqTable::<ThreeState>::initial_states(&init);
        let mut plain = Simulation::new(SeqTable::new(ThreeState), states.clone(), 13);
        let mut adv = Simulation::new(SeqTable::new(ThreeState), states, 13);
        adv.set_adversary(byz(spec));
        let (rp, ra) = (plain.run(&opts), adv.run(&opts));
        assert_eq!(rp.interactions, ra.interactions, "{spec} seq");
        assert_eq!(plain.states(), adv.states(), "{spec} seq");

        let mut plain = BatchSimulation::new(ThreeState, init.clone(), 13);
        let mut adv = BatchSimulation::new(ThreeState, init.clone(), 13);
        adv.set_adversary(byz(spec));
        let (rp, ra) = (plain.run(&opts), adv.run(&opts));
        assert_eq!(rp.interactions, ra.interactions, "{spec} batch");
        assert_eq!(plain.counts(), adv.counts(), "{spec} batch");
        assert_eq!(plain.rng_state(), adv.rng_state(), "{spec} batch");

        let mut plain = PairwiseBatchSimulation::new(ThreeState, init.clone(), 13);
        let mut adv = PairwiseBatchSimulation::new(ThreeState, init.clone(), 13);
        adv.set_adversary(byz(spec));
        let (rp, ra) = (plain.run(&opts), adv.run(&opts));
        assert_eq!(rp.interactions, ra.interactions, "{spec} pairwise");
        assert_eq!(plain.counts(), adv.counts(), "{spec} pairwise");
        assert_eq!(plain.rng_state(), adv.rng_state(), "{spec} pairwise");
    }
}

#[test]
fn adaptive_lies_delay_absorption_at_least_as_much_as_fixed_lies() {
    // Head-to-head at the same fraction: a runner-up-boosting adaptive
    // adversary re-aims at whichever opinion is trailing *now*, so across
    // seeds it must block ThreeState's exact-absorption predicate at least
    // as often as a fixed minority-opinion lie.
    let opts = RunOptions::with_parallel_time_budget(1000, 2_000.0);
    let init = vec![0u64, 700, 300];
    let trials = 20u64;
    let blocked = |spec: &str| -> usize {
        (0..trials)
            .filter(|&seed| {
                let mut sim = BatchSimulation::new(ThreeState, init.clone(), seed);
                sim.set_adversary(byz(spec));
                sim.run(&opts).output.is_none()
            })
            .count()
    };
    let fixed = blocked("byz:0.05:2");
    let adaptive = blocked("adaptive:0.05:boost-runnerup");
    assert!(
        adaptive >= fixed,
        "adaptive lies blocked {adaptive}/{trials}, fixed lies {fixed}/{trials}"
    );
    assert!(
        adaptive > 0,
        "a 5% adaptive lie stream should block exact absorption sometimes"
    );
}

#[test]
fn adaptive_adversary_runs_deterministically_per_seed_on_all_engines() {
    let opts = RunOptions::with_parallel_time_budget(1000, 2_000.0);
    let init = vec![0u64, 600, 400];
    for spec in [
        "adaptive:0.1",
        "adaptive:0.1:suppress-leader",
        "adaptive:0.1:split",
    ] {
        let run_batch = |seed| {
            let mut sim = BatchSimulation::new(ThreeState, init.clone(), seed);
            sim.set_adversary(byz(spec));
            sim.run(&opts);
            (sim.counts().to_vec(), sim.rng_state())
        };
        assert_eq!(run_batch(5), run_batch(5), "{spec} batch");

        let run_pw = |seed| {
            let mut sim = PairwiseBatchSimulation::new(ThreeState, init.clone(), seed);
            sim.set_adversary(byz(spec));
            sim.run(&opts);
            (sim.counts().to_vec(), sim.rng_state())
        };
        assert_eq!(run_pw(5), run_pw(5), "{spec} pairwise");

        let run_seq = |seed| {
            let states = SeqTable::<ThreeState>::initial_states(&init);
            let mut sim = Simulation::new(SeqTable::new(ThreeState), states, seed);
            sim.set_adversary(byz(spec));
            sim.run(&opts);
            sim.states().to_vec()
        };
        assert_eq!(run_seq(5), run_seq(5), "{spec} seq");
    }
}

// ---------------------------------------------------------------------------
// Targeted churn: the uniform spelling keeps RNG identity, and plurality
// targeting visibly erodes the leader relative to uniform departures.

#[test]
fn uniform_target_churn_is_rng_identical_to_pr4_churn_on_all_engines() {
    // `churn:J:L` (no target) must stay byte-identical to the pre-target
    // implementation: same draws, same series, same final state.
    let init = vec![0u64, 700, 300];
    let spec: ChurnSpec = "churn:0.004:0.006".parse().expect("spec parses");
    assert_eq!(spec.target, exact_plurality::engine::ChurnTarget::Uniform);
    let churn = ChurnProcess::new(spec);
    let legacy = ChurnProcess::new(ChurnSpec {
        join: 0.004,
        leave: 0.006,
        ..ChurnSpec::default()
    });
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };

    let mut a = BatchSimulation::new(ThreeState, init.clone(), 17);
    let mut b = BatchSimulation::new(ThreeState, init.clone(), 17);
    let (ra, rb) = (
        a.run_churned(&opts, &churn, &init, 50.0),
        b.run_churned(&opts, &legacy, &init, 50.0),
    );
    assert_eq!(ra.interactions, rb.interactions);
    assert_eq!(a.counts(), b.counts());
    assert_eq!(a.rng_state(), b.rng_state());

    let mut a = PairwiseBatchSimulation::new(ThreeState, init.clone(), 17);
    let mut b = PairwiseBatchSimulation::new(ThreeState, init.clone(), 17);
    a.run_churned(&opts, &churn, &init, 50.0);
    b.run_churned(&opts, &legacy, &init, 50.0);
    assert_eq!(a.counts(), b.counts());
    assert_eq!(a.rng_state(), b.rng_state());

    let states = SeqTable::<ThreeState>::initial_states(&init);
    let mut a = Simulation::new(SeqTable::new(ThreeState), states.clone(), 17);
    let mut b = Simulation::new(SeqTable::new(ThreeState), states.clone(), 17);
    a.run_churned(&opts, &churn, &states, 50.0);
    b.run_churned(&opts, &legacy, &states, 50.0);
    assert_eq!(a.states(), b.states());
}

/// Two frozen opinion classes: interactions change nothing, so any drift
/// in the class split is attributable to churn alone.
#[derive(Debug, Clone)]
struct Frozen;
impl TableProtocol for Frozen {
    fn states(&self) -> usize {
        2
    }
    fn is_deterministic(&self) -> bool {
        true
    }
    fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        (a, b)
    }
    fn output(&self, _counts: &[u64]) -> Option<u32> {
        None
    }
    fn opinion(&self, s: usize) -> Option<u32> {
        Some(s as u32 + 1)
    }
}

#[test]
fn plurality_targeted_churn_erodes_the_leader_faster_than_uniform() {
    // Join-free, leave-only processes on a frozen 70/30 split: uniform
    // departures preserve the split in expectation, while plurality
    // targeting culls whichever class currently leads, dragging the
    // leader's share toward one half — on all three engines. Minority
    // targeting does the opposite and purifies the leader.
    let init = vec![700u64, 300];
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };
    let horizon = 20.0;
    let targeted = ChurnProcess::new("churn:0:0.05:plurality".parse().expect("spec parses"));
    let uniform = ChurnProcess::new("churn:0:0.05".parse().expect("spec parses"));
    let minority = ChurnProcess::new("churn:0:0.05:minority".parse().expect("spec parses"));

    let share_batch = |churn: &ChurnProcess| {
        let mut sim = BatchSimulation::new(Frozen, init.clone(), 9);
        sim.run_churned(&opts, churn, &init, horizon);
        sim.counts()[0] as f64 / sim.counts().iter().sum::<u64>() as f64
    };
    let share_pw = |churn: &ChurnProcess| {
        let mut sim = PairwiseBatchSimulation::new(Frozen, init.clone(), 9);
        sim.run_churned(&opts, churn, &init, horizon);
        sim.counts()[0] as f64 / sim.counts().iter().sum::<u64>() as f64
    };
    let share_seq = |churn: &ChurnProcess| {
        let states = SeqTable::<Frozen>::initial_states(&init);
        let mut sim = Simulation::new(SeqTable::new(Frozen), states.clone(), 9);
        sim.run_churned(&opts, churn, &states, horizon);
        let n = sim.states().len() as f64;
        sim.states().iter().filter(|&&s| s == 0).count() as f64 / n
    };
    for (engine, share) in [
        ("batch", &share_batch as &dyn Fn(&ChurnProcess) -> f64),
        ("pairwise", &share_pw),
        ("seq", &share_seq),
    ] {
        let (t, u, m) = (share(&targeted), share(&uniform), share(&minority));
        assert!(
            t < u - 0.05,
            "{engine}: plurality-targeted share {t} not below uniform {u}"
        );
        assert!(
            m > u + 0.05,
            "{engine}: minority-targeted share {m} not above uniform {u}"
        );
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore: a killed-and-resumed churned run replays exactly.

#[test]
fn checkpoint_resume_reproduces_uninterrupted_churned_run_on_batch_engine() {
    let init = vec![0u64, 7_000, 3_000];
    let churn = ChurnProcess::new(ChurnSpec {
        join: 0.002,
        leave: 0.002,
        ..ChurnSpec::default()
    });
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };

    let mut full = BatchSimulation::new(ThreeState, init.clone(), 33);
    let rf = full.run_churned(&opts, &churn, &init, 60.0);

    let mut first = BatchSimulation::new(ThreeState, init.clone(), 33);
    let r1 = first.run_churned(&opts, &churn, &init, 30.0);
    let ck = Checkpoint::of_batch(&first, &init, &r1.series);
    // Round-trip through the on-disk text format, as a real resume would.
    let ck = Checkpoint::from_text(&ck.to_text()).expect("checkpoint parses");
    let mut resumed = ck.restore_batch(ThreeState).expect("restore");
    let r2 = resumed.run_churned(&opts, &churn, &init, 60.0);

    assert_eq!(full.counts(), resumed.counts());
    assert_eq!(full.rng_state(), resumed.rng_state());
    assert_eq!(rf.interactions, r2.interactions);
    let stitched: Vec<_> = ck.series.iter().chain(&r2.series).collect();
    assert_eq!(rf.series.len(), stitched.len());
    for (a, b) in rf.series.iter().zip(stitched) {
        assert_eq!(a.t.to_bits(), b.t.to_bits());
        assert_eq!(a.population, b.population);
        assert_eq!(a.plurality_frac.to_bits(), b.plurality_frac.to_bits());
        assert_eq!(a.output, b.output);
    }
}

#[test]
fn checkpoint_resume_reproduces_uninterrupted_churned_run_on_seq_engine() {
    let init = vec![0u64, 700, 300];
    let states = SeqTable::<ThreeState>::initial_states(&init);
    let churn = ChurnProcess::new(ChurnSpec {
        join: 0.005,
        leave: 0.005,
        ..ChurnSpec::default()
    });
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };

    let mut full = Simulation::new(SeqTable::new(ThreeState), states.clone(), 8);
    let rf = full.run_churned(&opts, &churn, &states, 40.0);

    let mut first = Simulation::new(SeqTable::new(ThreeState), states.clone(), 8);
    let r1 = first.run_churned(&opts, &churn, &states, 20.0);
    let ck = Checkpoint::of_seq(&first, &init, &r1.series);
    let ck = Checkpoint::from_text(&ck.to_text()).expect("checkpoint parses");
    let mut resumed = ck.restore_seq(ThreeState).expect("restore");
    let r2 = resumed.run_churned(&opts, &churn, &states, 40.0);

    assert_eq!(full.states(), resumed.states());
    assert_eq!(rf.interactions, r2.interactions);
    assert_eq!(rf.series.len(), ck.series.len() + r2.series.len());
}

#[test]
fn churn_never_drains_the_population_below_two() {
    // A leave-heavy process must cap at the two-agent floor instead of
    // underflowing the engine's pair sampler.
    let init = vec![0u64, 30, 20];
    let churn = ChurnProcess::new(ChurnSpec {
        join: 0.0,
        leave: 0.5,
        ..ChurnSpec::default()
    });
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };
    let mut sim = BatchSimulation::new(ThreeState, init.clone(), 2);
    let r = sim.run_churned(&opts, &churn, &init, 200.0);
    assert!(sim.n() >= 2, "population drained to {}", sim.n());
    assert!(r.series.iter().all(|s| s.population >= 2));
}

// ---------------------------------------------------------------------------
// Scheduler saturation is surfaced, not silently spun.

/// Two states, both opinion 1, never converging: the only population a
/// weight-0 starve scheduler can fully veto.
#[derive(Debug, Clone)]
struct Monotone;
impl TableProtocol for Monotone {
    fn states(&self) -> usize {
        2
    }
    fn is_deterministic(&self) -> bool {
        true
    }
    fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        (a, b)
    }
    fn output(&self, _counts: &[u64]) -> Option<u32> {
        None
    }
    fn opinion(&self, _s: usize) -> Option<u32> {
        Some(1)
    }
}

#[test]
fn weight_zero_starvation_saturates_with_a_note_on_all_engines() {
    let sched = Arc::new(StarveScheduler {
        opinion: 1,
        weight: 0.0,
    });
    let opts = RunOptions {
        max_interactions: 2_000,
        check_every: 0,
    };

    let states = SeqTable::<Monotone>::initial_states(&[5, 5]);
    let mut seq = Simulation::new(SeqTable::new(Monotone), states, 1);
    seq.set_scheduler(sched.clone());
    let r = seq.run(&opts);
    assert_eq!(r.status, RunStatus::Exhausted);
    assert!(r.notes.contains(&RunNote::SchedulerSaturated), "{r:?}");

    let mut batch = BatchSimulation::new(Monotone, vec![5, 5], 1);
    batch.set_scheduler(sched.clone());
    let r = batch.run(&opts);
    assert_eq!(r.status, RunStatus::Exhausted);
    assert!(r.notes.contains(&RunNote::SchedulerSaturated), "{r:?}");

    let mut pw = PairwiseBatchSimulation::new(Monotone, vec![5, 5], 1);
    pw.set_scheduler(sched);
    let r = pw.run(&opts);
    assert_eq!(r.status, RunStatus::Exhausted);
    assert!(r.notes.contains(&RunNote::SchedulerSaturated), "{r:?}");
}

#[test]
fn partial_starvation_stays_unsaturated() {
    // A survivable weight must never flip the saturation note: the run
    // converges and the notes stay empty.
    let sched: SchedulerSpec = "starve:2:0.25".parse().expect("scheduler parses");
    let init = vec![0u64, 700, 300];
    let mut sim = BatchSimulation::new(ThreeState, init, 6);
    sim.set_scheduler(sched.build());
    let r = sim.run(&RunOptions::with_parallel_time_budget(1000, 5_000.0));
    assert!(r.notes.is_empty(), "{r:?}");
}
