//! The adversarial-runtime layer: Byzantine lying adversaries, steady-state
//! churn, and crash-safe checkpoint/restore must honor two contracts. First,
//! *identity*: an empty adversary (zero lying fraction, or a forged opinion
//! the protocol cannot materialize) and an absent churn process leave every
//! engine on the exact RNG trajectory of a plain `run()`. Second,
//! *determinism*: the same seed and the same `byz:` spec produce the same
//! fault records on the sequential and per-pair engines, and the multinomial
//! engine's recovery statistics stay inside the 15% cross-engine tolerance
//! band the equivalence suite already enforces.

use std::sync::Arc;

use exact_plurality::engine::{
    AdversarySpec, Checkpoint, ChurnProcess, ChurnSpec, RunNote, StarveScheduler,
};
use exact_plurality::majority::ThreeState;
use exact_plurality::prelude::*;

fn byz(spec: &str) -> Arc<dyn exact_plurality::engine::Adversary> {
    spec.parse::<AdversarySpec>().expect("spec parses").build()
}

// ---------------------------------------------------------------------------
// Identity: an adversary that never lies is no adversary at all.

#[test]
fn zero_fraction_adversary_keeps_rng_identity_on_all_engines() {
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];

    let states = SeqTable::<ThreeState>::initial_states(&init);
    let mut plain = Simulation::new(SeqTable::new(ThreeState), states.clone(), 11);
    let mut byzed = Simulation::new(SeqTable::new(ThreeState), states, 11);
    byzed.set_adversary(byz("byz:0"));
    let (rp, rb) = (plain.run(&opts), byzed.run(&opts));
    assert_eq!(rp.interactions, rb.interactions);
    assert_eq!(rp.output, rb.output);
    assert_eq!(plain.states(), byzed.states());

    let mut plain = BatchSimulation::new(ThreeState, init.clone(), 11);
    let mut byzed = BatchSimulation::new(ThreeState, init.clone(), 11);
    byzed.set_adversary(byz("byz:0"));
    let (rp, rb) = (plain.run(&opts), byzed.run(&opts));
    assert_eq!(rp.interactions, rb.interactions);
    assert_eq!(plain.counts(), byzed.counts());
    assert_eq!(plain.rng_state(), byzed.rng_state());

    let mut plain = PairwiseBatchSimulation::new(ThreeState, init.clone(), 11);
    let mut byzed = PairwiseBatchSimulation::new(ThreeState, init, 11);
    byzed.set_adversary(byz("byz:0"));
    let (rp, rb) = (plain.run(&opts), byzed.run(&opts));
    assert_eq!(rp.interactions, rb.interactions);
    assert_eq!(plain.counts(), byzed.counts());
    assert_eq!(plain.rng_state(), byzed.rng_state());
}

#[test]
fn unmappable_forged_opinion_degrades_to_honesty_on_batch_engines() {
    // Opinion 9 has no state in ThreeState's table: the snapshot disables
    // the perturbation entirely rather than panicking mid-batch.
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];
    let mut plain = BatchSimulation::new(ThreeState, init.clone(), 4);
    let mut byzed = BatchSimulation::new(ThreeState, init, 4);
    byzed.set_adversary(byz("byz:0.3:9"));
    plain.run(&opts);
    byzed.run(&opts);
    assert_eq!(plain.counts(), byzed.counts());
    assert_eq!(plain.rng_state(), byzed.rng_state());
}

// ---------------------------------------------------------------------------
// Cross-engine determinism of the adversary layer.

#[test]
fn fault_records_match_across_seq_and_pairwise_under_byzantine_lies() {
    // Weak directed lying (5%, forging the majority opinion — a random
    // forgery would re-inject minority states forever and block ThreeState's
    // *exact* absorption predicate on every engine) around a mid-run
    // corruption: both engines converge to A before and after the strike,
    // so the structural record content — epoch, hook label, surrounding
    // outputs — must agree exactly. (The recovery *durations* differ: the
    // engines consume randomness differently.)
    let plan = FaultPlan::from_specs(&FaultSpec::parse_list("corrupt@40:0.4").expect("plan"));
    let opts = RunOptions::with_parallel_time_budget(1000, 5_000.0);
    let init = vec![0u64, 700, 300];

    let states = SeqTable::<ThreeState>::initial_states(&init);
    let mut seq = Simulation::new(SeqTable::new(ThreeState), states, 21);
    seq.set_adversary(byz("byz:0.05:1"));
    let rs = seq.run_faulted(&opts, &plan);

    let mut pw = PairwiseBatchSimulation::new(ThreeState, init, 21);
    pw.set_adversary(byz("byz:0.05:1"));
    let rp = pw.run_faulted(&opts, &plan);

    assert_eq!(rs.faults.len(), 1);
    assert_eq!(rp.faults.len(), 1);
    for (a, b) in rs.faults.iter().zip(&rp.faults) {
        assert_eq!(a.at.to_bits(), b.at.to_bits(), "strike epochs must agree");
        assert_eq!(a.hook, b.hook);
        assert_eq!(a.output_before, b.output_before);
        assert_eq!(a.output_after, b.output_after);
    }
    assert_eq!(rs.output, rp.output);
    assert_eq!(
        rs.output,
        Some(1),
        "directed lies must not block absorption"
    );
}

#[test]
fn batch_recovery_times_match_pairwise_within_tolerance_under_lies() {
    // The multinomial engine perturbs whole tallies (binomial lie splits)
    // rather than flipping per-pair coins; its recovery-time *median* over
    // trials must stay within the 15% band the engine-equivalence suite
    // uses for honest runs.
    let plan = FaultPlan::from_specs(&FaultSpec::parse_list("corrupt@20:0.5").expect("plan"));
    let opts = RunOptions::with_parallel_time_budget(10_000, 5_000.0);
    let init = vec![0u64, 7_000, 3_000];
    let trials = 25u64;

    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let mut batch_times = Vec::new();
    let mut pairwise_times = Vec::new();
    for seed in 0..trials {
        let mut sim = BatchSimulation::new(ThreeState, init.clone(), seed);
        sim.set_adversary(byz("byz:0.05:1"));
        let r = sim.run_faulted(&opts, &plan);
        batch_times.push(r.faults[0].recovery_time);

        let mut sim = PairwiseBatchSimulation::new(ThreeState, init.clone(), seed);
        sim.set_adversary(byz("byz:0.05:1"));
        let r = sim.run_faulted(&opts, &plan);
        pairwise_times.push(r.faults[0].recovery_time);
    }
    assert!(batch_times.iter().all(|t| t.is_finite()), "{batch_times:?}");
    assert!(
        pairwise_times.iter().all(|t| t.is_finite()),
        "{pairwise_times:?}"
    );
    let (mb, mp) = (median(batch_times), median(pairwise_times));
    assert!(
        (mb - mp).abs() / mp < 0.15,
        "batch median {mb} vs pairwise median {mp}"
    );
}

// ---------------------------------------------------------------------------
// Checkpoint/restore: a killed-and-resumed churned run replays exactly.

#[test]
fn checkpoint_resume_reproduces_uninterrupted_churned_run_on_batch_engine() {
    let init = vec![0u64, 7_000, 3_000];
    let churn = ChurnProcess::new(ChurnSpec {
        join: 0.002,
        leave: 0.002,
    });
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };

    let mut full = BatchSimulation::new(ThreeState, init.clone(), 33);
    let rf = full.run_churned(&opts, &churn, &init, 60.0);

    let mut first = BatchSimulation::new(ThreeState, init.clone(), 33);
    let r1 = first.run_churned(&opts, &churn, &init, 30.0);
    let ck = Checkpoint::of_batch(&first, &init, &r1.series);
    // Round-trip through the on-disk text format, as a real resume would.
    let ck = Checkpoint::from_text(&ck.to_text()).expect("checkpoint parses");
    let mut resumed = ck.restore_batch(ThreeState);
    let r2 = resumed.run_churned(&opts, &churn, &init, 60.0);

    assert_eq!(full.counts(), resumed.counts());
    assert_eq!(full.rng_state(), resumed.rng_state());
    assert_eq!(rf.interactions, r2.interactions);
    let stitched: Vec<_> = ck.series.iter().chain(&r2.series).collect();
    assert_eq!(rf.series.len(), stitched.len());
    for (a, b) in rf.series.iter().zip(stitched) {
        assert_eq!(a.t.to_bits(), b.t.to_bits());
        assert_eq!(a.population, b.population);
        assert_eq!(a.plurality_frac.to_bits(), b.plurality_frac.to_bits());
        assert_eq!(a.output, b.output);
    }
}

#[test]
fn checkpoint_resume_reproduces_uninterrupted_churned_run_on_seq_engine() {
    let init = vec![0u64, 700, 300];
    let states = SeqTable::<ThreeState>::initial_states(&init);
    let churn = ChurnProcess::new(ChurnSpec {
        join: 0.005,
        leave: 0.005,
    });
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };

    let mut full = Simulation::new(SeqTable::new(ThreeState), states.clone(), 8);
    let rf = full.run_churned(&opts, &churn, &states, 40.0);

    let mut first = Simulation::new(SeqTable::new(ThreeState), states.clone(), 8);
    let r1 = first.run_churned(&opts, &churn, &states, 20.0);
    let ck = Checkpoint::of_seq(&first, &init, &r1.series);
    let ck = Checkpoint::from_text(&ck.to_text()).expect("checkpoint parses");
    let mut resumed = ck.restore_seq(ThreeState);
    let r2 = resumed.run_churned(&opts, &churn, &states, 40.0);

    assert_eq!(full.states(), resumed.states());
    assert_eq!(rf.interactions, r2.interactions);
    assert_eq!(rf.series.len(), ck.series.len() + r2.series.len());
}

#[test]
fn churn_never_drains_the_population_below_two() {
    // A leave-heavy process must cap at the two-agent floor instead of
    // underflowing the engine's pair sampler.
    let init = vec![0u64, 30, 20];
    let churn = ChurnProcess::new(ChurnSpec {
        join: 0.0,
        leave: 0.5,
    });
    let opts = RunOptions {
        max_interactions: u64::MAX,
        check_every: 0,
    };
    let mut sim = BatchSimulation::new(ThreeState, init.clone(), 2);
    let r = sim.run_churned(&opts, &churn, &init, 200.0);
    assert!(sim.n() >= 2, "population drained to {}", sim.n());
    assert!(r.series.iter().all(|s| s.population >= 2));
}

// ---------------------------------------------------------------------------
// Scheduler saturation is surfaced, not silently spun.

/// Two states, both opinion 1, never converging: the only population a
/// weight-0 starve scheduler can fully veto.
#[derive(Debug, Clone)]
struct Monotone;
impl TableProtocol for Monotone {
    fn states(&self) -> usize {
        2
    }
    fn is_deterministic(&self) -> bool {
        true
    }
    fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        (a, b)
    }
    fn output(&self, _counts: &[u64]) -> Option<u32> {
        None
    }
    fn opinion(&self, _s: usize) -> Option<u32> {
        Some(1)
    }
}

#[test]
fn weight_zero_starvation_saturates_with_a_note_on_all_engines() {
    let sched = Arc::new(StarveScheduler {
        opinion: 1,
        weight: 0.0,
    });
    let opts = RunOptions {
        max_interactions: 2_000,
        check_every: 0,
    };

    let states = SeqTable::<Monotone>::initial_states(&[5, 5]);
    let mut seq = Simulation::new(SeqTable::new(Monotone), states, 1);
    seq.set_scheduler(sched.clone());
    let r = seq.run(&opts);
    assert_eq!(r.status, RunStatus::Exhausted);
    assert!(r.notes.contains(&RunNote::SchedulerSaturated), "{r:?}");

    let mut batch = BatchSimulation::new(Monotone, vec![5, 5], 1);
    batch.set_scheduler(sched.clone());
    let r = batch.run(&opts);
    assert_eq!(r.status, RunStatus::Exhausted);
    assert!(r.notes.contains(&RunNote::SchedulerSaturated), "{r:?}");

    let mut pw = PairwiseBatchSimulation::new(Monotone, vec![5, 5], 1);
    pw.set_scheduler(sched);
    let r = pw.run(&opts);
    assert_eq!(r.status, RunStatus::Exhausted);
    assert!(r.notes.contains(&RunNote::SchedulerSaturated), "{r:?}");
}

#[test]
fn partial_starvation_stays_unsaturated() {
    // A survivable weight must never flip the saturation note: the run
    // converges and the notes stay empty.
    let sched: SchedulerSpec = "starve:2:0.25".parse().expect("scheduler parses");
    let init = vec![0u64, 700, 300];
    let mut sim = BatchSimulation::new(ThreeState, init, 6);
    sim.set_scheduler(sched.build());
    let r = sim.run(&RunOptions::with_parallel_time_budget(1000, 5_000.0));
    assert!(r.notes.is_empty(), "{r:?}");
}
