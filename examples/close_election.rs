//! A dead-heat election: exact consensus vs the undecided-state dynamics.
//!
//! 701 voters, two candidates, a one-vote margin. The classic
//! undecided-state dynamics (USD) reaches consensus fast but picks the
//! loser almost half the time — it solves *approximate* plurality only.
//! `SimpleAlgorithm` pays more time but gets the winner right
//! w.h.p. — the paper's core trade-off, measured over 10 runs of each.
//!
//! Run with: `cargo run --release --example close_election`

use exact_plurality::baselines::Usd;
use exact_plurality::prelude::*;

fn main() {
    let counts = Counts::bias_one(701, 2);
    let assignment = counts.assignment();
    let winner = assignment.plurality();
    println!(
        "election: {} voters, supports {:?}, true winner: candidate {winner}",
        assignment.n(),
        assignment.counts().supports()
    );

    let trials = 10;
    let mut usd_correct = 0;
    let mut exact_correct = 0;
    for seed in 0..trials {
        // USD baseline.
        let states = Usd::initial_states(assignment.opinions());
        let mut sim = Simulation::new(Usd, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            200_000.0,
        ));
        usd_correct += usize::from(r.is_correct(winner));

        // Exact protocol.
        let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            1_000_000.0,
        ));
        exact_correct += usize::from(r.is_correct(winner));
    }

    println!("undecided-state dynamics: {usd_correct}/{trials} correct (a coin flip at bias 1)");
    println!("SimpleAlgorithm:          {exact_correct}/{trials} correct");
}
