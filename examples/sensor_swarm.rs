//! Sensor swarm fault diagnosis — the unordered variant.
//!
//! A swarm of 1200 disposable sensors each observed one of six *fault
//! signatures*. Signatures are opaque hashes: there is no global numbering
//! the agents could agree on, so `SimpleAlgorithm`'s ordered tournament
//! schedule is unavailable — exactly the situation Appendix B addresses.
//! The `UnorderedAlgorithm` elects a leader among the tracker agents that
//! samples each tournament's challenger, and still returns the *exact*
//! most frequent signature even though the top two counts differ by one.
//!
//! Run with: `cargo run --release --example sensor_swarm`

use exact_plurality::prelude::*;

fn main() {
    // Six fault signatures; the two most frequent differ by a single
    // sensor: any sampling/approximate scheme is a coin flip here.
    let counts = Counts::from_supports(vec![281, 280, 200, 170, 150, 119]);
    let assignment = counts.assignment();
    println!(
        "swarm: {} sensors, {} fault signatures, supports {:?}",
        assignment.n(),
        assignment.k(),
        assignment.counts().supports()
    );

    let (protocol, states) = UnorderedAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(protocol, states, 7);
    let result = sim.run(&RunOptions::with_parallel_time_budget(
        assignment.n(),
        2_000_000.0,
    ));

    let n = assignment.n() as f64;
    let ms = *sim.protocol().milestones();
    println!(
        "timeline (parallel time): init {:.0} -> leader+defender {:.0} -> finished {:.0}",
        ms.init_end.map(|t| t as f64 / n).unwrap_or(f64::NAN),
        ms.le_done.map(|t| t as f64 / n).unwrap_or(f64::NAN),
        ms.fin.map(|t| t as f64 / n).unwrap_or(f64::NAN),
    );
    match result.output {
        Some(sig) if sig == assignment.plurality() => {
            println!("diagnosis: signature {sig} — correct despite the one-sensor margin")
        }
        Some(sig) => println!("diagnosis: signature {sig} — a w.h.p. failure run"),
        None => println!("no diagnosis within budget"),
    }
}
