//! Quickstart: exact plurality consensus with a one-agent lead.
//!
//! 900 anonymous agents hold one of three opinions; opinion 1 leads opinion
//! 2 by a *single agent*. The ordered `SimpleAlgorithm` still identifies it
//! w.h.p., which is precisely what "exact" plurality consensus means.
//!
//! Run with: `cargo run --release --example quickstart`

use exact_plurality::prelude::*;

fn main() {
    let counts = Counts::bias_one(900, 3);
    let assignment = counts.assignment();
    println!(
        "population: n = {}, k = {}, supports = {:?} (bias = {})",
        assignment.n(),
        assignment.k(),
        assignment.counts().supports(),
        assignment.counts().bias(),
    );

    let (protocol, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(protocol, states, 42);
    let result = sim.run(&RunOptions::with_parallel_time_budget(
        assignment.n(),
        1_000_000.0,
    ));

    let ms = sim.protocol().milestones();
    println!(
        "initialization ended after {:.0} parallel time",
        ms.init_end
            .map(|t| t as f64 / assignment.n() as f64)
            .unwrap_or(f64::NAN)
    );
    match result.output {
        Some(op) if op == assignment.plurality() => println!(
            "consensus on opinion {op} (the true plurality) after {:.0} parallel time",
            result.parallel_time
        ),
        Some(op) => println!(
            "consensus on opinion {op} — a failure run (the paper allows probability n^-Ω(1))"
        ),
        None => println!("no consensus within the budget"),
    }
}
