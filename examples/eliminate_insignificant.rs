//! Eliminating insignificant opinions — the paper's headline mechanism.
//!
//! One strong opinion (x_max = 800 ≈ n^0.87) faces fifteen splinter
//! opinions of ~80 agents each. The unordered algorithm would grind through
//! up to k − 1 = 15 tournaments; `ImprovedAlgorithm` runs one junta clock
//! per opinion during initialization, and when the strong opinion's clock
//! fires first, every opinion whose clock never ticked is pruned — no
//! tournament is ever held for it. The run prints how many opinions
//! survived pruning and compares total time against the unordered variant.
//!
//! Run with: `cargo run --release --example eliminate_insignificant`

use exact_plurality::core::roles::Role;
use exact_plurality::prelude::*;
use std::collections::BTreeSet;

fn main() {
    let counts = Counts::one_large(2000, 16, 800);
    let assignment = counts.assignment();
    println!(
        "population: n = {}, k = {}, x_max = {}",
        assignment.n(),
        assignment.k(),
        assignment.x_max()
    );

    // --- ImprovedAlgorithm, watching the pruning moment. ---
    let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(proto, states, 11);
    let mut surviving: Option<BTreeSet<u16>> = None;
    let result = sim.run_observed(
        &RunOptions::with_parallel_time_budget(assignment.n(), 2_000_000.0),
        |_, states| {
            if surviving.is_none() && states.iter().all(|s| s.phase >= 0) {
                let set: BTreeSet<u16> = states
                    .iter()
                    .filter_map(|s| match &s.role {
                        Role::Collector(c) if c.tokens > 0 => Some(c.opinion),
                        _ => None,
                    })
                    .collect();
                surviving = Some(set);
            }
        },
    );
    let improved_time = result.parallel_time;
    if let Some(set) = &surviving {
        println!(
            "after pruning, {} of {} opinions still hold tokens: {:?}",
            set.len(),
            assignment.k(),
            set
        );
    }
    match result.output {
        Some(op) => println!("improved: consensus on {op} after {improved_time:.0} parallel time"),
        None => println!("improved: no consensus within budget"),
    }

    // --- UnorderedAlgorithm on the same input, for the time contrast. ---
    let (proto, states) = UnorderedAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(proto, states, 11);
    let result = sim.run(&RunOptions::with_parallel_time_budget(
        assignment.n(),
        4_000_000.0,
    ));
    match result.output {
        Some(op) => println!(
            "unordered (no pruning): consensus on {op} after {:.0} parallel time ({:.1}x slower)",
            result.parallel_time,
            result.parallel_time / improved_time
        ),
        None => println!("unordered: no consensus within budget"),
    }
}
