//! Self-contained stand-in for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small surface it actually calls: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::SmallRng`]. The generator behind `SmallRng` is xoshiro256++
//! (the same family the real `SmallRng` uses on 64-bit targets), seeded
//! through SplitMix64; bounded sampling uses Lemire's unbiased
//! multiply-shift with rejection.
//!
//! Streams are *not* bit-compatible with the real crate — everything in
//! this workspace derives determinism from seeds alone, never from
//! specific stream values.

pub mod rngs;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only `seed_from_u64` is provided; the workspace
/// derives all seeds from `u64` stream keys.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top bit: xoshiro's high bits are its strongest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw from `0..range` (Lemire multiply-shift with
/// rejection). `range` must be non-zero.
#[inline]
pub fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (range as u128);
    let mut lo = m as u64;
    if lo < range {
        // Threshold = 2^64 mod range; draws with lo below it are biased.
        let t = range.wrapping_neg() % range;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (range as u128);
            lo = m as u64;
        }
    }
    let _ = x;
    (m >> 64) as u64
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The user-facing generator interface (blanket-implemented over
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
        assert_eq!(rng.gen_range(3u32..4), 3);
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[bounded_u64(&mut rng, 10) as usize] += 1;
        }
        let expect = trials as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
