//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++.
///
/// Mirrors the role of `rand::rngs::SmallRng` (which is also
/// xoshiro256-family on 64-bit targets). Not reproducible against the real
/// crate's streams — the workspace never relies on specific stream values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// The raw xoshiro256++ state words, for checkpointing.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from [`SmallRng::state`] output.
    ///
    /// The all-zero state is a fixed point of xoshiro and cannot be produced
    /// by this generator; restoring it would yield a degenerate stream, so it
    /// is replaced the same way `seed_from_u64` guards it.
    #[must_use]
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut x = state;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut x);
        }
        // All-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four zero words from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_short_cycles() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        for _ in 0..10_000 {
            assert_ne!(rng.next_u64(), first, "suspicious repeat");
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let ahead: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut restored = SmallRng::from_state(snapshot);
        let replay: Vec<u64> = (0..32).map(|_| restored.next_u64()).collect();
        assert_eq!(ahead, replay);
    }

    #[test]
    fn all_zero_state_is_rejected() {
        // The all-zero fixed point would emit zeros forever; the guard must
        // divert to a live stream. The first two outputs from the guard seed
        // coincide (s3 stays 0 for one step), so check a window, not a pair.
        let mut rng = SmallRng::from_state([0; 4]);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn bits_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(123);
        let mut ones = 0u64;
        let draws = 10_000;
        for _ in 0..draws {
            ones += u64::from(rng.next_u64().count_ones());
        }
        let frac = ones as f64 / (draws as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
