//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++.
///
/// Mirrors the role of `rand::rngs::SmallRng` (which is also
/// xoshiro256-family on 64-bit targets). Not reproducible against the real
/// crate's streams — the workspace never relies on specific stream values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut x = state;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut x);
        }
        // All-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four zero words from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_short_cycles() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        for _ in 0..10_000 {
            assert_ne!(rng.next_u64(), first, "suspicious repeat");
        }
    }

    #[test]
    fn bits_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(123);
        let mut ones = 0u64;
        let draws = 10_000;
        for _ in 0..draws {
            ones += u64::from(rng.next_u64().count_ones());
        }
        let frac = ones as f64 / (draws as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
