//! Self-contained stand-in for the subset of the `proptest` API used by
//! this workspace's property tests.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal random-case driver with the same call surface: the
//! [`proptest!`] macro over `arg in strategy` bindings, range and
//! `prop::collection::vec` strategies, and the `prop_assert*` /
//! `prop_assume!` macros. Each test runs 256 accepted cases from a fixed
//! seed (override with `PROPTEST_CASES` / `PROPTEST_SEED`); there is no
//! shrinking — failures report the raw case inputs.

use rand::rngs::SmallRng;

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// A value generator: the strategy's only job here is to sample.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy for `Vec`s with element strategy `S` and a length range.
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// `vec(element, len_range)`: vectors whose length is drawn from
        /// `len_range` and whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a proptest-style test needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Number of accepted cases to run per test.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Base seed for case generation.
pub fn seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CA5E)
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed(),
                );
                let target = $crate::cases();
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                while accepted < target {
                    attempts += 1;
                    assert!(
                        attempts <= target * 100,
                        "gave up: {accepted}/{target} cases accepted after {attempts} attempts \
                         (prop_assume! rejects too much)"
                    );
                    $(let $arg = ($strat).sample(&mut rng);)*
                    let case = format!(concat!($(stringify!($arg), " = {:?}  "),*), $(&$arg),*);
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property '{}' failed: {msg}\n  case: {case}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body (returns `Err` instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Reject the current case (redraw) unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 10u32..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn assume_filters_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_obeys_length_range(v in prop::collection::vec(1u32..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_case() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is not large");
            }
        }
        inner();
    }
}
