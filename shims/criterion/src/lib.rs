//! Self-contained stand-in for the subset of the `criterion` API used by
//! this workspace's benches.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small wall-clock benchmark harness with the same call surface:
//! benchmark groups, `Throughput`, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros. Reported numbers are the
//! median over `sample_size` timed samples after one warm-up sample;
//! there is no outlier analysis or HTML report.

use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation: per-iteration element or byte counts turn
/// elapsed time into rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are grouped. The shim times every routine call
/// individually, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output; many per batch in real criterion.
    SmallInput,
    /// Large setup output; few per batch in real criterion.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Accept (and mostly ignore) `cargo bench` CLI arguments; a bare
    /// non-flag argument is kept as a substring filter on benchmark names.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--verbose" => {}
                s if s.starts_with("--") => {
                    // Flags with values (e.g. --sample-size 10): skip value.
                    if let Some(next) = args.peek() {
                        if !next.starts_with("--") {
                            args.next();
                        }
                    }
                    let _ = s;
                }
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
            criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let filter = self.filter.clone();
        run_one(&filter, id, None, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many timed samples to collect (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(
            &self.criterion.filter,
            &full,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: &Option<String>,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    let mut ns = bencher.samples_ns;
    if ns.is_empty() {
        println!("{id}: no samples");
        return;
    }
    ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = ns[ns.len() / 2];
    let (lo, hi) = (ns[0], ns[ns.len() - 1]);
    let rate = throughput.map(|t| match t {
        Throughput::Elements(e) => format!("  {} elem/s", human(e as f64 / (median * 1e-9))),
        Throughput::Bytes(b) => format!("  {} B/s", human(b as f64 / (median * 1e-9))),
    });
    println!(
        "{id}: median {} [{} .. {}]{}",
        human_ns(median),
        human_ns(lo),
        human_ns(hi),
        rate.unwrap_or_default()
    );
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3} K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Collects timed samples of a routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` over `sample_size` samples (plus one warm-up).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; only the routine is on
    /// the clock.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // One warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
        c.bench_function("matching-name", |b| {
            b.iter(|| ran = true);
        });
        assert!(ran);
    }
}
