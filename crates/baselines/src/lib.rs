//! Comparison baselines for the paper's exact plurality protocols.
//!
//! The headline baseline is the k-opinion *undecided-state dynamics*
//! ([`usd`]): simple, fast (`O(log n)`-ish for large bias), but only
//! **approximately** correct — at bias `o(√(n·log n))` it picks the wrong
//! opinion with substantial probability. Experiment X13 reproduces the
//! paper's motivating contrast: USD's failure rate vs bias against the
//! exact protocols' success at bias 1.

pub mod usd;

pub use usd::{Usd, UsdTable};
