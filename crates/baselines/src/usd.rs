//! Undecided-state dynamics (USD) for `k` opinions.
//!
//! The classic opinion dynamics behind approximate plurality consensus
//! (cf. \[7\] and its predecessors): an opinionated agent meeting a
//! *different* opinion blanks its partner; a blank agent adopts the opinion
//! it next encounters. Consensus is reached quickly, but on close inputs the
//! winner is essentially a (support-weighted) lottery — USD solves
//! *approximate*, never *exact*, plurality.

use pp_engine::{Protocol, Replacement, SimRng};

/// USD agent: 0 = undecided, `1..=k` = opinion.
pub type UsdAgent = u16;

/// The k-opinion undecided-state dynamics.
#[derive(Debug, Clone, Default)]
pub struct Usd;

impl Usd {
    /// Initial states straight from per-agent opinions (1-based).
    pub fn initial_states(opinions: &[u16]) -> Vec<UsdAgent> {
        assert!(opinions.iter().all(|&o| o >= 1), "opinions are 1-based");
        opinions.to_vec()
    }
}

impl Protocol for Usd {
    type State = UsdAgent;

    #[inline]
    fn interact(&mut self, _t: u64, a: &mut u16, b: &mut u16, _rng: &mut SimRng) {
        match (*a, *b) {
            (0, 0) => {}
            (x, 0) => *b = x,
            (0, y) => *a = y,
            (x, y) if x != y => *b = 0,
            _ => {}
        }
    }

    fn converged(&self, states: &[u16]) -> Option<u32> {
        let first = states[0];
        (first != 0 && states.iter().all(|&s| s == first)).then(|| u32::from(first))
    }

    fn encode(&self, state: &u16) -> u64 {
        u64::from(*state)
    }

    fn fault_state(&self, replacement: &Replacement, _rng: &mut SimRng) -> Option<u16> {
        match *replacement {
            // `Usd` carries no opinion count, so a uniformly random state
            // is not well-defined here; use `UsdTable` (which knows `k`)
            // for corruption experiments.
            Replacement::Random | Replacement::Rejoin => None,
            Replacement::Opinion(o) => u16::try_from(o).ok(),
        }
    }

    fn opinion_of(&self, state: &u16) -> Option<u32> {
        (*state != 0).then(|| u32::from(*state))
    }
}

/// USD over a fixed opinion count `k`, as a deterministic transition table
/// for the batched configuration-space engine: state 0 is undecided,
/// states `1..=k` are the opinions.
#[derive(Debug, Clone)]
pub struct UsdTable {
    k: usize,
}

impl UsdTable {
    /// A table for `k` opinions.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self { k }
    }

    /// Initial configuration from a support vector (`supports[i]` agents
    /// hold opinion `i + 1`).
    pub fn initial_counts(&self, supports: &[usize]) -> Vec<u64> {
        assert_eq!(supports.len(), self.k);
        let mut counts = vec![0u64; self.k + 1];
        for (i, &s) in supports.iter().enumerate() {
            counts[i + 1] = s as u64;
        }
        counts
    }
}

impl pp_engine::TableProtocol for UsdTable {
    fn states(&self) -> usize {
        self.k + 1
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        match (a, b) {
            (0, 0) => (0, 0),
            (x, 0) => (x, x),
            (0, y) => (y, y),
            (x, y) if x != y => (x, 0),
            same => same,
        }
    }

    fn output(&self, counts: &[u64]) -> Option<u32> {
        if counts[0] != 0 {
            return None;
        }
        let mut winner = None;
        for (s, &c) in counts.iter().enumerate().skip(1) {
            if c > 0 {
                if winner.is_some() {
                    return None;
                }
                winner = Some(s as u32);
            }
        }
        winner
    }

    fn opinion(&self, s: usize) -> Option<u32> {
        (s >= 1).then_some(s as u32)
    }

    fn opinion_state(&self, opinion: u32) -> Option<usize> {
        (1..=self.k as u32)
            .contains(&opinion)
            .then_some(opinion as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{BatchSimulation, RunOptions, RunStatus, Simulation, TableProtocol};
    use pp_workloads::Counts;

    #[test]
    fn overwhelming_plurality_wins() {
        let counts = Counts::from_supports(vec![3000, 500, 500]);
        let a = counts.assignment();
        let states = Usd::initial_states(a.opinions());
        let mut sim = Simulation::new(Usd, states, 3);
        let r = sim.run(&RunOptions::with_parallel_time_budget(a.n(), 10_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    fn consensus_is_fast() {
        let counts = Counts::from_supports(vec![6000, 1000, 1000]);
        let a = counts.assignment();
        let states = Usd::initial_states(a.opinions());
        let mut sim = Simulation::new(Usd, states, 5);
        let r = sim.run(&RunOptions::with_parallel_time_budget(a.n(), 10_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert!(
            r.parallel_time < 20.0 * (a.n() as f64).ln(),
            "time {}",
            r.parallel_time
        );
    }

    #[test]
    fn bias_one_fails_often() {
        // The paper's motivation: USD is *approximate* — at bias 1 the
        // plurality opinion loses a non-trivial fraction of runs.
        let n = 400;
        let counts = Counts::bias_one(n, 2);
        let a = counts.assignment();
        let mut wrong = 0;
        let trials = 40;
        for seed in 0..trials {
            let states = Usd::initial_states(a.opinions());
            let mut sim = Simulation::new(Usd, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 50_000.0));
            if r.status == RunStatus::Converged && r.output != Some(1) {
                wrong += 1;
            }
        }
        assert!(
            wrong > 5,
            "USD should fail regularly at bias 1, failed {wrong}/{trials}"
        );
    }

    #[test]
    fn table_form_matches_agent_form() {
        let mut p = Usd;
        let t = UsdTable::new(4);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(9);
        for a in 0u16..5 {
            for b in 0u16..5 {
                let (mut x, mut y) = (a, b);
                p.interact(0, &mut x, &mut y, &mut rng);
                let (tx, ty) = t.delta(usize::from(a), usize::from(b), &mut rng);
                assert_eq!(
                    (usize::from(x), usize::from(y)),
                    (tx, ty),
                    "mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn million_agent_usd_with_large_bias() {
        let t = UsdTable::new(3);
        let counts = t.initial_counts(&[600_000, 250_000, 150_000]);
        let mut sim = BatchSimulation::new(t, counts, 21);
        let r = sim.run(&RunOptions {
            max_interactions: 300_000_000,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    fn undecided_agents_adopt() {
        let mut p = Usd;
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(1);
        let (mut a, mut b) = (0u16, 4u16);
        p.interact(0, &mut a, &mut b, &mut rng);
        assert_eq!((a, b), (4, 4));
        let (mut a, mut b) = (2u16, 3u16);
        p.interact(0, &mut a, &mut b, &mut rng);
        assert_eq!((a, b), (2, 0));
    }
}
