//! `cargo bench` driver that regenerates every paper table/figure in a
//! reduced "smoke" configuration (3 trials, default grids).
//!
//! Full-resolution tables: run the individual binaries, e.g.
//! `cargo run --release -p plurality-bench --bin x03_exactness -- --full --trials 50`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "x01_simple_scaling",
    "x02_state_census",
    "x03_exactness",
    "x04_unordered_scaling",
    "x05_improved_speedup",
    "x07_init",
    "x08_clocks",
    "x09_pruning",
    "x10_majority",
    "x11_leader",
    "x12_dynamics",
    "x13_usd_comparison",
    "x14_ablations",
    "x15_large_k",
    "x16_trajectories",
];

fn main() {
    // Under `cargo bench` extra args like `--bench` may be passed; ignore
    // everything — this driver always runs the smoke configuration.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let trials = std::env::var("PAPER_BENCH_TRIALS").unwrap_or_else(|_| "3".into());
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################ {exp} (trials = {trials}) ################");
        let status = Command::new(&cargo)
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "plurality-bench",
                "--bin",
                exp,
                "--",
                "--trials",
                &trials,
            ])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failed.push(*exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to launch: {e}");
                failed.push(*exp);
            }
        }
    }
    if !failed.is_empty() {
        panic!("experiments failed: {failed:?}");
    }
    println!("\nall paper experiments regenerated (smoke configuration)");
}
