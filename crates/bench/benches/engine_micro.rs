//! Criterion micro-benchmarks: raw interaction throughput of the engine
//! and of each protocol's transition function.
//!
//! These are *performance* benchmarks (interactions per second), not
//! reproduction experiments; the paper's tables live in the `x*` binaries
//! and the `paper_experiments` bench. The `configuration_space` group
//! pits the seed-style per-pair batch engine against the multinomial
//! engine on identical inputs — the acceptance bar for the batched
//! rewrite is ≥ 10× interactions/sec on 3-state majority at `n = 10⁶`
//! (see `BENCH_engine.json` for the recorded snapshot).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use plurality_core::{ImprovedAlgorithm, SimpleAlgorithm, Tuning, UnorderedAlgorithm};
use pp_baselines::{Usd, UsdTable};
use pp_dynamics::{Epidemic, LoadBalance};
use pp_engine::{BatchSimulation, PairwiseBatchSimulation, Protocol, Simulation};
use pp_majority::cancel_split::CancelSplitRun;
use pp_majority::ThreeState;
use pp_workloads::Counts;

const STEPS: u64 = 100_000;

fn bench_steps<P: Protocol>(c: &mut Criterion, name: &str, make: impl Fn() -> (P, Vec<P::State>)) {
    let mut group = c.benchmark_group("interactions");
    group.throughput(Throughput::Elements(STEPS));
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter_batched(
            || {
                let (proto, states) = make();
                Simulation::new(proto, states, 42)
            },
            |mut sim| {
                for _ in 0..STEPS {
                    sim.step();
                }
                sim
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Throughput of a configuration-space engine: interactions/sec while
/// advancing `target` interactions from a fresh configuration.
fn bench_config_engine<S>(
    c: &mut Criterion,
    name: &str,
    target: u64,
    make: impl Fn() -> S,
    step: impl Fn(&mut S) -> u64 + Copy,
) {
    let mut group = c.benchmark_group("configuration_space");
    group.throughput(Throughput::Elements(target));
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter_batched(
            &make,
            |mut sim| {
                let mut done = 0;
                while done < target {
                    done += step(&mut sim);
                }
                sim
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn config_space_benches(c: &mut Criterion) {
    let n = 1_000_000u64;
    let majority = || vec![0u64, n * 3 / 5, n * 2 / 5];
    // The seed engine: per-pair draws, linear-scan sampling.
    bench_config_engine(
        c,
        "majority3_pairwise_n1e6",
        1_000_000,
        || PairwiseBatchSimulation::new(ThreeState, majority(), 42),
        PairwiseBatchSimulation::step_batch,
    );
    // The multinomial engine on the same input.
    bench_config_engine(
        c,
        "majority3_multinomial_n1e6",
        1_000_000,
        || BatchSimulation::new(ThreeState, majority(), 42),
        BatchSimulation::step_batch,
    );
    // USD at k = 64: the Θ(S)-per-draw cost of the seed engine vs the
    // Fenwick/binomial path (65 states).
    let k = 64usize;
    let usd_counts = || {
        let table = UsdTable::new(k);
        table.initial_counts(&vec![(n as usize) / k; k])
    };
    bench_config_engine(
        c,
        "usd_k64_pairwise_n1e6",
        1_000_000,
        || PairwiseBatchSimulation::new(UsdTable::new(k), usd_counts(), 42),
        PairwiseBatchSimulation::step_batch,
    );
    bench_config_engine(
        c,
        "usd_k64_multinomial_n1e6",
        1_000_000,
        || BatchSimulation::new(UsdTable::new(k), usd_counts(), 42),
        BatchSimulation::step_batch,
    );
}

fn benches(c: &mut Criterion) {
    let n = 10_000;

    bench_steps(c, "epidemic", || (Epidemic, Epidemic::initial_states(n, 1)));
    bench_steps(c, "load_balance", || {
        let mut states = vec![0i64; n];
        states[0] = n as i64;
        (LoadBalance, states)
    });
    bench_steps(c, "usd_k8", || {
        let counts = Counts::bias_one(n, 8);
        (Usd, Usd::initial_states(counts.assignment().opinions()))
    });
    bench_steps(c, "cancel_split", || {
        CancelSplitRun::new(n / 2 + 1, n / 2 - 1, 0, 12)
    });
    bench_steps(c, "simple_k8", || {
        let counts = Counts::bias_one(n, 8);
        SimpleAlgorithm::new(&counts.assignment(), Tuning::default())
    });
    bench_steps(c, "unordered_k8", || {
        let counts = Counts::bias_one(n, 8);
        UnorderedAlgorithm::new(&counts.assignment(), Tuning::default())
    });
    bench_steps(c, "improved_k8", || {
        let counts = Counts::bias_one(n, 8);
        ImprovedAlgorithm::new(&counts.assignment(), Tuning::default())
    });
}

criterion_group!(micro, benches, config_space_benches);
criterion_main!(micro);
