//! Criterion micro-benchmarks: raw interaction throughput of the engine
//! and of each protocol's transition function.
//!
//! These are *performance* benchmarks (interactions per second), not
//! reproduction experiments; the paper's tables live in the `x*` binaries
//! and the `paper_experiments` bench.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use plurality_core::{ImprovedAlgorithm, SimpleAlgorithm, Tuning, UnorderedAlgorithm};
use pp_baselines::Usd;
use pp_dynamics::{Epidemic, LoadBalance};
use pp_engine::{Protocol, Simulation};
use pp_majority::cancel_split::CancelSplitRun;
use pp_workloads::Counts;

const STEPS: u64 = 100_000;

fn bench_steps<P: Protocol>(c: &mut Criterion, name: &str, make: impl Fn() -> (P, Vec<P::State>)) {
    let mut group = c.benchmark_group("interactions");
    group.throughput(Throughput::Elements(STEPS));
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter_batched(
            || {
                let (proto, states) = make();
                Simulation::new(proto, states, 42)
            },
            |mut sim| {
                for _ in 0..STEPS {
                    sim.step();
                }
                sim
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let n = 10_000;

    bench_steps(c, "epidemic", || (Epidemic, Epidemic::initial_states(n, 1)));
    bench_steps(c, "load_balance", || {
        let mut states = vec![0i64; n];
        states[0] = n as i64;
        (LoadBalance, states)
    });
    bench_steps(c, "usd_k8", || {
        let counts = Counts::bias_one(n, 8);
        (Usd, Usd::initial_states(counts.assignment().opinions()))
    });
    bench_steps(c, "cancel_split", || CancelSplitRun::new(n / 2 + 1, n / 2 - 1, 0, 12));
    bench_steps(c, "simple_k8", || {
        let counts = Counts::bias_one(n, 8);
        SimpleAlgorithm::new(&counts.assignment(), Tuning::default())
    });
    bench_steps(c, "unordered_k8", || {
        let counts = Counts::bias_one(n, 8);
        UnorderedAlgorithm::new(&counts.assignment(), Tuning::default())
    });
    bench_steps(c, "improved_k8", || {
        let counts = Counts::bias_one(n, 8);
        ImprovedAlgorithm::new(&counts.assignment(), Tuning::default())
    });
}

criterion_group!(micro, benches);
criterion_main!(micro);
