//! End-to-end smoke tests for the scenario registry, the `xp` driver
//! binary, and the run-manifest contract.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use plurality_bench::{registry, ExpOpts};

fn temp_out(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xp-smoke-{tag}-{}", std::process::id()))
}

#[test]
fn tiny_scenario_end_to_end_csv_and_manifest() {
    let out = temp_out("e2e");
    let opts = ExpOpts {
        trials: 2,
        out_dir: out.clone(),
        ..ExpOpts::default()
    };
    let scenario = registry::find("x17").expect("x17 registered");
    let manifest = registry::run_quiet(scenario, &opts).expect("x17 runs");

    let csv = fs::read_to_string(opts.csv_path("x17_adversarial_init")).expect("csv written");
    assert!(
        csv.starts_with("workload,n,k,bias,engine,ok,median,mean,ci95\n"),
        "unexpected CSV header: {}",
        csv.lines().next().unwrap_or("")
    );
    assert_eq!(csv.lines().count(), 5, "header + 4 workload rows:\n{csv}");

    let json = fs::read_to_string(&manifest).expect("manifest written");
    for field in [
        "\"scenario\": \"x17\"",
        "\"seed\":",
        "\"trials\": 2",
        "\"full\": false",
        "\"engine\": \"batch\"",
        "\"faults\": []",
        "\"scheduler\": null",
        "\"git_rev\":",
        "\"wall_s\":",
        "\"csv\": \"x17_adversarial_init.csv\"",
        "\"columns\": [\"workload\", \"n\", \"k\", \"bias\", \"engine\", \"ok\", \"median\", \"mean\", \"ci95\"]",
        "\"rows\": 4",
    ] {
        assert!(json.contains(field), "manifest missing {field}:\n{json}");
    }
    fs::remove_dir_all(&out).ok();
}

#[test]
fn same_seed_reproduces_identical_rows() {
    // The registry promise behind the xp ↔ legacy-shim parity criterion:
    // one scenario implementation, deterministic given (seed, trials).
    let scenario = registry::find("x17").expect("registered");
    let mut csvs = Vec::new();
    for tag in ["rep-a", "rep-b"] {
        let out = temp_out(tag);
        let opts = ExpOpts {
            trials: 2,
            out_dir: out.clone(),
            ..ExpOpts::default()
        };
        registry::run_quiet(scenario, &opts).expect("runs");
        csvs.push(fs::read_to_string(opts.csv_path("x17_adversarial_init")).expect("csv"));
        fs::remove_dir_all(&out).ok();
    }
    assert_eq!(csvs[0], csvs[1], "same seed must give identical CSV rows");
}

#[test]
fn fault_scenario_end_to_end_with_recovery_columns() {
    let out = temp_out("x18");
    let opts = ExpOpts {
        trials: 2,
        out_dir: out.clone(),
        ..ExpOpts::default()
    };
    let scenario = registry::find("x18").expect("x18 registered");
    registry::run_quiet(scenario, &opts).expect("x18 runs");

    let csv = fs::read_to_string(opts.csv_path("x18_fault_recovery")).expect("csv written");
    assert!(
        csv.starts_with("frac,protocol,n,engine,ok,median,recovery,survived\n"),
        "unexpected CSV header: {}",
        csv.lines().next().unwrap_or("")
    );
    // 4 corruption fractions × 3 arms.
    assert_eq!(csv.lines().count(), 13, "header + 12 rows:\n{csv}");
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        let recovery: f64 = fields[6].parse().expect("recovery parses as a number");
        assert!(
            recovery.is_finite() && recovery > 0.0,
            "expected nonzero recovery time in row: {line}"
        );
        assert_eq!(fields[7], "2/2", "winner must survive in row: {line}");
    }
    fs::remove_dir_all(&out).ok();
}

#[test]
fn fault_scenario_is_byte_identical_across_reruns() {
    // Determinism satellite: same seed + same fault plan ⇒ byte-identical
    // CSV, fault epochs and recovery bookkeeping included.
    let scenario = registry::find("x18").expect("registered");
    let mut csvs = Vec::new();
    for tag in ["x18-rep-a", "x18-rep-b"] {
        let out = temp_out(tag);
        let opts = ExpOpts {
            trials: 2,
            out_dir: out.clone(),
            ..ExpOpts::default()
        };
        registry::run_quiet(scenario, &opts).expect("runs");
        csvs.push(fs::read_to_string(opts.csv_path("x18_fault_recovery")).expect("csv"));
        fs::remove_dir_all(&out).ok();
    }
    assert_eq!(
        csvs[0], csvs[1],
        "same seed + same fault plan must give identical CSV bytes"
    );
}

#[test]
fn cli_fault_flags_override_scenario_and_land_in_manifest() {
    use pp_engine::FaultSpec;
    let out = temp_out("cli-faults");
    let opts = ExpOpts {
        trials: 2,
        out_dir: out.clone(),
        faults: FaultSpec::parse_list("corrupt@60:0.25").expect("valid"),
        scheduler: Some("pairbias:0.1".parse().expect("valid")),
        ..ExpOpts::default()
    };
    let scenario = registry::find("x18").expect("registered");
    let manifest = registry::run_quiet(scenario, &opts).expect("runs");
    let json = fs::read_to_string(&manifest).expect("manifest written");
    for field in [
        "\"faults\": [\"corrupt@60:0.25\"]",
        "\"scheduler\": \"pairbias:0.1\"",
    ] {
        assert!(json.contains(field), "manifest missing {field}:\n{json}");
    }
    fs::remove_dir_all(&out).ok();
}

#[test]
fn xp_binary_list_names_every_registered_scenario() {
    let output = Command::new(env!("CARGO_BIN_EXE_xp"))
        .arg("list")
        .output()
        .expect("xp runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    let listed: Vec<&str> = stdout
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    let registered: Vec<&str> = registry::scenarios().iter().map(|s| s.name).collect();
    assert_eq!(listed, registered, "xp list:\n{stdout}");
}

#[test]
fn malformed_flags_exit_2_without_panicking() {
    for args in [
        &["run", "x17", "--trials", "abc"][..],
        &["run", "x17", "--bogus"],
        &["--engine", "warp", "run", "x17"],
        &["frobnicate"],
        &[],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_xp"))
            .args(args)
            .output()
            .expect("xp runs");
        assert_eq!(output.status.code(), Some(2), "args {args:?}");
        let stderr = String::from_utf8(output.stderr).expect("utf8");
        assert!(stderr.contains("error:"), "args {args:?}: {stderr}");
        assert!(
            !stderr.contains("panicked"),
            "args {args:?} panicked: {stderr}"
        );
    }
}

#[test]
fn help_exits_0_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_xp"))
        .arg("--help")
        .output()
        .expect("xp runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("USAGE"), "{stdout}");
    assert!(stdout.contains("--engine"), "{stdout}");
}

#[test]
fn repeated_corruption_scenario_emits_fit_table() {
    let out = temp_out("x20");
    let opts = ExpOpts {
        trials: 2,
        out_dir: out.clone(),
        ..ExpOpts::default()
    };
    let scenario = registry::find("x20").expect("x20 registered");
    registry::run_quiet(scenario, &opts).expect("x20 runs");

    let csv = fs::read_to_string(opts.csv_path("x20_repeated_corruption")).expect("csv written");
    assert!(
        csv.starts_with("protocol,n,engine,ok,median,recovery,survived\n"),
        "unexpected CSV header: {}",
        csv.lines().next().unwrap_or("")
    );
    // 3 population sizes × 2 arms.
    assert_eq!(csv.lines().count(), 7, "header + 6 rows:\n{csv}");

    let fit = fs::read_to_string(opts.csv_path("x20_fit")).expect("fit csv written");
    assert!(
        fit.starts_with("protocol,a,b,r2,points\n"),
        "unexpected fit header: {}",
        fit.lines().next().unwrap_or("")
    );
    assert_eq!(
        fit.lines().count(),
        3,
        "header + one fit row per arm:\n{fit}"
    );
    for line in fit.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        let slope: f64 = fields[1].parse().expect("slope parses");
        let r2: f64 = fields[3].parse().expect("r2 parses");
        assert!(slope > 0.0, "recovery must grow with ln n: {line}");
        assert!(r2 > 0.5, "ln n must explain the growth: {line}");
    }
    fs::remove_dir_all(&out).ok();
}

#[test]
fn churn_soak_resumes_byte_identically_from_a_checkpoint() {
    // The crash-safety acceptance criterion, end to end through the xp
    // driver: an uninterrupted checkpointing soak and a second soak
    // resumed from one of its mid-run snapshots must emit byte-identical
    // series and summary CSVs.
    let scenario = registry::find("x22").expect("x22 registered");

    let out_full = temp_out("x22-full");
    let opts_full = ExpOpts {
        trials: 2,
        checkpoint_every: Some(80.0),
        out_dir: out_full.clone(),
        ..ExpOpts::default()
    };
    registry::run_quiet(scenario, &opts_full).expect("uninterrupted soak runs");
    let ckpt = opts_full.out_dir.join("x22_t80.ckpt");
    assert!(ckpt.exists(), "checkpoint written at the first boundary");

    let out_resumed = temp_out("x22-resumed");
    let opts_resumed = ExpOpts {
        trials: 2,
        checkpoint_every: Some(80.0),
        resume: Some(ckpt),
        out_dir: out_resumed.clone(),
        ..ExpOpts::default()
    };
    let manifest = registry::run_quiet(scenario, &opts_resumed).expect("resumed soak runs");

    for csv in ["x22_churn_series", "x22_churn_summary"] {
        let a = fs::read_to_string(opts_full.csv_path(csv)).expect("full csv");
        let b = fs::read_to_string(opts_resumed.csv_path(csv)).expect("resumed csv");
        assert_eq!(a, b, "{csv}.csv must be byte-identical after resume");
    }
    // The manifest records how the run was produced.
    let json = fs::read_to_string(&manifest).expect("manifest written");
    for field in ["\"checkpoint_every\": 80", "\"resume\": "] {
        assert!(json.contains(field), "manifest missing {field}:\n{json}");
    }

    fs::remove_dir_all(&out_full).ok();
    fs::remove_dir_all(&out_resumed).ok();
}
