//! Legacy shim: delegates to the registered `x09` scenario (`xp run x09`).
fn main() {
    plurality_bench::registry::shim_main("x09");
}
