//! Legacy shim: delegates to the registered `x07` scenario (`xp run x07`).
fn main() {
    plurality_bench::registry::shim_main("x07");
}
