//! Records engine throughput (interactions/sec) on 3-state majority into
//! `BENCH_engine.json` — the committed snapshot behind the batched-engine
//! acceptance numbers.
//!
//! Three engines at `n ∈ {10⁴, 10⁶, 10⁸}`:
//!
//! * `sequential` — per-agent scheduler (`Simulation::step`),
//! * `batch_pairwise` — the seed configuration-space engine (per-pair
//!   draws, linear-scan sampling),
//! * `batch_multinomial` — the Fenwick/multinomial engine.
//!
//! Each rate drives a fresh 60/40 configuration for a fixed interaction
//! budget well below the convergence horizon (so the configuration stays
//! mixed and the tally work is representative), repeating until ≥ 0.5 s of
//! wall clock has been accumulated.
//!
//! Usage: `cargo run --release -p plurality-bench --bin bench_engine
//! [-- path/to/BENCH_engine.json]`

use std::time::Instant;

use pp_engine::{BatchSimulation, PairwiseBatchSimulation, Simulation};
use pp_majority::ThreeState;

/// Repeat `run` — which simulates `target` interactions from a fresh
/// configuration and returns the seconds spent *stepping only* (setup such
/// as the per-agent state vector stays off the clock) — until half a
/// second of measured time accumulates; returns interactions per second.
fn rate(target: u64, mut run: impl FnMut() -> f64) -> f64 {
    // One warm-up (page-faults the allocations).
    run();
    let mut reps = 0u64;
    let mut secs = 0.0f64;
    while secs < 0.5 || reps < 2 {
        secs += run();
        reps += 1;
    }
    (reps * target) as f64 / secs
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());
    let grid: [u64; 3] = [10_000, 1_000_000, 100_000_000];
    let labels = ["1e4", "1e6", "1e8"];
    let counts = |n: u64| vec![0u64, n * 3 / 5, n * 2 / 5];

    let mut rows: Vec<(&str, Vec<f64>)> = Vec::new();

    let seq: Vec<f64> = grid
        .iter()
        .map(|&n| {
            // Cap the budget: pre-convergence and bounded wall clock.
            let target = (5 * n).min(30_000_000);
            rate(target, || {
                let states = ThreeState::initial_states((n * 3 / 5) as usize, (n * 2 / 5) as usize);
                let mut sim = Simulation::new(ThreeState, states, 42);
                let t0 = Instant::now();
                for _ in 0..target {
                    sim.step();
                }
                t0.elapsed().as_secs_f64()
            })
        })
        .collect();
    rows.push(("sequential", seq));

    let pairwise: Vec<f64> = grid
        .iter()
        .map(|&n| {
            let target = (5 * n).min(50_000_000);
            rate(target, || {
                let mut sim = PairwiseBatchSimulation::new(ThreeState, counts(n), 42);
                let t0 = Instant::now();
                while sim.interactions() < target {
                    sim.step_batch();
                }
                t0.elapsed().as_secs_f64()
            })
        })
        .collect();
    rows.push(("batch_pairwise", pairwise));

    let multinomial: Vec<f64> = grid
        .iter()
        .map(|&n| {
            let target = (5 * n).min(1_000_000_000);
            rate(target, || {
                let mut sim = BatchSimulation::new(ThreeState, counts(n), 42);
                let t0 = Instant::now();
                while sim.interactions() < target {
                    sim.step_batch();
                }
                t0.elapsed().as_secs_f64()
            })
        })
        .collect();
    rows.push(("batch_multinomial", multinomial));

    // Thread sweep on the multinomial engine at n = 1e8: 1/2/4/max
    // (deduplicated), same seed — the engine is thread-count-invariant, so
    // every sweep point simulates the byte-identical trajectory.
    let max_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut sweep_threads: Vec<usize> = [1usize, 2, 4, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    sweep_threads.dedup();
    let sweep_n = 100_000_000u64;
    let sweep: Vec<(usize, f64)> = sweep_threads
        .iter()
        .map(|&threads| {
            let target = 1_000_000_000u64;
            let r = rate(target, || {
                let mut sim = BatchSimulation::new(ThreeState, counts(sweep_n), 42);
                sim.set_threads(threads);
                let t0 = Instant::now();
                while sim.interactions() < target {
                    sim.step_batch();
                }
                t0.elapsed().as_secs_f64()
            });
            (threads, r)
        })
        .collect();
    // The threaded engine at --threads 1 IS the serial path (the pool
    // never engages), so it must not regress the untouched baseline row
    // beyond measurement noise.
    let serial_ratio = sweep[0].1 / rows[2].1[2];
    assert!(
        serial_ratio >= 0.8,
        "threads=1 sweep fell to {serial_ratio:.2}x of the serial multinomial rate"
    );

    println!("interactions/sec on 3-state majority (60/40 start):");
    println!(
        "{:>20} {:>12} {:>12} {:>12}",
        "engine", "n=1e4", "n=1e6", "n=1e8"
    );
    for (name, rates) in &rows {
        println!(
            "{name:>20} {:>12} {:>12} {:>12}",
            human(rates[0]),
            human(rates[1]),
            human(rates[2])
        );
    }
    let speedup = rows[2].1[1] / rows[1].1[1];
    println!("multinomial vs pairwise at n=1e6: {speedup:.1}x (acceptance bar: 10x)");
    println!("thread sweep, batch_multinomial at n=1e8 (of {max_threads} cores):");
    for &(threads, r) in &sweep {
        println!(
            "{:>20} {:>12}  ({:.2}x vs 1 thread)",
            format!("threads={threads}"),
            human(r),
            r / sweep[0].1
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"protocol\": \"three_state_majority\",\n");
    json.push_str("  \"configuration\": \"60/40 opinion split, pre-convergence budget\",\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p plurality-bench --bin bench_engine\",\n",
    );
    json.push_str(&format!("  \"threads_available\": {max_threads},\n"));
    json.push_str("  \"interactions_per_sec\": {\n");
    for (r, (name, rates)) in rows.iter().enumerate() {
        json.push_str(&format!("    \"{name}\": {{"));
        for (i, label) in labels.iter().enumerate() {
            json.push_str(&format!("\"{label}\": {:.0}", rates[i]));
            if i + 1 < labels.len() {
                json.push_str(", ");
            }
        }
        json.push('}');
        if r + 1 < rows.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  },\n");
    json.push_str("  \"threads_sweep_n1e8\": {");
    for (i, &(threads, r)) in sweep.iter().enumerate() {
        json.push_str(&format!("\"{threads}\": {r:.0}"));
        if i + 1 < sweep.len() {
            json.push_str(", ");
        }
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "  \"speedup_multinomial_vs_pairwise_n1e6\": {speedup:.2}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&path, json).expect("write BENCH_engine.json");
    eprintln!("wrote {path}");
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else {
        format!("{:.0}K", x / 1e3)
    }
}
