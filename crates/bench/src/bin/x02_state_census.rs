//! X2/X6 — State-space usage: `O(k + log n)` for `SimpleAlgorithm`,
//! `O(k·loglog n + log n)` for `ImprovedAlgorithm`.
//!
//! We count the *distinct agent states actually visited* over a full run
//! (canonical encodings, see `Machine::encode`) across a (k, n) grid. The
//! paper's claims show up as: the Simple census grows additively in k (slope
//! ≈ constant per opinion) and logarithmically in n; the Improved census
//! pays an extra log log n factor on the k term (the per-opinion clock
//! states) — both far below the `Ω(k²)` bound for always-correct protocols.

use plurality_bench::{run_trial, Algo, ExpOpts};
use plurality_core::Tuning;
use pp_stats::Table;
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let (n_grid, k_grid, fixed_k, fixed_n): (Vec<usize>, Vec<usize>, usize, usize) = if opts.full {
        (
            vec![500, 1000, 2000, 4000, 8000],
            vec![2, 4, 8, 16, 32],
            4,
            2000,
        )
    } else {
        (vec![500, 1000, 2000], vec![2, 4, 8], 4, 1000)
    };
    let algos = [Algo::Simple, Algo::Improved];

    let mut table = Table::new(
        "X2/X6: distinct states visited (max over trials)",
        &[
            "algo",
            "sweep",
            "n",
            "k",
            "states",
            "states/k",
            "states/ln n",
            "k^2 (lower bd.)",
        ],
    );

    let mut measure = |algo: Algo, sweep: &str, n: usize, k: usize, stream: u64| {
        let counts = Counts::bias_one(n, k);
        let budget = 5.0e3 * k as f64 + 3.0e4;
        let outcomes = opts.run_trials(stream, |seed| {
            run_trial(algo, &counts, seed, budget, Tuning::default(), true)
        });
        let states = outcomes.iter().filter_map(|o| o.census).max().unwrap_or(0);
        table.push(vec![
            algo.name().into(),
            sweep.into(),
            n.to_string(),
            k.to_string(),
            states.to_string(),
            format!("{:.1}", states as f64 / k as f64),
            format!("{:.1}", states as f64 / (n as f64).ln()),
            (k * k).to_string(),
        ]);
        eprintln!("  [{} {sweep}] n={n} k={k}: {states} states", algo.name());
    };

    for algo in algos {
        for (i, &k) in k_grid.iter().enumerate() {
            measure(algo, "k-sweep", fixed_n, k, (algo as u64) << 32 | i as u64);
        }
        for (i, &n) in n_grid.iter().enumerate() {
            measure(
                algo,
                "n-sweep",
                n,
                fixed_k,
                (algo as u64) << 32 | (100 + i as u64),
            );
        }
    }

    table.print();
    println!(
        "Read: the census grows roughly linearly in k and logarithmically in n for both \
         protocols, with Improved paying an extra loglog-factor on the k term — well below \
         the always-correct Ω(k²) state bound shown in the last column."
    );
    table
        .write_csv(opts.csv_path("x02_state_census"))
        .expect("write csv");
}
