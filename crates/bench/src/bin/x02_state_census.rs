//! Legacy shim: delegates to the registered `x02` scenario (`xp run x02`).
fn main() {
    plurality_bench::registry::shim_main("x02");
}
