//! Legacy shim: delegates to the registered `x01` scenario (`xp run x01`).
fn main() {
    plurality_bench::registry::shim_main("x01");
}
