//! X1 — Theorem 1(1) runtime: `SimpleAlgorithm` converges in O(k·log n).
//!
//! Two sweeps on bias-1 inputs: n at fixed k, and k at fixed n. For each
//! configuration we report the median parallel time; the summary fits
//! `time ≈ a·k·ln n` and reports the constant and R². The paper's claim
//! holds if the fit is tight (R² near 1) and the constant stable.
//!
//! A USD baseline arm runs on the same inputs through the batched
//! configuration-space engine (`--engine seq` for the sequential A/B);
//! with `--full` its grid extends to `n = 10⁸`, far beyond what the
//! per-agent protocols can reach.

use plurality_bench::{run_trial, run_usd_baseline, Algo, ExpOpts};
use plurality_core::Tuning;
use pp_stats::{fit_through_origin, Summary, Table};
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let (n_grid, k_grid, fixed_k, fixed_n): (Vec<usize>, Vec<usize>, usize, usize) = if opts.full {
        (
            vec![1000, 2000, 4000, 8000, 16000],
            vec![2, 3, 4, 6, 8, 12],
            3,
            4000,
        )
    } else {
        (vec![600, 1200, 2400], vec![2, 3, 4, 6], 3, 1200)
    };
    let mut table = Table::new(
        "X1: SimpleAlgorithm parallel time on bias-1 inputs",
        &[
            "sweep",
            "n",
            "k",
            "ok",
            "median",
            "mean",
            "ci95",
            "t/(k·ln n)",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();

    let mut measure = |sweep: &str, n: usize, k: usize, stream: u64| {
        let counts = Counts::bias_one(n, k);
        let budget = 4.0e3 * k as f64 + 2.0e4;
        let outcomes = opts.run_trials(stream, |seed| {
            run_trial(
                Algo::Simple,
                &counts,
                seed,
                budget,
                Tuning::default(),
                false,
            )
        });
        let ok = outcomes.iter().filter(|o| o.correct).count();
        let times: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.converged)
            .map(|o| o.parallel_time)
            .collect();
        if times.is_empty() {
            eprintln!("  [{sweep}] n={n} k={k}: no convergence!");
            return;
        }
        let s = Summary::of(&times);
        let x = k as f64 * (n as f64).ln();
        xs.push(x);
        ys.push(s.median);
        table.push(vec![
            sweep.into(),
            n.to_string(),
            k.to_string(),
            format!("{ok}/{}", outcomes.len()),
            format!("{:.0}", s.median),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.ci95()),
            format!("{:.1}", s.median / x),
        ]);
        eprintln!(
            "  [{sweep}] n={n} k={k}: median {:.0} (ok {ok}/{})",
            s.median,
            outcomes.len()
        );
    };

    for (i, &n) in n_grid.iter().enumerate() {
        measure("n-sweep", n, fixed_k, i as u64);
    }
    for (i, &k) in k_grid.iter().enumerate() {
        measure("k-sweep", fixed_n, k, 100 + i as u64);
    }

    table.print();
    let fit = fit_through_origin(&xs, &ys);
    println!(
        "fit: time ≈ {:.2} · k·ln n   (R² = {:.4}) — Theorem 1(1) predicts a linear law",
        fit.a, fit.r2
    );
    table
        .write_csv(opts.csv_path("x01_simple_scaling"))
        .expect("write csv");

    // Baseline arm: USD on the same bias-1 inputs. Fast but approximate —
    // the ok column collapsing towards a lottery is the paper's motivation.
    run_usd_baseline(
        &opts,
        n_grid,
        fixed_k,
        "X1",
        "x01_simple_scaling_baseline",
        200,
    );
}
