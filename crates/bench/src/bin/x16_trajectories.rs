//! Legacy shim: delegates to the registered `x16` scenario (`xp run x16`).
fn main() {
    plurality_bench::registry::shim_main("x16");
}
