//! X13 — The paper's motivation: exact vs approximate plurality.
//!
//! Undecided-state dynamics reaches consensus fast but picks the planted
//! plurality only when the bias is large (≈ √(n·log n) for k = 2 —
//! at bias 1 it is a support-weighted lottery). `SimpleAlgorithm` pays a
//! `O(k·log n)` running time and stays correct all the way down to bias 1.
//!
//! The USD arm runs on the batched configuration-space engine by default
//! (`--engine seq` restores the seed's per-agent scheduler); with `--full`
//! extra USD-only rows extend the population to `n = 10⁸`, where the
//! lottery behaviour at bias 1 is starkest.

use plurality_bench::{run_trial, run_usd_trial, Algo, Engine, ExpOpts};
use plurality_core::Tuning;
use pp_stats::Table;
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let (n, k): (usize, usize) = if opts.full { (4001, 3) } else { (1201, 3) };
    let sqrt_term = ((n as f64) * (n as f64).ln()).sqrt();
    let biases: Vec<usize> = [1.0, 0.1 * sqrt_term, 0.5 * sqrt_term, 1.5 * sqrt_term]
        .into_iter()
        .map(|b| (b as usize).max(1))
        .collect();

    let mut table = Table::new(
        "X13: USD vs SimpleAlgorithm across the bias range",
        &[
            "n",
            "k",
            "bias",
            "bias/√(n·ln n)",
            "usd ok",
            "usd med time",
            "simple ok",
            "simple med time",
        ],
    );

    for (i, &bias) in biases.iter().enumerate() {
        let counts = Counts::adversarial_bias(n, k, bias);
        let actual_bias = counts.bias();

        let usd = opts.run_trials(i as u64, |seed| {
            let o = run_usd_trial(opts.engine, &counts, seed, 100_000.0);
            (o.correct, o.parallel_time)
        });
        let simple = opts.run_trials(100 + i as u64, |seed| {
            let o = run_trial(Algo::Simple, &counts, seed, 1.0e5, Tuning::default(), false);
            (o.correct, o.parallel_time)
        });

        let usd_ok = usd.iter().filter(|r| r.0).count();
        let simple_ok = simple.iter().filter(|r| r.0).count();
        let med = |rs: &[(bool, f64)]| {
            let mut t: Vec<f64> = rs.iter().map(|r| r.1).collect();
            t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            t[t.len() / 2]
        };
        table.push(vec![
            n.to_string(),
            k.to_string(),
            actual_bias.to_string(),
            format!("{:.2}", actual_bias as f64 / sqrt_term),
            format!("{usd_ok}/{}", usd.len()),
            format!("{:.0}", med(&usd)),
            format!("{simple_ok}/{}", simple.len()),
            format!("{:.0}", med(&simple)),
        ]);
        eprintln!(
            "  bias={actual_bias}: usd {usd_ok}/{}, simple {simple_ok}/{}",
            usd.len(),
            simple.len()
        );
    }

    // Large-population USD-only rows: the configuration-space engine takes
    // the same bias-1 lottery to 10⁸ agents (SimpleAlgorithm columns stay
    // empty — the per-agent protocol does not scale there).
    if opts.full && opts.engine == Engine::Batch {
        for (i, big_n) in [1_000_000usize, 100_000_000].into_iter().enumerate() {
            let counts = Counts::adversarial_bias(big_n, k, 1);
            let big_sqrt = ((big_n as f64) * (big_n as f64).ln()).sqrt();
            let usd = opts.run_trials(500 + i as u64, |seed| {
                let o = run_usd_trial(opts.engine, &counts, seed, 100_000.0);
                (o.correct, o.parallel_time)
            });
            let usd_ok = usd.iter().filter(|r| r.0).count();
            let mut t: Vec<f64> = usd.iter().map(|r| r.1).collect();
            t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            table.push(vec![
                big_n.to_string(),
                k.to_string(),
                counts.bias().to_string(),
                format!("{:.5}", counts.bias() as f64 / big_sqrt),
                format!("{usd_ok}/{}", usd.len()),
                format!("{:.0}", t[t.len() / 2]),
                "—".into(),
                "—".into(),
            ]);
            eprintln!(
                "  n={big_n} bias={}: usd {usd_ok}/{}",
                counts.bias(),
                usd.len()
            );
        }
    }

    table.print();
    println!(
        "Read: USD is fast but fails towards small bias; SimpleAlgorithm holds its success \
         rate at every bias — the 'small chance of failure' buys exactness, not sloppiness."
    );
    table
        .write_csv(opts.csv_path("x13_usd_comparison"))
        .expect("write csv");
}
