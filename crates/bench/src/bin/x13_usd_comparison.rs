//! X13 — The paper's motivation: exact vs approximate plurality.
//!
//! Undecided-state dynamics reaches consensus fast but picks the planted
//! plurality only when the bias is large (≈ √(n·log n) for k = 2 —
//! at bias 1 it is a support-weighted lottery). `SimpleAlgorithm` pays a
//! `O(k·log n)` running time and stays correct all the way down to bias 1.

use plurality_bench::{run_trial, Algo, ExpOpts};
use plurality_core::Tuning;
use pp_baselines::Usd;
use pp_engine::{RunOptions, Simulation};
use pp_stats::Table;
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let (n, k): (usize, usize) = if opts.full { (4001, 3) } else { (1201, 3) };
    let sqrt_term = ((n as f64) * (n as f64).ln()).sqrt();
    let biases: Vec<usize> = [1.0, 0.1 * sqrt_term, 0.5 * sqrt_term, 1.5 * sqrt_term]
        .into_iter()
        .map(|b| (b as usize).max(1))
        .collect();

    let mut table = Table::new(
        "X13: USD vs SimpleAlgorithm across the bias range",
        &["n", "k", "bias", "bias/√(n·ln n)", "usd ok", "usd med time", "simple ok", "simple med time"],
    );

    for (i, &bias) in biases.iter().enumerate() {
        let counts = Counts::adversarial_bias(n, k, bias);
        let actual_bias = counts.bias();

        let usd = opts.run_trials(i as u64, |seed| {
            let assignment = counts.assignment();
            let states = Usd::initial_states(assignment.opinions());
            let mut sim = Simulation::new(Usd, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 100_000.0));
            (r.is_correct(assignment.plurality()), r.parallel_time)
        });
        let simple = opts.run_trials(100 + i as u64, |seed| {
            let o = run_trial(Algo::Simple, &counts, seed, 1.0e5, Tuning::default(), false);
            (o.correct, o.parallel_time)
        });

        let usd_ok = usd.iter().filter(|r| r.0).count();
        let simple_ok = simple.iter().filter(|r| r.0).count();
        let med = |rs: &[(bool, f64)]| {
            let mut t: Vec<f64> = rs.iter().map(|r| r.1).collect();
            t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            t[t.len() / 2]
        };
        table.push(vec![
            n.to_string(),
            k.to_string(),
            actual_bias.to_string(),
            format!("{:.2}", actual_bias as f64 / sqrt_term),
            format!("{usd_ok}/{}", usd.len()),
            format!("{:.0}", med(&usd)),
            format!("{simple_ok}/{}", simple.len()),
            format!("{:.0}", med(&simple)),
        ]);
        eprintln!("  bias={actual_bias}: usd {usd_ok}/{}, simple {simple_ok}/{}", usd.len(), simple.len());
    }

    table.print();
    println!(
        "Read: USD is fast but fails towards small bias; SimpleAlgorithm holds its success \
         rate at every bias — the 'small chance of failure' buys exactness, not sloppiness."
    );
    table.write_csv(opts.csv_path("x13_usd_comparison")).expect("write csv");
}
