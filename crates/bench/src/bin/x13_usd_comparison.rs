//! Legacy shim: delegates to the registered `x13` scenario (`xp run x13`).
fn main() {
    plurality_bench::registry::shim_main("x13");
}
