//! Developer probe: cancel/split failure rate at bias 1 (not an experiment).
use pp_engine::{RunOptions, Simulation};
use pp_majority::cancel_split::CancelSplitRun;

fn main() {
    for n_half in [500usize, 1000, 4000] {
        for window in [8u32, 12, 16, 24] {
            let mut wrong = 0;
            let trials = 30;
            for seed in 0..trials {
                let (proto, states) = CancelSplitRun::new(n_half + 1, n_half, 0, window);
                let n = states.len();
                let mut sim = Simulation::new(proto, states, seed);
                let r = sim.run(&RunOptions::with_parallel_time_budget(n, 100_000.0));
                if r.output != Some(1) {
                    wrong += 1;
                }
            }
            println!(
                "n={} window={window}: {wrong}/{trials} wrong",
                2 * n_half + 1
            );
        }
    }
}
