//! X4 — Theorem 1(2) runtime: the unordered variant pays an additive
//! `O(log² n)` for leader election.
//!
//! We measure total parallel time and the time spent before `le_done`
//! (leader election + defender selection) separately. The paper's claim:
//! total ≈ O(k·log n + log² n). The LE share dominates at small k and
//! washes out as k grows — exactly the additive structure of the bound.
//!
//! A USD baseline arm runs the k-sweep inputs on the batched
//! configuration-space engine (`--engine seq` for the sequential A/B);
//! with `--full` it extends to `n = 10⁸`.

use plurality_bench::{run_trial, run_usd_baseline, Algo, ExpOpts};
use plurality_core::Tuning;
use pp_stats::{fit_affine, Summary, Table};
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let (n_grid, k_grid, fixed_k, fixed_n): (Vec<usize>, Vec<usize>, usize, usize) = if opts.full {
        (vec![1000, 2000, 4000, 8000], vec![2, 3, 4, 6, 8], 3, 2000)
    } else {
        (vec![600, 1200, 2400], vec![2, 3, 4], 3, 1200)
    };

    let mut table = Table::new(
        "X4: UnorderedAlgorithm parallel time (total and leader-election share)",
        &[
            "sweep",
            "n",
            "k",
            "ok",
            "median total",
            "median LE",
            "LE share",
            "t/(k·lnn + ln²n)",
        ],
    );
    let mut le_xs = Vec::new();
    let mut le_ys = Vec::new();

    let mut measure = |sweep: &str, n: usize, k: usize, stream: u64| {
        let counts = Counts::bias_one(n, k);
        let budget = 5.0e3 * k as f64 + 5.0e4;
        let outcomes = opts.run_trials(stream, |seed| {
            run_trial(
                Algo::Unordered,
                &counts,
                seed,
                budget,
                Tuning::default(),
                false,
            )
        });
        let ok = outcomes.iter().filter(|o| o.correct).count();
        let times: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.converged)
            .map(|o| o.parallel_time)
            .collect();
        let le_times: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.le_done.map(|t| t as f64 / n as f64))
            .collect();
        if times.is_empty() || le_times.is_empty() {
            eprintln!("  [{sweep}] n={n} k={k}: insufficient convergence");
            return;
        }
        let s = Summary::of(&times);
        let le = Summary::of(&le_times);
        let ln = (n as f64).ln();
        let model = k as f64 * ln + ln * ln;
        le_xs.push(ln * ln);
        le_ys.push(le.median);
        table.push(vec![
            sweep.into(),
            n.to_string(),
            k.to_string(),
            format!("{ok}/{}", outcomes.len()),
            format!("{:.0}", s.median),
            format!("{:.0}", le.median),
            format!("{:.2}", le.median / s.median),
            format!("{:.1}", s.median / model),
        ]);
        eprintln!(
            "  [{sweep}] n={n} k={k}: total {:.0}, LE {:.0}",
            s.median, le.median
        );
    };

    for (i, &n) in n_grid.iter().enumerate() {
        measure("n-sweep", n, fixed_k, i as u64);
    }
    for (i, &k) in k_grid.iter().enumerate() {
        measure("k-sweep", fixed_n, k, 100 + i as u64);
    }

    table.print();
    let fit = fit_affine(&le_xs, &le_ys);
    println!(
        "leader-election time vs ln²n: LE ≈ {:.2}·ln²n + {:.0}   (R² = {:.3}) — the additive \
         O(log² n) term of Theorem 1(2)",
        fit.a, fit.b, fit.r2
    );
    table
        .write_csv(opts.csv_path("x04_unordered_scaling"))
        .expect("write csv");

    // Baseline arm: USD over the same n-sweep (configuration-space engine
    // reaches 10⁸ agents; the per-agent protocols above stop at 10⁴).
    run_usd_baseline(
        &opts,
        n_grid,
        fixed_k,
        "X4",
        "x04_unordered_scaling_baseline",
        300,
    );
}
