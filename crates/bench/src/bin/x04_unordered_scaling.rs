//! Legacy shim: delegates to the registered `x04` scenario (`xp run x04`).
fn main() {
    plurality_bench::registry::shim_main("x04");
}
