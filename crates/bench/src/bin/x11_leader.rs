//! X11 — Leader election: uniqueness w.h.p. and `O(log² n)` time.
//!
//! Measures, per population size: the fraction of runs electing exactly
//! one leader, the median completion time, and the ratio time/log² n
//! (stable ratio = the Theorem 1(2) substitution bound holds).

use plurality_bench::ExpOpts;
use pp_engine::{RunOptions, RunStatus, SimRng, Simulation};
use pp_leader::LeaderElectionRun;
use pp_stats::{Summary, Table};
use rand::SeedableRng;

fn main() {
    let opts = ExpOpts::from_args();
    let sizes: Vec<usize> = if opts.full {
        vec![1000, 2000, 4000, 8000, 16000, 32000]
    } else {
        vec![1000, 4000, 16000]
    };

    let mut table = Table::new(
        "X11: leader election (junta-clock coin lottery)",
        &["n", "unique", "trials", "median time", "time/log2²n"],
    );

    for (i, &n) in sizes.iter().enumerate() {
        let results = opts.run_trials(i as u64, |seed| {
            let mut rng = SimRng::seed_from_u64(seed ^ 0x5eed);
            let (proto, states) = LeaderElectionRun::new(n, 4, &mut rng);
            let mut sim = Simulation::new(proto, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 500_000.0));
            (
                r.status == RunStatus::Converged && r.output == Some(1),
                r.parallel_time,
            )
        });
        let unique = results.iter().filter(|r| r.0).count();
        let times: Vec<f64> = results.iter().map(|r| r.1).collect();
        let s = Summary::of(&times);
        let log2n = (n as f64).log2();
        table.push(vec![
            n.to_string(),
            format!("{unique}/{}", results.len()),
            results.len().to_string(),
            format!("{:.0}", s.median),
            format!("{:.2}", s.median / (log2n * log2n)),
        ]);
        eprintln!(
            "  n={n}: unique {unique}/{}, median {:.0}",
            results.len(),
            s.median
        );
    }

    table.print();
    println!("Read: exactly one leader in (nearly) every run; time/log²n is ~constant.");
    table
        .write_csv(opts.csv_path("x11_leader"))
        .expect("write csv");
}
