//! Legacy shim: delegates to the registered `x11` scenario (`xp run x11`).
fn main() {
    plurality_bench::registry::shim_main("x11");
}
