//! X10 — The majority substrates: exactness, speed and the baselines.
//!
//! Three protocols on two-opinion inputs:
//!
//! * cancel/split (our \[20\] stand-in): exact at bias 1, `O(log n)` time;
//! * 3-state approximate majority \[4\]: `O(log n)` time but needs bias
//!   `Ω(√(n·log n))` — watch its success rate climb with the bias;
//! * 4-state stable exact majority: always correct, but `Θ(n)` time at
//!   bias 1.

use plurality_bench::ExpOpts;
use pp_engine::{RunOptions, RunStatus, Simulation};
use pp_majority::{cancel_split::CancelSplitRun, FourState, ThreeState};
use pp_stats::{wilson_interval, Summary, Table};

fn main() {
    let opts = ExpOpts::from_args();

    // ---- Part A: exactness at bias 1 and time scaling in n. ----
    let sizes: Vec<usize> = if opts.full {
        vec![1001, 4001, 16001, 64001]
    } else {
        vec![1001, 4001, 16001]
    };
    let mut ta = Table::new(
        "X10a: bias-1 majority across substrates",
        &[
            "protocol",
            "n",
            "ok",
            "trials",
            "rate lo",
            "median time",
            "time/ln n",
        ],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let a = n / 2 + 1;
        let b = n / 2;

        // cancel/split (window 24: the reliable standalone setting; the
        // window sweep lives in X14b)
        let cs = opts.run_trials(i as u64, |seed| {
            let (proto, states) = CancelSplitRun::new(a, b, 0, 24);
            let mut sim = Simulation::new(proto, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 100_000.0));
            (r.output == Some(1), r.parallel_time)
        });
        push_row(&mut ta, "cancel/split", n, &cs);

        // 3-state approximate
        let ts = opts.run_trials(500 + i as u64, |seed| {
            let states = ThreeState::initial_states(a, b);
            let mut sim = Simulation::new(ThreeState, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 100_000.0));
            (r.output == Some(1), r.parallel_time)
        });
        push_row(&mut ta, "3-state", n, &ts);

        // 4-state stable (skip the largest sizes: Θ(n) time at bias 1).
        if n <= 4001 {
            let fs = opts.run_trials(900 + i as u64, |seed| {
                let states = FourState::initial_states(a, b);
                let mut sim = Simulation::new(FourState, states, seed);
                let r = sim.run(&RunOptions::with_parallel_time_budget(n, 5.0e6));
                (
                    r.status == RunStatus::Converged && r.output == Some(1),
                    r.parallel_time,
                )
            });
            push_row(&mut ta, "4-state", n, &fs);
        }
    }
    ta.print();
    ta.write_csv(opts.csv_path("x10a_majority_bias1"))
        .expect("write csv");

    // ---- Part B: 3-state success rate vs bias (the √(n log n) knee). ----
    let n = if opts.full { 16000 } else { 4000 };
    let sqrt_term = ((n as f64) * (n as f64).ln()).sqrt();
    let mut tb = Table::new(
        "X10b: 3-state approximate majority — success vs bias",
        &["n", "bias", "bias/√(n·ln n)", "ok", "trials", "rate"],
    );
    for (i, mult) in [0.0, 0.25, 0.5, 1.0, 2.0].into_iter().enumerate() {
        let bias = ((sqrt_term * mult) as usize).max(1) | 1; // odd, ≥ 1
        let a = (n + bias) / 2;
        let b = n - a;
        let results = opts.run_trials(2000 + i as u64, |seed| {
            let states = ThreeState::initial_states(a, b);
            let mut sim = Simulation::new(ThreeState, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 100_000.0));
            r.output == Some(1)
        });
        let ok = results.iter().filter(|&&x| x).count();
        tb.push(vec![
            n.to_string(),
            bias.to_string(),
            format!("{:.2}", bias as f64 / sqrt_term),
            ok.to_string(),
            results.len().to_string(),
            format!("{:.2}", ok as f64 / results.len() as f64),
        ]);
        eprintln!("  3-state bias={bias}: {ok}/{}", results.len());
    }
    tb.print();
    println!(
        "Read: cancel/split is exact at bias 1 in O(log n) time; 3-state needs bias \
         ≳ √(n·ln n); 4-state is exact but pays Θ(n) time — the trade-off that motivates \
         the paper's w.h.p. protocols."
    );
    tb.write_csv(opts.csv_path("x10b_three_state_bias"))
        .expect("write csv");
}

fn push_row(table: &mut Table, name: &str, n: usize, results: &[(bool, f64)]) {
    let ok = results.iter().filter(|r| r.0).count();
    let times: Vec<f64> = results.iter().map(|r| r.1).collect();
    let (lo, _) = wilson_interval(ok, results.len(), 1.96);
    let median = Summary::of(&times).median;
    table.push(vec![
        name.into(),
        n.to_string(),
        ok.to_string(),
        results.len().to_string(),
        format!("{lo:.3}"),
        format!("{median:.0}"),
        format!("{:.1}", median / (n as f64).ln()),
    ]);
    eprintln!("  {name} n={n}: {ok}/{} median {median:.0}", results.len());
}
