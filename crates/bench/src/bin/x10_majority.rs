//! Legacy shim: delegates to the registered `x10` scenario (`xp run x10`).
fn main() {
    plurality_bench::registry::shim_main("x10");
}
