//! Records `ppd`'s service throughput into `BENCH_serve.json` — the
//! committed snapshot behind the "queries are free, the simulation
//! keeps its rate" acceptance claim.
//!
//! One in-process service (3-state majority, free-running batch
//! engine) behind the real TCP front end, measured on three axes at
//! once:
//!
//! * `queries_per_sec` — concurrent client connections hammering
//!   `census`/`status`/`plurality` round-trips while the simulation
//!   free-runs; queries are answered from the published snapshot, so
//!   this axis must not dent the next one,
//! * `sim_interactions_per_sec` — the engine's own rate over the same
//!   measurement window, read from the service counters,
//! * `checkpoint_mean_ms` and `ingest_roundtrips_per_sec` — the
//!   mutation path: atomic snapshot writes and live admissions, each a
//!   round-trip through the simulation thread.
//!
//! Usage: `cargo run --release -p plurality-bench --bin bench_serve
//! [-- --quick] [-- path/to/BENCH_serve.json]`
//!
//! `--quick` shrinks the population and the window for CI smoke runs;
//! the committed numbers come from the full run (`n = 10⁶`).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pp_majority::ThreeState;
use pp_serve::{Response, ServerHandle, Service, ServiceConfig};

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to ppd");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().expect("flush request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(resp.contains("\"ok\":true"), "request failed: {resp}");
        resp
    }
}

fn main() {
    let mut path = "BENCH_serve.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            path = arg;
        }
    }
    let n: u64 = if quick { 100_000 } else { 1_000_000 };
    let window = if quick { 0.5 } else { 3.0 };
    let clients = if quick { 2 } else { 4 };

    let dir = std::env::temp_dir().join(format!("bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let a = 2 * n / 3;
    let service = Service::spawn(
        ThreeState,
        ServiceConfig {
            initial: vec![0, a, n - a],
            seed: 42,
            checkpoint_path: Some(dir.join("bench.ckpt")),
            ..ServiceConfig::default()
        },
    )
    .expect("spawn service");
    let server = ServerHandle::bind("127.0.0.1:0", &service, clients + 1).expect("bind server");
    let addr = server.addr();
    let stats = service.stats();

    // Let the free-running engine reach steady state before measuring.
    let warmup = Instant::now();
    while stats.interactions.load(Ordering::Relaxed) < n {
        assert!(
            warmup.elapsed() < Duration::from_secs(30),
            "simulation made no progress"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Query throughput and simulation rate over the same window.
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let i0 = stats.interactions.load(Ordering::Relaxed);
    let mut churners = Vec::new();
    for c in 0..clients {
        let stop = Arc::clone(&stop);
        churners.push(std::thread::spawn(move || {
            let mut conn = Conn::open(addr);
            let mix = [
                "{\"cmd\":\"census\"}",
                "{\"cmd\":\"status\"}",
                "{\"cmd\":\"plurality\"}",
            ];
            let mut count = 0u64;
            while !stop.load(Ordering::Relaxed) {
                conn.ask(mix[(c + count as usize) % mix.len()]);
                count += 1;
            }
            count
        }));
    }
    std::thread::sleep(Duration::from_secs_f64(window));
    stop.store(true, Ordering::Relaxed);
    let queries: u64 = churners
        .into_iter()
        .map(|h| h.join().expect("client"))
        .sum();
    let elapsed = t0.elapsed().as_secs_f64();
    let i1 = stats.interactions.load(Ordering::Relaxed);
    let queries_per_sec = queries as f64 / elapsed;
    let sim_rate = (i1 - i0) as f64 / elapsed;

    // The mutation path: checkpoints and ingest, round-trips through
    // the simulation thread.
    let mut conn = Conn::open(addr);
    for _ in 0..3 {
        conn.ask("{\"cmd\":\"checkpoint\"}");
    }
    let checkpoint_mean_ms = stats.metrics().checkpoint_mean_ms;

    let ingest_window = if quick { 0.2 } else { 1.0 };
    let t0 = Instant::now();
    let mut ingests = 0u64;
    while t0.elapsed().as_secs_f64() < ingest_window {
        conn.ask("{\"cmd\":\"ingest\",\"opinion\":2,\"count\":10}");
        ingests += 1;
    }
    let ingest_rps = ingests as f64 / t0.elapsed().as_secs_f64();

    let resp = conn.ask("{\"cmd\":\"shutdown\"}");
    assert_eq!(
        Response::parse(&resp).expect("parse shutdown ack"),
        Response::ShutDown
    );
    server.join();
    service.join();
    let _ = std::fs::remove_dir_all(&dir);

    println!("service throughput on 3-state majority, n={n}, {clients} client connections:");
    println!("  queries/sec:           {}", human(queries_per_sec));
    println!("  sim interactions/sec:  {}", human(sim_rate));
    println!("  checkpoint mean:       {checkpoint_mean_ms:.2} ms");
    println!("  ingest round-trips/s:  {}", human(ingest_rps));
    if !quick {
        println!(
            "acceptance (n=1e6): queries/sec >= 10k: {}, sim >= 100M/s: {}",
            queries_per_sec >= 10_000.0,
            sim_rate >= 100_000_000.0
        );
    }

    let json = format!(
        "{{\n  \"protocol\": \"three_state_majority\",\n  \"engine\": \"batch_multinomial\",\n  \
         \"mode\": \"{}\",\n  \"n\": {n},\n  \"client_connections\": {clients},\n  \
         \"window_secs\": {window},\n  \
         \"generated_by\": \"cargo run --release -p plurality-bench --bin bench_serve\",\n  \
         \"queries_per_sec\": {queries_per_sec:.0},\n  \
         \"sim_interactions_per_sec\": {sim_rate:.0},\n  \
         \"checkpoint_mean_ms\": {checkpoint_mean_ms:.3},\n  \
         \"ingest_roundtrips_per_sec\": {ingest_rps:.0}\n}}\n",
        if quick { "quick" } else { "full" }
    );
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else {
        format!("{:.1}K", x / 1e3)
    }
}
