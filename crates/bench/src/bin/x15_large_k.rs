//! Legacy shim: delegates to the registered `x15` scenario (`xp run x15`).
fn main() {
    plurality_bench::registry::shim_main("x15");
}
