//! X15 — Appendix C: `SimpleAlgorithm` beyond `k ≤ n/40`.
//!
//! The theorem's base analysis assumes `k ≤ n/40`; Appendix C extends the
//! protocol to `k ≤ (1 − ε)·n` by slowing the init-counter decrement (the
//! `1/c` rule) so a clock agent finishes counting even when a large
//! constant fraction of the population remains collectors. We sweep k up to
//! n/2.5 and compare the base tuning against `Tuning::large_k()`.
//!
//! Note the time: with `x_max ≈ n/k` tiny, the protocol runs all `k − 1`
//! tournaments — runtime grows linearly in k, exactly as Theorem 1 says.

use plurality_bench::{run_trial, Algo, ExpOpts};
use plurality_core::Tuning;
use pp_stats::Table;
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let n = if opts.full { 1500 } else { 1000 };
    let ks: Vec<usize> = if opts.full {
        vec![n / 40, n / 10, n / 5, (n as f64 / 2.5) as usize]
    } else {
        vec![n / 40, n / 10, n / 5]
    };

    let mut table = Table::new(
        "X15: SimpleAlgorithm at large k (Appendix C decrement rule)",
        &[
            "n",
            "k",
            "tuning",
            "ok",
            "trials",
            "median time",
            "time/(k·ln n)",
        ],
    );

    for (i, &k) in ks.iter().enumerate() {
        let counts = Counts::bias_one(n, k);
        let budget = 2.0e3 * k as f64 + 5.0e4;
        for (j, (name, tuning)) in [("base", Tuning::default()), ("large_k", Tuning::large_k())]
            .into_iter()
            .enumerate()
        {
            let rs = opts.run_trials((i as u64) << 4 | j as u64, |seed| {
                run_trial(Algo::Simple, &counts, seed, budget, tuning, false)
            });
            let ok = rs.iter().filter(|o| o.correct).count();
            let mut t: Vec<f64> = rs
                .iter()
                .filter(|o| o.converged)
                .map(|o| o.parallel_time)
                .collect();
            t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = if t.is_empty() {
                f64::NAN
            } else {
                t[t.len() / 2]
            };
            table.push(vec![
                n.to_string(),
                k.to_string(),
                name.into(),
                format!("{ok}/{}", rs.len()),
                rs.len().to_string(),
                format!("{median:.0}"),
                format!("{:.1}", median / (k as f64 * (n as f64).ln())),
            ]);
            eprintln!("  k={k} [{name}]: {ok}/{} median {median:.0}", rs.len());
        }
    }

    table.print();
    println!(
        "Read: the base tuning carries k = n/5 with k-linear time; the Appendix C decrement \
         rule ends the init earlier, thins every worker role, and only pays off in its \
         asymptotic target regime (collectors above n/2 forever), infeasible under n >= 2k."
    );
    table
        .write_csv(opts.csv_path("x15_large_k"))
        .expect("write csv");
}
