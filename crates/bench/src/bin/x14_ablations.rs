//! X14 — Ablations: where is the reliability knee?
//!
//! The paper fixes constants only as "sufficiently large". This experiment
//! scales the tuning constants (phase lengths + leader patience) down and
//! up around the defaults, and separately sweeps the match window, showing
//! where correctness collapses. Failing configurations must fail
//! *gracefully* (wrong output or timeout — the budget column — never a
//! panic).

use plurality_bench::{run_trial, Algo, ExpOpts};
use plurality_core::Tuning;
use pp_stats::Table;
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let n = if opts.full { 2001 } else { 1201 };
    let k = 3;
    let counts = Counts::bias_one(n, k);
    let budget = 3.0e5;

    // ---- Sweep A: global phase-length scale. ----
    let mut ta = Table::new(
        "X14a: scaling all phase lengths by f (SimpleAlgorithm, bias 1)",
        &["f", "ok", "trials", "timeouts", "median time"],
    );
    for (i, f) in [0.25, 0.5, 0.75, 1.0, 1.5].into_iter().enumerate() {
        let tuning = Tuning::default().scaled(f);
        let rs = opts.run_trials(i as u64, |seed| {
            run_trial(Algo::Simple, &counts, seed, budget, tuning, false)
        });
        let ok = rs.iter().filter(|o| o.correct).count();
        let timeouts = rs.iter().filter(|o| !o.converged).count();
        let mut t: Vec<f64> = rs.iter().map(|o| o.parallel_time).collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ta.push(vec![
            format!("{f:.2}"),
            ok.to_string(),
            rs.len().to_string(),
            timeouts.to_string(),
            format!("{:.0}", t[t.len() / 2]),
        ]);
        eprintln!("  scale {f}: {ok}/{}", rs.len());
    }
    ta.print();
    ta.write_csv(opts.csv_path("x14a_phase_scale"))
        .expect("write csv");

    // ---- Sweep B: match window. ----
    let mut tb = Table::new(
        "X14b: cancel/split window of the match majority (SimpleAlgorithm, bias 1)",
        &["window", "ok", "trials", "median time"],
    );
    for (i, window) in [2u32, 4, 6, 10, 16].into_iter().enumerate() {
        let tuning = Tuning {
            match_window: window,
            ..Tuning::default()
        };
        let rs = opts.run_trials(100 + i as u64, |seed| {
            run_trial(Algo::Simple, &counts, seed, budget, tuning, false)
        });
        let ok = rs.iter().filter(|o| o.correct).count();
        let mut t: Vec<f64> = rs.iter().map(|o| o.parallel_time).collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        tb.push(vec![
            window.to_string(),
            ok.to_string(),
            rs.len().to_string(),
            format!("{:.0}", t[t.len() / 2]),
        ]);
        eprintln!("  window {window}: {ok}/{}", rs.len());
    }
    tb.print();
    tb.write_csv(opts.csv_path("x14b_match_window"))
        .expect("write csv");

    // ---- Sweep C: merge cap (token capacity). ----
    let mut tc = Table::new(
        "X14c: token merge cap (SimpleAlgorithm, bias 1)",
        &["cap", "ok", "trials", "median time"],
    );
    for (i, cap) in [2u8, 4, 10, 20].into_iter().enumerate() {
        let tuning = Tuning {
            merge_cap: cap,
            ..Tuning::default()
        };
        let rs = opts.run_trials(200 + i as u64, |seed| {
            run_trial(Algo::Simple, &counts, seed, budget, tuning, false)
        });
        let ok = rs.iter().filter(|o| o.correct).count();
        let mut t: Vec<f64> = rs.iter().map(|o| o.parallel_time).collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        tc.push(vec![
            cap.to_string(),
            ok.to_string(),
            rs.len().to_string(),
            format!("{:.0}", t[t.len() / 2]),
        ]);
        eprintln!("  cap {cap}: {ok}/{}", rs.len());
    }
    tc.print();
    println!(
        "Read: defaults sit right of the knee in every sweep; halving the phase budget or \
         the match window degrades correctness smoothly (never catastrophically)."
    );
    tc.write_csv(opts.csv_path("x14c_merge_cap"))
        .expect("write csv");
}
