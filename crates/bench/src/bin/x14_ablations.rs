//! Legacy shim: delegates to the registered `x14` scenario (`xp run x14`).
fn main() {
    plurality_bench::registry::shim_main("x14");
}
