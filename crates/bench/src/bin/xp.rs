//! `xp` — the experiment driver.
//!
//! One binary for the whole evaluation matrix:
//!
//! ```text
//! xp list                        # registered scenarios
//! xp run x01 [x03 ...] [FLAGS]   # run scenarios by name or slug
//! xp all [--filter SUBSTR] [FLAGS]
//! xp help
//! ```
//!
//! Shared flags are the common experiment flags (`--trials`, `--seed`,
//! `--full`, `--out`, `--threads`, `--engine`). Every run writes its CSV
//! tables plus a `<scenario>_manifest.json` under the output directory.

use plurality_bench::harness::{self, parse_args, CliError};
use plurality_bench::registry;

const XP_USAGE: &str = "\
xp — declarative experiment driver

USAGE:
  xp list                          list registered scenarios
  xp run <NAME>... [FLAGS]         run scenarios (by short name or slug)
  xp all [--filter SUBSTR] [FLAGS] run all scenarios, optionally filtered
  xp help                          print this help
";

fn main() {
    // `--filter` is xp-specific; extract it before the shared parser.
    let mut filter: Option<String> = None;
    let mut rest = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--filter" {
            match raw.next() {
                Some(v) => filter = Some(v),
                None => fail("--filter requires a value"),
            }
        } else {
            rest.push(a);
        }
    }

    let (opts, positional) = match parse_args(rest) {
        Ok(parsed) => parsed,
        Err(CliError(e)) if e == "help" => {
            println!("{XP_USAGE}\n{}", harness::USAGE);
            return;
        }
        Err(e) => fail(&e.0),
    };

    let subcommand = positional.first().map(String::as_str);
    if filter.is_some() && subcommand != Some("all") {
        fail("--filter only applies to `xp all`");
    }
    match subcommand {
        Some("list") | Some("ls") => {
            if positional.len() > 1 {
                fail(&format!(
                    "unexpected argument '{}' (did you mean `xp run {}`?)",
                    positional[1], positional[1]
                ));
            }
            for line in registry::list_lines() {
                println!("{line}");
            }
        }
        Some("run") => {
            let names = &positional[1..];
            if names.is_empty() {
                fail("xp run needs at least one scenario name");
            }
            let scenarios: Vec<_> = names
                .iter()
                .map(|name| {
                    registry::find(name).unwrap_or_else(|| {
                        fail(&format!("unknown scenario '{name}' (see `xp list`)"))
                    })
                })
                .collect();
            for s in scenarios {
                run_one(s, &opts);
            }
        }
        Some("all") => {
            if positional.len() > 1 {
                fail(&format!("unexpected argument '{}'", positional[1]));
            }
            let matches = |s: &plurality_bench::Scenario| {
                filter
                    .as_deref()
                    .is_none_or(|f| s.name.contains(f) || s.slug.contains(f) || s.about.contains(f))
            };
            let selected: Vec<_> = registry::scenarios()
                .iter()
                .filter(|s| matches(s))
                .collect();
            if selected.is_empty() {
                fail(&format!(
                    "--filter '{}' matches no scenario (see `xp list`)",
                    filter.as_deref().unwrap_or("")
                ));
            }
            for s in selected {
                run_one(s, &opts);
            }
        }
        Some("help") => println!("{XP_USAGE}\n{}", harness::USAGE),
        Some(other) => fail(&format!("unknown subcommand '{other}'")),
        None => fail("missing subcommand"),
    }
}

fn run_one(s: &plurality_bench::Scenario, opts: &plurality_bench::ExpOpts) {
    println!("\n==== {} ({}) ====", s.name, s.slug);
    if let Err(e) = registry::run(s, opts) {
        eprintln!("error: {}: {e}", s.slug);
        std::process::exit(1);
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{XP_USAGE}\n{}", harness::USAGE);
    std::process::exit(2);
}
