//! Developer trace harness for the unordered algorithm (not an experiment).

use plurality_core::roles::{Agent, Role, SlotKind};
use plurality_core::{Tuning, UnorderedAlgorithm};
use pp_engine::{RunOptions, Simulation};
use pp_workloads::Counts;

fn snapshot(t: u64, n: usize, states: &[Agent]) -> String {
    let mut phases = std::collections::BTreeMap::new();
    let mut defenders = std::collections::BTreeMap::new();
    let mut challengers = std::collections::BTreeMap::new();
    let mut winners = std::collections::BTreeMap::new();
    let mut slots = std::collections::BTreeMap::new();
    let mut players = [0usize; 3];
    let mut fin = 0;
    for s in states {
        *phases.entry(s.phase).or_insert(0usize) += 1;
        fin += usize::from(s.fin);
        match &s.role {
            Role::Collector(c) => {
                if c.defender {
                    *defenders.entry(c.opinion).or_insert(0usize) += 1;
                }
                if c.challenger {
                    *challengers.entry(c.opinion).or_insert(0usize) += 1;
                }
                if c.winner {
                    *winners.entry(c.opinion).or_insert(0usize) += 1;
                }
            }
            Role::Tracker(tr) if tr.slot_kind != SlotKind::Empty => {
                *slots
                    .entry((tr.slot_kind as u8, tr.slot_op))
                    .or_insert(0usize) += 1;
            }
            Role::Player(pl) => match pl.po {
                pp_majority::Verdict::A => players[0] += 1,
                pp_majority::Verdict::B => players[1] += 1,
                pp_majority::Verdict::Tie => players[2] += 1,
            },
            _ => {}
        }
    }
    let phase_mode = phases
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&p, _)| p)
        .unwrap_or(-9);
    format!(
        "t={:>7.0} ph={phase_mode} def={defenders:?} chal={challengers:?} A/B/U={players:?} fin={fin} win={winners:?}",
        t as f64 / n as f64
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(600);
    let k: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
    let counts = Counts::bias_one(n, k);
    let assignment = counts.assignment();
    eprintln!(
        "supports: {:?} plurality {}",
        counts.supports(),
        assignment.plurality()
    );
    let (proto, states) = UnorderedAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(proto, states, seed);
    let mut next_report = 0u64;
    let mut last = String::new();
    let r = sim.run_observed(
        &RunOptions::with_parallel_time_budget(n, 50_000.0),
        |t, states| {
            if t >= next_report {
                let line = snapshot(t, n, states);
                // Only print when the interesting content changed.
                let key: String = line.split_once(' ').map(|x| x.1).unwrap_or("").to_string();
                if key != last {
                    println!("{line}");
                    last = key;
                }
                next_report = t + (n as u64) * 50;
            }
        },
    );
    println!(
        "result: {r:?} milestones: {:?}",
        sim.protocol().milestones()
    );
    println!("expected plurality: {}", assignment.plurality());
}
