//! Legacy shim: delegates to the registered `x12` scenario (`xp run x12`).
fn main() {
    plurality_bench::registry::shim_main("x12");
}
