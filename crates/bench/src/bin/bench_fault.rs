//! Records the fault layer's overhead on the multinomial batch engine
//! into `BENCH_fault.json` — the committed snapshot behind the
//! "robustness machinery is free when unused" acceptance claim.
//!
//! Five paths on 3-state majority at `n ∈ {10⁴, 10⁶, 10⁸}`:
//!
//! * `clean_run` — `run()`, no fault machinery at all,
//! * `empty_plan` — `run_faulted()` with an empty [`FaultPlan`]; must be
//!   RNG-identical to `clean_run` (asserted per size, not just measured),
//! * `active_churn` — `run_churned()` under the default symmetric 0.005
//!   Poisson join/leave soak, sampling once per unit of parallel time,
//! * `adaptive_adversary` — `run()` with a live 5% census-driven
//!   runner-up-boosting lie stream (`adaptive:0.05`); a zero-fraction
//!   adaptive spec is asserted RNG-identical to `clean_run` per size,
//! * `targeted_churn` — the soak with departures aimed at the plurality
//!   class (`churn:0.005:0.005:plurality`); the uniform 4-field spelling
//!   is asserted RNG-identical to the legacy 2-field one per size.
//!
//! Each rate drives a fresh 60/40 configuration for a fixed interaction
//! budget well below the convergence horizon, repeating until ≥ 0.5 s of
//! wall clock has been accumulated.
//!
//! Usage: `cargo run --release -p plurality-bench --bin bench_fault
//! [-- path/to/BENCH_fault.json]`

use std::time::Instant;

use pp_engine::{AdversarySpec, BatchSimulation, ChurnProcess, ChurnSpec, FaultPlan, RunOptions};
use pp_majority::ThreeState;

/// Repeat `run` (a fresh fixed-budget simulation returning the seconds it
/// spent) until half a second accumulates; returns interactions/sec.
fn rate(target: u64, mut run: impl FnMut() -> f64) -> f64 {
    run(); // warm-up
    let mut reps = 0u64;
    let mut secs = 0.0f64;
    while secs < 0.5 || reps < 2 {
        secs += run();
        reps += 1;
    }
    (reps * target) as f64 / secs
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault.json".into());
    let grid: [u64; 3] = [10_000, 1_000_000, 100_000_000];
    let labels = ["1e4", "1e6", "1e8"];
    let counts = |n: u64| vec![0u64, n * 3 / 5, n * 2 / 5];
    let opts = |target: u64| RunOptions {
        max_interactions: target,
        check_every: 1_000_000,
    };

    // The load-bearing contracts first: an empty plan and a zero-fraction
    // adaptive adversary must not merely be as fast as `run()`, they must
    // consume the *identical* RNG stream — and the 2-field uniform churn
    // spelling must drive the exact draw sequence of the parsed one.
    let uniform_spec: ChurnSpec = "churn:0.005:0.005".parse().expect("churn spec");
    let churn = ChurnProcess::new(uniform_spec);
    let targeted = ChurnProcess::new("churn:0.005:0.005:plurality".parse().expect("churn spec"));
    for &n in &grid {
        let target = (5 * n).min(1_000_000_000);
        let mut clean = BatchSimulation::new(ThreeState, counts(n), 42);
        clean.run(&opts(target));
        let mut faulted = BatchSimulation::new(ThreeState, counts(n), 42);
        faulted.run_faulted(&opts(target), &FaultPlan::new());
        assert_eq!(clean.counts(), faulted.counts(), "n={n}: counts diverged");
        assert_eq!(
            clean.rng_state(),
            faulted.rng_state(),
            "n={n}: empty-plan run_faulted consumed a different RNG stream than run"
        );
        let mut adaptive0 = BatchSimulation::new(ThreeState, counts(n), 42);
        adaptive0.set_adversary(
            "adaptive:0"
                .parse::<AdversarySpec>()
                .expect("adversary spec")
                .build(),
        );
        adaptive0.run(&opts(target));
        assert_eq!(
            clean.rng_state(),
            adaptive0.rng_state(),
            "n={n}: adaptive:0 consumed a different RNG stream than run"
        );
        let legacy = ChurnProcess::new(ChurnSpec {
            join: 0.005,
            leave: 0.005,
            ..ChurnSpec::default()
        });
        let init = counts(n);
        let mut a = BatchSimulation::new(ThreeState, init.clone(), 42);
        a.run_churned(&opts(target), &churn, &init, f64::MAX);
        let mut b = BatchSimulation::new(ThreeState, init.clone(), 42);
        b.run_churned(&opts(target), &legacy, &init, f64::MAX);
        assert_eq!(
            a.rng_state(),
            b.rng_state(),
            "n={n}: uniform-target churn diverged from the legacy spelling"
        );
    }
    println!("empty plan, adaptive:0 and uniform-target churn are RNG-identical at every size");

    let mut rows: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, which) in [
        ("clean_run", 0),
        ("empty_plan", 1),
        ("active_churn", 2),
        ("adaptive_adversary", 3),
        ("targeted_churn", 4),
    ] {
        let rates: Vec<f64> = grid
            .iter()
            .map(|&n| {
                let target = (5 * n).min(1_000_000_000);
                rate(target, || {
                    let init = counts(n);
                    let mut sim = BatchSimulation::new(ThreeState, init.clone(), 42);
                    let t0 = Instant::now();
                    match which {
                        0 => {
                            sim.run(&opts(target));
                        }
                        1 => {
                            sim.run_faulted(&opts(target), &FaultPlan::new());
                        }
                        2 => {
                            sim.run_churned(&opts(target), &churn, &init, f64::MAX);
                        }
                        3 => {
                            sim.set_adversary(
                                "adaptive:0.05"
                                    .parse::<AdversarySpec>()
                                    .expect("adversary spec")
                                    .build(),
                            );
                            sim.run(&opts(target));
                        }
                        _ => {
                            sim.run_churned(&opts(target), &targeted, &init, f64::MAX);
                        }
                    }
                    t0.elapsed().as_secs_f64()
                })
            })
            .collect();
        rows.push((name, rates));
    }

    println!("interactions/sec on 3-state majority (60/40 start, batch engine):");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "path", "n=1e4", "n=1e6", "n=1e8"
    );
    for (name, rates) in &rows {
        println!(
            "{name:>14} {:>12} {:>12} {:>12}",
            human(rates[0]),
            human(rates[1]),
            human(rates[2])
        );
    }
    let overhead = rows[0].1[1] / rows[1].1[1];
    let churn_cost = rows[0].1[1] / rows[2].1[1];
    let adaptive_cost = rows[0].1[1] / rows[3].1[1];
    let targeted_cost = rows[0].1[1] / rows[4].1[1];
    println!("empty-plan overhead at n=1e6: {overhead:.2}x (acceptance bar: ~1x)");
    println!("active-churn slowdown at n=1e6: {churn_cost:.2}x");
    println!("adaptive-adversary slowdown at n=1e6: {adaptive_cost:.2}x");
    println!("targeted-churn slowdown at n=1e6: {targeted_cost:.2}x");

    let mut json = String::from("{\n");
    json.push_str("  \"protocol\": \"three_state_majority\",\n");
    json.push_str("  \"engine\": \"batch_multinomial\",\n");
    json.push_str("  \"configuration\": \"60/40 opinion split, pre-convergence budget\",\n");
    json.push_str("  \"churn\": \"churn:0.005 (symmetric Poisson join/leave)\",\n");
    json.push_str("  \"adversary\": \"adaptive:0.05 (census-driven runner-up boosting)\",\n");
    json.push_str("  \"targeted_churn\": \"churn:0.005:0.005:plurality\",\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p plurality-bench --bin bench_fault\",\n",
    );
    json.push_str("  \"empty_plan_rng_identical\": true,\n");
    json.push_str("  \"adaptive_zero_frac_rng_identical\": true,\n");
    json.push_str("  \"uniform_target_churn_rng_identical\": true,\n");
    json.push_str("  \"interactions_per_sec\": {\n");
    for (r, (name, rates)) in rows.iter().enumerate() {
        json.push_str(&format!("    \"{name}\": {{"));
        for (i, label) in labels.iter().enumerate() {
            json.push_str(&format!("\"{label}\": {:.0}", rates[i]));
            if i + 1 < labels.len() {
                json.push_str(", ");
            }
        }
        json.push('}');
        if r + 1 < rows.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"empty_plan_overhead_n1e6\": {overhead:.2},\n  \"active_churn_slowdown_n1e6\": {churn_cost:.2},\n  \"adaptive_adversary_slowdown_n1e6\": {adaptive_cost:.2},\n  \"targeted_churn_slowdown_n1e6\": {targeted_cost:.2}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&path, json).expect("write BENCH_fault.json");
    eprintln!("wrote {path}");
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else {
        format!("{:.0}K", x / 1e3)
    }
}
