//! Developer trace harness for the improved algorithm (not an experiment).
use plurality_core::roles::Role;
use plurality_core::{ImprovedAlgorithm, Tuning};
use pp_engine::{RunOptions, Simulation};
use pp_workloads::Counts;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1800);
    let k: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(6);
    let counts = Counts::bias_one(n, k);
    let assignment = counts.assignment();
    let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
    let mut sim = Simulation::new(proto, states, seed);
    let mut next = 0u64;
    let r = sim.run_observed(
        &RunOptions::with_parallel_time_budget(n, 1.5e6),
        |t, states| {
            if t >= next {
                let mut phases = std::collections::BTreeMap::new();
                let mut winners = 0;
                let mut fin = 0;
                let mut le = 0;
                for s in states {
                    *phases.entry(s.phase).or_insert(0usize) += 1;
                    winners += usize::from(s.is_winner());
                    fin += usize::from(s.fin);
                    le += usize::from(s.le_done);
                }
                let collectors = states
                    .iter()
                    .filter(|s| matches!(s.role, Role::Collector(_)))
                    .count();
                println!(
                    "t={:>9.0} phases={phases:?} coll={collectors} le={le} fin={fin} win={winners}",
                    t as f64 / n as f64
                );
                next = t + (n as u64) * 500;
            }
        },
    );
    println!(
        "result: {r:?}\nmilestones: {:?}",
        sim.protocol().milestones()
    );
}
