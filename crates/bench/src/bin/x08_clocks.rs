//! Legacy shim: delegates to the registered `x08` scenario (`xp run x08`).
fn main() {
    plurality_bench::registry::shim_main("x08");
}
