//! Legacy shim: delegates to the registered `x03` scenario (`xp run x03`).
fn main() {
    plurality_bench::registry::shim_main("x03");
}
