//! X3 — Exactness at bias 1 (Theorem 1 & 2 correctness).
//!
//! The paper's protocols identify the plurality w.h.p. *even at bias 1*.
//! This experiment plants bias-1 (bias-2 for k = 2 with even n) inputs
//! across a grid of (n, k) and reports per-protocol success rates with
//! Wilson 95% intervals.
//!
//! Paper prediction: success probability `1 − n^(−Ω(1))` — i.e. rates at or
//! near 1.0 throughout, improving with n.

use plurality_bench::{run_trial, Algo, ExpOpts};
use plurality_core::Tuning;
use pp_stats::{wilson_interval, Table};
use pp_workloads::Counts;

fn main() {
    let opts = ExpOpts::from_args();
    let grid: Vec<(usize, usize)> = if opts.full {
        vec![
            (1001, 2),
            (2001, 2),
            (4001, 2),
            (1000, 4),
            (2000, 4),
            (4000, 8),
            (8001, 2),
            (8000, 8),
        ]
    } else {
        vec![(601, 2), (1201, 2), (900, 3), (1800, 6)]
    };
    let algos = [Algo::Simple, Algo::Unordered, Algo::Improved];

    let mut table = Table::new(
        "X3: exactness at bias 1 (success rate over trials, Wilson 95%)",
        &[
            "algo",
            "n",
            "k",
            "bias",
            "ok",
            "trials",
            "rate",
            "lo",
            "hi",
            "median time",
        ],
    );

    for (stream, &(n, k)) in grid.iter().enumerate() {
        let counts = Counts::bias_one(n, k);
        let budget = 4.0e3 * k as f64 + 4.0e4;
        for algo in algos {
            let outcomes = opts.run_trials((stream as u64) << 8 | algo as u64, |seed| {
                run_trial(algo, &counts, seed, budget, Tuning::default(), false)
            });
            let ok = outcomes.iter().filter(|o| o.correct).count();
            let (lo, hi) = wilson_interval(ok, outcomes.len(), 1.96);
            let mut times: Vec<f64> = outcomes.iter().map(|o| o.parallel_time).collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = times[times.len() / 2];
            table.push(vec![
                algo.name().into(),
                n.to_string(),
                k.to_string(),
                counts.bias().to_string(),
                ok.to_string(),
                outcomes.len().to_string(),
                format!("{:.3}", ok as f64 / outcomes.len() as f64),
                format!("{lo:.3}"),
                format!("{hi:.3}"),
                format!("{median:.0}"),
            ]);
            eprintln!(
                "  [{}] n={n} k={k}: {ok}/{} (median t={median:.0})",
                algo.name(),
                outcomes.len()
            );
        }
    }

    table.print();
    table
        .write_csv(opts.csv_path("x03_exactness"))
        .expect("write csv");
}
