//! Legacy shim: delegates to the registered `x05` scenario (`xp run x05`).
fn main() {
    plurality_bench::registry::shim_main("x05");
}
