//! CLI options and trial execution for experiment binaries.

use std::path::PathBuf;

use pp_engine::ensemble;

/// Which simulation engine an experiment's table-protocol arms run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The sequential per-agent scheduler (`pp_engine::Simulation`).
    Seq,
    /// The batched configuration-space engine
    /// (`pp_engine::BatchSimulation`) — the default: it is the only way to
    /// reach the `n = 10⁸` grids.
    #[default]
    Batch,
}

impl Engine {
    /// Display label (matches the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Seq => "seq",
            Engine::Batch => "batch",
        }
    }
}

/// Options shared by all experiment binaries.
///
/// Flags: `--trials N`, `--seed S`, `--full` (larger grids), `--out DIR`,
/// `--threads T`, `--engine {seq,batch}` (A/B the engines on baseline
/// arms).
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Trials per configuration.
    pub trials: usize,
    /// Base seed; trial `i` derives its own stream.
    pub seed: u64,
    /// Run the larger (slower) grid.
    pub full: bool,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
    /// Engine for table-protocol (baseline) arms.
    pub engine: Engine,
}

impl Default for ExpOpts {
    fn default() -> Self {
        Self {
            trials: 10,
            seed: 0x000E_1AB0_7A7E,
            full: false,
            out_dir: PathBuf::from("results"),
            threads: ensemble::default_threads(),
            engine: Engine::default(),
        }
    }
}

impl ExpOpts {
    /// Parse from `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--trials" => opts.trials = take("--trials").parse().expect("--trials N"),
                "--seed" => opts.seed = take("--seed").parse().expect("--seed S"),
                "--full" => opts.full = true,
                "--out" => opts.out_dir = PathBuf::from(take("--out")),
                "--threads" => opts.threads = take("--threads").parse().expect("--threads T"),
                "--engine" => {
                    opts.engine = match take("--engine").as_str() {
                        "seq" => Engine::Seq,
                        "batch" => Engine::Batch,
                        other => panic!("--engine must be 'seq' or 'batch', got '{other}'"),
                    }
                }
                other => panic!(
                    "unknown flag {other}; known: --trials N --seed S --full --out DIR \
                     --threads T --engine {{seq,batch}}"
                ),
            }
        }
        opts
    }

    /// Run `trials` independent trials in parallel; `f` receives the
    /// derived per-trial seed.
    pub fn run_trials<R: Send>(&self, stream: u64, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
        let base = pp_engine::rng::derive(self.seed, stream);
        ensemble::run_trials(self.trials, self.threads, |i| {
            f(pp_engine::rng::derive(base, i as u64))
        })
    }

    /// CSV path for an experiment table.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ExpOpts::default();
        assert!(o.trials > 0);
        assert!(o.threads >= 1);
        assert!(!o.full);
    }

    #[test]
    fn trial_seeds_differ_across_streams() {
        let o = ExpOpts::default();
        let a = o.run_trials(1, |s| s);
        let b = o.run_trials(2, |s| s);
        assert_ne!(a, b);
        // Deterministic given the same stream.
        assert_eq!(a, o.run_trials(1, |s| s));
    }
}
