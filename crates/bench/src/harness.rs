//! CLI options and trial execution for the experiment driver.
//!
//! All experiment entry points — the `xp` driver and the legacy per-
//! experiment shims — share one flag grammar, parsed by [`parse_args`]
//! into an [`ExpOpts`] plus positional arguments. Parsing never panics:
//! malformed input yields a [`CliError`] which the binaries report with
//! the [`USAGE`] dump and exit code 2.

use std::path::PathBuf;

use pp_engine::ensemble;
use pp_engine::{AdversarySpec, ChurnSpec, FaultSpec, SchedulerSpec};

/// Which simulation engine an experiment's table-protocol arms run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The sequential per-agent scheduler (`pp_engine::Simulation`), via
    /// `pp_engine::SeqTable` — the A/B reference, capped at moderate `n`.
    Seq,
    /// The batched configuration-space engine
    /// (`pp_engine::BatchSimulation`) — the default: it is the only way to
    /// reach the `n = 10⁸` grids.
    #[default]
    Batch,
    /// The per-pair batched engine (`pp_engine::PairwiseBatchSimulation`),
    /// a second batched reference for engine A/B/C runs.
    Pairwise,
}

impl Engine {
    /// Display label (matches the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Seq => "seq",
            Engine::Batch => "batch",
            Engine::Pairwise => "pairwise",
        }
    }

    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "seq" => Ok(Engine::Seq),
            "batch" => Ok(Engine::Batch),
            "pairwise" => Ok(Engine::Pairwise),
            other => Err(CliError(format!(
                "--engine must be 'seq', 'batch' or 'pairwise', got '{other}'"
            ))),
        }
    }
}

/// A CLI parsing failure (unknown flag, missing or malformed value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage dump shared by every experiment binary.
pub const USAGE: &str = "\
Common experiment flags:
  --trials N                 trials per configuration (default 10)
  --seed S                   base seed; trial i derives its own stream
  --full                     run the larger (slower) grid
  --out DIR                  output directory for CSV + manifest (default results/)
  --threads T                total worker budget (default: all cores); split
                             across concurrent trials first, leftover cores
                             parallelize inside each batched-engine run
                             (results are byte-identical at any T)
  --engine {seq,batch,pairwise}
                             engine for table-protocol arms (default batch)
  --faults SPEC[,SPEC..]     fault hooks, e.g. corrupt@50:0.1 inject@50:0.1:2
                             churn@50:0.05 (overrides scenario defaults)
  --scheduler SPEC           scheduler: uniform, starve:OP:W, pairbias:A
  --adversary SPEC           Byzantine liars: byz:FRAC, byz:FRAC:OPINION, or
                             census-driven adaptive:FRAC[:STRATEGY] with
                             STRATEGY one of boost-runnerup (default),
                             suppress-leader, split
  --churn SPEC               steady-state churn: churn:JOIN or churn:JOIN:LEAVE
                             (rates per agent per unit parallel time); add
                             :plurality or :minority to aim departures at the
                             leading/weakest opinion class
  --checkpoint-every T       write an engine checkpoint every T parallel time
                             (checkpoint-capable scenarios only)
  --resume FILE              resume a checkpoint-capable scenario from FILE
  --help                     print this help";

/// Options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Trials per configuration.
    pub trials: usize,
    /// Base seed; trial `i` derives its own stream.
    pub seed: u64,
    /// Run the larger (slower) grid.
    pub full: bool,
    /// Output directory for CSV files and run manifests.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
    /// Engine for table-protocol arms.
    pub engine: Engine,
    /// Fault hooks applied to every trial (overrides scenario defaults
    /// when non-empty).
    pub faults: Vec<FaultSpec>,
    /// Interaction scheduler override for every trial.
    pub scheduler: Option<SchedulerSpec>,
    /// Byzantine adversary override for every trial.
    pub adversary: Option<AdversarySpec>,
    /// Steady-state churn override (churn-capable scenarios only).
    pub churn: Option<ChurnSpec>,
    /// Parallel time between engine checkpoints (checkpoint-capable
    /// scenarios only).
    pub checkpoint_every: Option<f64>,
    /// Checkpoint file to resume from (checkpoint-capable scenarios only).
    pub resume: Option<PathBuf>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        Self {
            trials: 10,
            seed: 0x000E_1AB0_7A7E,
            full: false,
            out_dir: PathBuf::from("results"),
            threads: ensemble::default_threads(),
            engine: Engine::default(),
            faults: Vec::new(),
            scheduler: None,
            adversary: None,
            churn: None,
            checkpoint_every: None,
            resume: None,
        }
    }
}

/// Parse an argument list into options plus positional (non-flag)
/// arguments, without touching the process environment — the unit-testable
/// core of every binary's CLI.
///
/// A `--help` anywhere yields `CliError("help")`, which callers special-
/// case to print usage and exit 0.
///
/// # Errors
///
/// Returns a [`CliError`] naming the offending flag or value.
pub fn parse_args<I>(args: I) -> Result<(ExpOpts, Vec<String>), CliError>
where
    I: IntoIterator<Item = String>,
{
    let mut opts = ExpOpts::default();
    let mut positional = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| CliError(format!("{name} requires a value")))
        };
        fn parse_num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, CliError> {
            v.parse()
                .map_err(|_| CliError(format!("{name} expects a number, got '{v}'")))
        }
        match arg.as_str() {
            "--help" | "-h" => return Err(CliError("help".into())),
            "--trials" => opts.trials = parse_num("--trials", take("--trials")?)?,
            "--seed" => opts.seed = parse_num("--seed", take("--seed")?)?,
            "--full" => opts.full = true,
            "--out" => opts.out_dir = PathBuf::from(take("--out")?),
            "--threads" => opts.threads = parse_num("--threads", take("--threads")?)?,
            "--engine" => opts.engine = Engine::parse(&take("--engine")?)?,
            "--faults" => {
                opts.faults = FaultSpec::parse_list(&take("--faults")?).map_err(CliError)?;
            }
            "--scheduler" => {
                opts.scheduler = Some(take("--scheduler")?.parse().map_err(CliError)?);
            }
            "--adversary" => {
                opts.adversary = Some(take("--adversary")?.parse().map_err(CliError)?);
            }
            "--churn" => {
                opts.churn = Some(take("--churn")?.parse().map_err(CliError)?);
            }
            "--checkpoint-every" => {
                let t: f64 = parse_num("--checkpoint-every", take("--checkpoint-every")?)?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(CliError("--checkpoint-every must be positive".into()));
                }
                opts.checkpoint_every = Some(t);
            }
            "--resume" => opts.resume = Some(PathBuf::from(take("--resume")?)),
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown flag {other}")));
            }
            _ => positional.push(arg),
        }
    }
    if opts.trials == 0 {
        return Err(CliError("--trials must be at least 1".into()));
    }
    if opts.threads == 0 {
        return Err(CliError("--threads must be at least 1".into()));
    }
    Ok((opts, positional))
}

impl ExpOpts {
    /// Parse from `std::env::args()`, for binaries taking flags only.
    ///
    /// On malformed input: prints the error and [`USAGE`] to stderr and
    /// exits with code 2 (no panic, no backtrace). On `--help`: prints
    /// usage to stdout and exits 0.
    pub fn from_args() -> Self {
        match parse_args(std::env::args().skip(1)) {
            Ok((opts, positional)) if positional.is_empty() => opts,
            Ok((_, positional)) => exit_usage(&format!("unexpected argument '{}'", positional[0])),
            Err(e) => handle_cli_error(&e),
        }
    }

    /// Run `trials` independent trials in parallel; `f` receives the
    /// derived per-trial seed.
    pub fn run_trials<R: Send>(&self, stream: u64, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
        let base = pp_engine::rng::derive(self.seed, stream);
        ensemble::run_trials(self.trials, self.threads, |i| {
            f(pp_engine::rng::derive(base, i as u64))
        })
    }

    /// CSV path for an experiment table.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }

    /// Worker threads to give each *engine run*, treating `--threads` as a
    /// total budget: trial-level parallelism claims up to `trials` cores
    /// and whatever is left over multiplies each batched run. A single
    /// long trial therefore gets the whole machine; wide ensembles stay
    /// one-thread-per-trial. Thread counts never change results (the
    /// engine is thread-count-invariant), so this split is pure
    /// scheduling.
    pub fn engine_threads(&self) -> usize {
        (self.threads / self.trials.min(self.threads)).max(1)
    }
}

/// Resolve a [`CliError`]: `--help` prints usage and exits 0, anything
/// else prints the error plus usage and exits 2.
pub(crate) fn handle_cli_error(e: &CliError) -> ! {
    if e.0 == "help" {
        println!("{USAGE}");
        std::process::exit(0);
    }
    exit_usage(&e.0)
}

pub(crate) fn exit_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_are_sane() {
        let o = ExpOpts::default();
        assert!(o.trials > 0);
        assert!(o.threads >= 1);
        assert!(!o.full);
    }

    type OptsCheck = fn(&ExpOpts, &[String]) -> bool;

    #[test]
    fn parse_args_table() {
        // (argv, expected outcome)
        let ok_cases: &[(&[&str], OptsCheck)] = &[
            (&[], |o, p| o.trials == 10 && p.is_empty()),
            (&["--trials", "3"], |o, _| o.trials == 3),
            (&["--seed", "42", "--full"], |o, _| o.seed == 42 && o.full),
            (&["--engine", "seq"], |o, _| o.engine == Engine::Seq),
            (&["--engine", "batch"], |o, _| o.engine == Engine::Batch),
            (&["--engine", "pairwise"], |o, _| {
                o.engine == Engine::Pairwise
            }),
            (&["--out", "/tmp/x"], |o, _| {
                o.out_dir == std::path::Path::new("/tmp/x")
            }),
            (&["--faults", "corrupt@50:0.1,churn@80:0.05"], |o, _| {
                o.faults.len() == 2 && o.faults[0].to_string() == "corrupt@50:0.1"
            }),
            (&["--scheduler", "starve:1:0.5"], |o, _| {
                o.scheduler.map(|s| s.to_string()) == Some("starve:1:0.5".into())
            }),
            (&["--scheduler", "uniform"], |o, _| o.scheduler.is_some()),
            (&["--adversary", "byz:0.1"], |o, _| {
                o.adversary.map(|a| a.to_string()) == Some("byz:0.1".into())
            }),
            (&["--adversary", "byz:0.05:2"], |o, _| {
                o.adversary.map(|a| a.to_string()) == Some("byz:0.05:2".into())
            }),
            (&["--churn", "churn:0.01"], |o, _| {
                o.churn.map(|c| c.to_string()) == Some("churn:0.01".into())
            }),
            (&["--churn", "churn:0.02:0.01"], |o, _| {
                o.churn
                    == Some(ChurnSpec {
                        join: 0.02,
                        leave: 0.01,
                        ..ChurnSpec::default()
                    })
            }),
            (&["--adversary", "adaptive:0.1"], |o, _| {
                o.adversary.map(|a| a.to_string()) == Some("adaptive:0.1:boost-runnerup".into())
            }),
            (&["--adversary", "adaptive:0.05:split"], |o, _| {
                o.adversary.map(|a| a.to_string()) == Some("adaptive:0.05:split".into())
            }),
            (&["--churn", "churn:0.01:0.02:plurality"], |o, _| {
                o.churn.map(|c| c.to_string()) == Some("churn:0.01:0.02:plurality".into())
            }),
            (&["--churn", "churn:0:0.01:minority"], |o, _| {
                o.churn.map(|c| c.to_string()) == Some("churn:0:0.01:minority".into())
            }),
            (&["--checkpoint-every", "25"], |o, _| {
                o.checkpoint_every == Some(25.0)
            }),
            (&["--resume", "/tmp/x22.ckpt"], |o, _| {
                o.resume == Some(PathBuf::from("/tmp/x22.ckpt"))
            }),
            (&["run", "x01", "--trials", "2"], |o, p| {
                o.trials == 2 && p == ["run".to_string(), "x01".to_string()]
            }),
        ];
        for (args, check) in ok_cases {
            let (opts, positional) =
                parse_args(argv(args)).unwrap_or_else(|e| panic!("{args:?}: {e}"));
            assert!(check(&opts, &positional), "{args:?}");
        }

        let err_cases: &[(&[&str], &str)] = &[
            (&["--trials"], "--trials requires a value"),
            (&["--trials", "abc"], "--trials expects a number, got 'abc'"),
            (&["--trials", "0"], "--trials must be at least 1"),
            (&["--threads", "0"], "--threads must be at least 1"),
            (&["--engine", "warp"], "'warp'"),
            (&["--faults", "meteor@9"], "meteor@9"),
            (&["--scheduler", "chaotic"], "chaotic"),
            (&["--adversary", "byz:1.5"], "byz:1.5"),
            (&["--adversary", "sybil:0.1"], "sybil:0.1"),
            (&["--churn", "churn:-1"], "churn:-1"),
            (&["--churn", "drizzle:0.1"], "drizzle:0.1"),
            (&["--adversary", "adaptive:0.1:warp"], "adaptive:0.1:warp"),
            (
                &["--churn", "churn:0.1:0.1:everyone"],
                "churn:0.1:0.1:everyone",
            ),
            (&["--checkpoint-every", "0"], "must be positive"),
            (&["--checkpoint-every", "-3"], "must be positive"),
            (&["--resume"], "--resume requires a value"),
            (&["--bogus"], "unknown flag --bogus"),
            (&["--help"], "help"),
            (&["-h"], "help"),
        ];
        for (args, want) in err_cases {
            let err = parse_args(argv(args)).expect_err(&format!("{args:?} should fail"));
            assert!(err.0.contains(want), "{args:?}: got '{}'", err.0);
        }
    }

    #[test]
    fn trial_seeds_differ_across_streams() {
        let o = ExpOpts::default();
        let a = o.run_trials(1, |s| s);
        let b = o.run_trials(2, |s| s);
        assert_ne!(a, b);
        // Deterministic given the same stream.
        assert_eq!(a, o.run_trials(1, |s| s));
    }
}
