//! Uniform driver for the three plurality protocols (and shared outcome
//! bookkeeping). Engine-erased arms — including the USD baseline — live
//! in [`crate::arm`].

use plurality_core::{ImprovedAlgorithm, SimpleAlgorithm, Tuning, UnorderedAlgorithm};
use pp_engine::{Census, RunOptions, RunStatus, Simulation};
use pp_workloads::Counts;

/// Which protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// `SimpleAlgorithm` (ordered opinions).
    Simple,
    /// The Appendix B unordered variant.
    Unordered,
    /// `ImprovedAlgorithm` (pruning).
    Improved,
}

impl Algo {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Simple => "simple",
            Algo::Unordered => "unordered",
            Algo::Improved => "improved",
        }
    }
}

/// Outcome of a single trial.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The run converged (someone won and everyone agreed).
    pub converged: bool,
    /// The run converged *to the planted plurality*.
    pub correct: bool,
    /// Parallel time consumed (budget, if exhausted).
    pub parallel_time: f64,
    /// Interaction index at which the initialization ended, if recorded.
    pub init_end: Option<u64>,
    /// Interaction index of the leader/defender release, if recorded.
    pub le_done: Option<u64>,
    /// Distinct states visited (only when census tracking was requested).
    pub census: Option<usize>,
}

/// Upper median of the parallel times over *all* trials (budget-capped
/// included) — the convention the experiment tables use for mixed
/// converged/exhausted samples.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median_parallel_time(outcomes: &[TrialOutcome]) -> f64 {
    let mut t: Vec<f64> = outcomes.iter().map(|o| o.parallel_time).collect();
    t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    t[t.len() / 2]
}

/// Run one trial of `algo` on `counts` with the given seed, parallel-time
/// budget and tuning. Set `census` to collect the distinct-state count
/// (slower).
pub fn run_trial(
    algo: Algo,
    counts: &Counts,
    seed: u64,
    budget: f64,
    tuning: Tuning,
    census: bool,
) -> TrialOutcome {
    let assignment = counts.assignment();
    let n = assignment.n();
    let expected = assignment.plurality();
    let opts = RunOptions::with_parallel_time_budget(n, budget);

    macro_rules! drive {
        ($ctor:path) => {{
            let (proto, states) = $ctor(&assignment, tuning);
            let mut sim = Simulation::new(proto, states, seed);
            let (result, census_len) = if census {
                let mut c = Census::new();
                let r = sim.run_with_census(&opts, &mut c);
                (r, Some(c.len()))
            } else {
                (sim.run(&opts), None)
            };
            let ms = *sim.protocol().milestones();
            TrialOutcome {
                converged: result.status == RunStatus::Converged,
                correct: result.is_correct(expected),
                parallel_time: result.parallel_time,
                init_end: ms.init_end,
                le_done: ms.le_done,
                census: census_len,
            }
        }};
    }

    match algo {
        Algo::Simple => drive!(SimpleAlgorithm::new),
        Algo::Unordered => drive!(UnorderedAlgorithm::new),
        Algo::Improved => drive!(ImprovedAlgorithm::new),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_protocols_drive() {
        let counts = Counts::bias_one(401, 3);
        for algo in [Algo::Simple, Algo::Unordered, Algo::Improved] {
            let out = run_trial(algo, &counts, 7, 500_000.0, Tuning::default(), false);
            assert!(out.converged, "{} did not converge", algo.name());
        }
    }

    #[test]
    fn census_is_collected_when_requested() {
        let counts = Counts::bias_one(401, 3);
        let out = run_trial(Algo::Simple, &counts, 3, 500_000.0, Tuning::default(), true);
        let states = out.census.expect("census requested");
        assert!(states > 10, "suspiciously few states: {states}");
    }
}
