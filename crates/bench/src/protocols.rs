//! Uniform driver for the three plurality protocols (and shared outcome
//! bookkeeping). Engine-erased arms — including the USD baseline — live
//! in [`crate::arm`].

use plurality_core::{ImprovedAlgorithm, SimpleAlgorithm, Tuning, UnorderedAlgorithm};
use pp_engine::{Census, FaultPlan, FaultRecord, RunOptions, RunStatus, Simulation};

use crate::arm::TrialSpec;

/// Which protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// `SimpleAlgorithm` (ordered opinions).
    Simple,
    /// The Appendix B unordered variant.
    Unordered,
    /// `ImprovedAlgorithm` (pruning).
    Improved,
}

impl Algo {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Simple => "simple",
            Algo::Unordered => "unordered",
            Algo::Improved => "improved",
        }
    }
}

/// Outcome of a single trial.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// The run converged (someone won and everyone agreed).
    pub converged: bool,
    /// The run converged *to the planted plurality*.
    pub correct: bool,
    /// Parallel time consumed (budget, if exhausted).
    pub parallel_time: f64,
    /// Interaction index at which the initialization ended, if recorded.
    pub init_end: Option<u64>,
    /// Interaction index of the leader/defender release, if recorded.
    pub le_done: Option<u64>,
    /// Distinct states visited (only when census tracking was requested).
    pub census: Option<usize>,
    /// Per-fault-epoch recovery bookkeeping (empty without a fault plan).
    pub faults: Vec<FaultRecord>,
}

/// Upper median of the parallel times over *all* trials (budget-capped
/// included) — the convention the experiment tables use for mixed
/// converged/exhausted samples.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median_parallel_time(outcomes: &[TrialOutcome]) -> f64 {
    let mut t: Vec<f64> = outcomes.iter().map(|o| o.parallel_time).collect();
    t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    t[t.len() / 2]
}

/// Run one trial of `algo` on the spec's counts with the given seed and
/// tuning. Honors the spec's fault plan, scheduler and adversary; census
/// collection (slower) takes precedence over fault injection when both
/// are requested.
pub fn run_trial(algo: Algo, spec: &TrialSpec, tuning: Tuning, seed: u64) -> TrialOutcome {
    let assignment = spec.counts.assignment();
    let n = assignment.n();
    let expected = assignment.plurality();
    let opts = RunOptions::with_parallel_time_budget(n, spec.budget);
    let plan = FaultPlan::from_specs(&spec.faults);

    macro_rules! drive {
        ($ctor:path) => {{
            let (proto, states) = $ctor(&assignment, tuning);
            let mut sim = Simulation::new(proto, states, seed);
            if let Some(sched) = spec.scheduler {
                sim.set_scheduler(sched.build());
            }
            if let Some(adv) = spec.adversary {
                sim.set_adversary(adv.build());
            }
            let (result, census_len) = if spec.census {
                let mut c = Census::new();
                let r = sim.run_with_census(&opts, &mut c);
                (r, Some(c.len()))
            } else {
                (sim.run_faulted(&opts, &plan), None)
            };
            let ms = *sim.protocol().milestones();
            TrialOutcome {
                converged: result.status == RunStatus::Converged,
                correct: result.is_correct(expected),
                parallel_time: result.parallel_time,
                init_end: ms.init_end,
                le_done: ms.le_done,
                census: census_len,
                faults: result.faults,
            }
        }};
    }

    match algo {
        Algo::Simple => drive!(SimpleAlgorithm::new),
        Algo::Unordered => drive!(UnorderedAlgorithm::new),
        Algo::Improved => drive!(ImprovedAlgorithm::new),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_workloads::Counts;

    #[test]
    fn all_three_protocols_drive() {
        let counts = Counts::bias_one(401, 3);
        let spec = TrialSpec::new(&counts, 500_000.0);
        for algo in [Algo::Simple, Algo::Unordered, Algo::Improved] {
            let out = run_trial(algo, &spec, Tuning::default(), 7);
            assert!(out.converged, "{} did not converge", algo.name());
            assert!(out.faults.is_empty(), "no plan, no fault records");
        }
    }

    #[test]
    fn census_is_collected_when_requested() {
        let counts = Counts::bias_one(401, 3);
        let mut spec = TrialSpec::new(&counts, 500_000.0);
        spec.census = true;
        let out = run_trial(Algo::Simple, &spec, Tuning::default(), 3);
        let states = out.census.expect("census requested");
        assert!(states > 10, "suspiciously few states: {states}");
    }
}
