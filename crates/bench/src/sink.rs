//! Result emission: console tables, CSV files, and the JSON run manifest.
//!
//! Every scenario run goes through one [`Sink`]. Tables are printed and
//! written as CSV exactly as the legacy binaries did; in addition the sink
//! records each table's schema and, on [`Sink::finish`], writes a
//! `<scenario>_manifest.json` next to the CSVs capturing everything needed
//! to reproduce the run: scenario name, base seed, trial count, grid
//! flavour, engine, fault plan, scheduler, thread count, git revision,
//! wall time, and the emitted outputs with their column schemas and row
//! counts.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use pp_stats::Table;

use crate::harness::ExpOpts;

/// One emitted table, as recorded in the manifest.
struct EmittedTable {
    csv: String,
    title: String,
    columns: Vec<String>,
    rows: usize,
}

/// Collects a scenario run's outputs and writes the run manifest.
pub struct Sink {
    scenario: String,
    opts: ExpOpts,
    started: Instant,
    emitted: Vec<EmittedTable>,
    /// Print tables to stdout (off in tests).
    pub verbose: bool,
}

impl Sink {
    /// A sink for one run of `scenario` under `opts`.
    pub fn new(scenario: &str, opts: &ExpOpts) -> Self {
        Self {
            scenario: scenario.to_string(),
            opts: opts.clone(),
            started: Instant::now(),
            emitted: Vec::new(),
            verbose: true,
        }
    }

    /// Print `table` and persist it as `<out>/<csv_name>.csv`, recording
    /// its schema for the manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the CSV write.
    pub fn emit(&mut self, csv_name: &str, table: &Table) -> io::Result<()> {
        if self.verbose {
            table.print();
        }
        self.emit_csv_only(csv_name, table)
    }

    /// Persist and record a table without printing it — for time-series
    /// tables whose row count would flood the console.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the CSV write.
    pub fn emit_csv_only(&mut self, csv_name: &str, table: &Table) -> io::Result<()> {
        table.write_csv(self.opts.csv_path(csv_name))?;
        self.emitted.push(EmittedTable {
            csv: format!("{csv_name}.csv"),
            title: table.title().to_string(),
            columns: table.headers().to_vec(),
            rows: table.len(),
        });
        Ok(())
    }

    /// CSV basenames emitted so far (in order).
    pub fn emitted_names(&self) -> Vec<String> {
        self.emitted
            .iter()
            .map(|t| t.csv.trim_end_matches(".csv").to_string())
            .collect()
    }

    /// Write `<out>/<scenario>_manifest.json` and return its path.
    ///
    /// `declared` is the scenario's declared output schema (CSV basenames);
    /// a mismatch with what was actually emitted is an error — it means
    /// the scenario definition rotted.
    ///
    /// # Errors
    ///
    /// I/O errors from the write, or an output-schema mismatch.
    pub fn finish(self, declared: &[&str]) -> io::Result<PathBuf> {
        let emitted = self.emitted_names();
        if emitted != declared {
            return Err(io::Error::other(format!(
                "scenario '{}' declares outputs {declared:?} but emitted {emitted:?}",
                self.scenario
            )));
        }
        let path = self
            .opts
            .out_dir
            .join(format!("{}_manifest.json", self.scenario));
        fs::create_dir_all(&self.opts.out_dir)?;
        fs::write(&path, self.manifest_json())?;
        if self.verbose {
            eprintln!("  [{}] manifest: {}", self.scenario, path.display());
        }
        Ok(path)
    }

    fn manifest_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"scenario\": {},", json_str(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.opts.seed);
        let _ = writeln!(out, "  \"trials\": {},", self.opts.trials);
        let _ = writeln!(out, "  \"full\": {},", self.opts.full);
        let _ = writeln!(out, "  \"engine\": {},", json_str(self.opts.engine.name()));
        let faults = self
            .opts
            .faults
            .iter()
            .map(|f| json_str(&f.to_string()))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  \"faults\": [{faults}],");
        let scheduler = self
            .opts
            .scheduler
            .map_or_else(|| "null".to_string(), |s| json_str(&s.to_string()));
        let _ = writeln!(out, "  \"scheduler\": {scheduler},");
        let adversary = self
            .opts
            .adversary
            .map_or_else(|| "null".to_string(), |a| json_str(&a.to_string()));
        let _ = writeln!(out, "  \"adversary\": {adversary},");
        let churn = self
            .opts
            .churn
            .map_or_else(|| "null".to_string(), |c| json_str(&c.to_string()));
        let _ = writeln!(out, "  \"churn\": {churn},");
        let checkpoint_every = self
            .opts
            .checkpoint_every
            .map_or_else(|| "null".to_string(), |t| t.to_string());
        let _ = writeln!(out, "  \"checkpoint_every\": {checkpoint_every},");
        let resume = self.opts.resume.as_ref().map_or_else(
            || "null".to_string(),
            |p| json_str(&p.display().to_string()),
        );
        let _ = writeln!(out, "  \"resume\": {resume},");
        let _ = writeln!(out, "  \"threads\": {},", self.opts.threads);
        let _ = writeln!(
            out,
            "  \"out_dir\": {},",
            json_str(&self.opts.out_dir.display().to_string())
        );
        let _ = writeln!(out, "  \"git_rev\": {},", json_str(&git_rev()));
        let _ = writeln!(
            out,
            "  \"wall_s\": {:.3},",
            self.started.elapsed().as_secs_f64()
        );
        let _ = writeln!(out, "  \"outputs\": [");
        for (i, t) in self.emitted.iter().enumerate() {
            let cols = t
                .columns
                .iter()
                .map(|c| json_str(c))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "    {{\"csv\": {}, \"title\": {}, \"columns\": [{}], \"rows\": {}}}",
                json_str(&t.csv),
                json_str(&t.title),
                cols,
                t.rows
            );
            let _ = writeln!(out, "{}", if i + 1 < self.emitted.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// JSON string literal with the escapes CSV titles can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The current git revision, or "unknown" outside a repository.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_opts(tag: &str) -> ExpOpts {
        ExpOpts {
            out_dir: std::env::temp_dir()
                .join(format!("pp-sink-test-{tag}-{}", std::process::id())),
            ..ExpOpts::default()
        }
    }

    #[test]
    fn emits_csv_and_manifest_with_schema() {
        let opts = temp_opts("ok");
        let mut sink = Sink::new("x99", &opts);
        sink.verbose = false;
        let mut t = Table::new("demo", &["n", "time"]);
        t.push(vec!["10".into(), "1.5".into()]);
        sink.emit("x99_demo", &t).expect("emit");
        let manifest = sink.finish(&["x99_demo"]).expect("finish");
        let json = fs::read_to_string(&manifest).expect("read manifest");
        for needle in [
            "\"scenario\": \"x99\"",
            "\"seed\":",
            "\"git_rev\":",
            "\"wall_s\":",
            "\"faults\": []",
            "\"scheduler\": null",
            "\"adversary\": null",
            "\"churn\": null",
            "\"checkpoint_every\": null",
            "\"resume\": null",
            "\"csv\": \"x99_demo.csv\"",
            "\"columns\": [\"n\", \"time\"]",
            "\"rows\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!(opts.csv_path("x99_demo").exists());
        fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn manifest_round_trips_fault_and_scheduler_config() {
        use pp_engine::FaultSpec;
        let mut opts = temp_opts("faults");
        opts.faults = FaultSpec::parse_list("corrupt@50:0.1,inject@80:0.2:2").expect("valid specs");
        opts.scheduler = Some("starve:1:0.5".parse().expect("valid scheduler"));
        opts.adversary = Some("byz:0.05:2".parse().expect("valid adversary"));
        opts.churn = Some("churn:0.01:0.02".parse().expect("valid churn"));
        opts.checkpoint_every = Some(25.0);
        opts.resume = Some(PathBuf::from("/tmp/x22.ckpt"));
        let mut sink = Sink::new("x97", &opts);
        sink.verbose = false;
        let t = Table::new("demo", &["a"]);
        sink.emit("x97_t", &t).expect("emit");
        let manifest = sink.finish(&["x97_t"]).expect("finish");
        let json = fs::read_to_string(&manifest).expect("read manifest");
        // The recorded strings are exactly the CLI spellings, so a manifest
        // can be replayed by pasting them back into --faults/--scheduler.
        for needle in [
            "\"faults\": [\"corrupt@50:0.1\", \"inject@80:0.2:2\"]",
            "\"scheduler\": \"starve:1:0.5\"",
            "\"adversary\": \"byz:0.05:2\"",
            "\"churn\": \"churn:0.01:0.02\"",
            "\"checkpoint_every\": 25",
            "\"resume\": \"/tmp/x22.ckpt\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        for f in &opts.faults {
            let spec: FaultSpec = f.to_string().parse().expect("round-trip");
            assert_eq!(spec, *f);
        }
        fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn output_schema_mismatch_is_an_error() {
        let opts = temp_opts("mismatch");
        let mut sink = Sink::new("x98", &opts);
        sink.verbose = false;
        let t = Table::new("demo", &["a"]);
        sink.emit("x98_only", &t).expect("emit");
        assert!(sink.finish(&["x98_only", "x98_missing"]).is_err());
        fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
