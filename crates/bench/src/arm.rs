//! Engine-erased experiment arms.
//!
//! An *arm* is one protocol-under-test inside a scenario: a paper protocol
//! on the sequential engine, a table protocol on any of the three engines,
//! or a bespoke closure. The [`ErasedArm`] trait erases the concrete
//! protocol and engine types behind one uniform trial interface, so every
//! arm — regardless of which simulator it needs — honors `--engine`,
//! ensemble threading, census collection and per-trial seed derivation the
//! same way. This replaces the previously split `run_trial` /
//! `run_usd_baseline` code paths.

use plurality_core::Tuning;
use pp_engine::{
    AdversarySpec, BatchSimulation, Census, FaultPlan, FaultSpec, PairwiseBatchSimulation,
    RunOptions, RunStatus, SchedulerSpec, SeqTable, Simulation, TableProtocol,
};
use pp_workloads::Counts;

use crate::harness::Engine;
use crate::protocols::{run_trial, Algo, TrialOutcome};

/// Largest population the sequential engine is allowed for table arms
/// (per-agent state at 10⁸ agents is hundreds of megabytes per trial and
/// hours of walltime).
pub const SEQ_CAP: usize = 1_000_000;

/// Everything one trial needs besides the seed and the engine.
#[derive(Debug, Clone)]
pub struct TrialSpec<'a> {
    /// The initial opinion distribution.
    pub counts: &'a Counts,
    /// Parallel-time budget.
    pub budget: f64,
    /// Protocol tuning constants.
    pub tuning: Tuning,
    /// Collect the distinct-state census (slower; sequential engine only).
    pub census: bool,
    /// Fault hooks applied during the run (empty = fault-free).
    pub faults: Vec<FaultSpec>,
    /// Interaction scheduler (`None` = uniform hot path).
    pub scheduler: Option<SchedulerSpec>,
    /// Byzantine adversary (`None` = all participants honest).
    pub adversary: Option<AdversarySpec>,
    /// Worker threads *inside* each engine run (batched engine only).
    /// Results are byte-identical at any value; this is pure scheduling.
    pub threads: usize,
}

impl<'a> TrialSpec<'a> {
    /// A spec with default tuning, no census, no faults, single-threaded
    /// engine runs.
    pub fn new(counts: &'a Counts, budget: f64) -> Self {
        Self {
            counts,
            budget,
            tuning: Tuning::default(),
            census: false,
            faults: Vec::new(),
            scheduler: None,
            adversary: None,
            threads: 1,
        }
    }
}

/// An engine-erased experiment arm.
pub trait ErasedArm: Send + Sync {
    /// Row label ("simple", "usd", "3-state", …).
    fn label(&self) -> &str;

    /// Whether the arm can switch engines (`--engine`). Arms tied to the
    /// per-agent `Protocol` interface always run sequentially.
    fn engine_aware(&self) -> bool {
        false
    }

    /// Largest population this arm accepts on `engine`, if capped. The
    /// scenario layer skips grid points above the cap (with a note) rather
    /// than melting the machine.
    fn max_n(&self, engine: Engine) -> Option<usize> {
        let _ = engine;
        None
    }

    /// Run one trial.
    fn run(&self, spec: &TrialSpec, engine: Engine, seed: u64) -> TrialOutcome;
}

/// A boxed arm, as stored in scenario definitions.
pub type Arm = Box<dyn ErasedArm>;

// ---------------------------------------------------------------------------
// Paper-protocol arms (sequential engine).

struct ProtocolArm {
    label: String,
    algo: Algo,
    /// Overrides the spec tuning when set (for tuning-comparison arms).
    tuning: Option<Tuning>,
}

impl ErasedArm for ProtocolArm {
    fn label(&self) -> &str {
        &self.label
    }

    fn run(&self, spec: &TrialSpec, _engine: Engine, seed: u64) -> TrialOutcome {
        run_trial(self.algo, spec, self.tuning.unwrap_or(spec.tuning), seed)
    }
}

/// One of the paper's plurality protocols as an arm. Runs on the
/// sequential engine (the `Θ(k + log n)`-state machines are not table
/// protocols).
pub fn protocol(algo: Algo) -> Arm {
    Box::new(ProtocolArm {
        label: algo.name().to_string(),
        algo,
        tuning: None,
    })
}

/// A paper protocol with a fixed tuning and its own label, for arms that
/// compare tuning variants side by side.
pub fn protocol_tuned(label: impl Into<String>, algo: Algo, tuning: Tuning) -> Arm {
    Box::new(ProtocolArm {
        label: label.into(),
        algo,
        tuning: Some(tuning),
    })
}

// ---------------------------------------------------------------------------
// Table-protocol arms (engine-erased).

struct TableArm<P, F> {
    label: String,
    factory: F,
    _marker: std::marker::PhantomData<fn() -> P>,
}

impl<P, F> ErasedArm for TableArm<P, F>
where
    P: TableProtocol + Send + Sync,
    F: Fn(&Counts) -> (P, Vec<u64>) + Send + Sync,
{
    fn label(&self) -> &str {
        &self.label
    }

    fn engine_aware(&self) -> bool {
        true
    }

    fn max_n(&self, engine: Engine) -> Option<usize> {
        (engine == Engine::Seq).then_some(SEQ_CAP)
    }

    fn run(&self, spec: &TrialSpec, engine: Engine, seed: u64) -> TrialOutcome {
        let (table, init) = (self.factory)(spec.counts);
        let n: u64 = init.iter().sum();
        let expected = u32::from(spec.counts.plurality());
        let opts = RunOptions::with_parallel_time_budget(n as usize, spec.budget);
        let plan = FaultPlan::from_specs(&spec.faults);
        let (result, census) = match engine {
            Engine::Batch => {
                let mut sim = BatchSimulation::new(table, init, seed);
                sim.set_threads(spec.threads);
                if let Some(sched) = spec.scheduler {
                    sim.set_scheduler(sched.build());
                }
                if let Some(adv) = spec.adversary {
                    sim.set_adversary(adv.build());
                }
                (sim.run_faulted(&opts, &plan), None)
            }
            Engine::Pairwise => {
                let mut sim = PairwiseBatchSimulation::new(table, init, seed);
                sim.set_threads(spec.threads);
                if let Some(sched) = spec.scheduler {
                    sim.set_scheduler(sched.build());
                }
                if let Some(adv) = spec.adversary {
                    sim.set_adversary(adv.build());
                }
                (sim.run_faulted(&opts, &plan), None)
            }
            Engine::Seq => {
                let states = SeqTable::<P>::initial_states(&init);
                let mut sim = Simulation::new(SeqTable::new(table), states, seed);
                if let Some(sched) = spec.scheduler {
                    sim.set_scheduler(sched.build());
                }
                if let Some(adv) = spec.adversary {
                    sim.set_adversary(adv.build());
                }
                if spec.census {
                    let mut c = Census::new();
                    let r = sim.run_with_census(&opts, &mut c);
                    (r, Some(c.len()))
                } else {
                    (sim.run_faulted(&opts, &plan), None)
                }
            }
        };
        TrialOutcome {
            converged: result.status == RunStatus::Converged,
            correct: result.is_correct(expected),
            parallel_time: result.parallel_time,
            init_end: None,
            le_done: None,
            census,
            faults: result.faults,
        }
    }
}

/// A table protocol as an engine-erased arm: `factory` builds the table
/// and its initial configuration from the grid point's opinion counts.
/// The arm runs on whichever engine `--engine` selects — batched
/// (multinomial tallies), pairwise-batched, or sequential via
/// [`pp_engine::SeqTable`] (capped at [`SEQ_CAP`] agents).
///
/// Correctness is judged against the planted plurality, so the table's
/// output values must be opinion identifiers (true for USD and the
/// majority substrates).
pub fn table<P, F>(label: impl Into<String>, factory: F) -> Arm
where
    P: TableProtocol + Send + Sync + 'static,
    F: Fn(&Counts) -> (P, Vec<u64>) + Send + Sync + 'static,
{
    Box::new(TableArm {
        label: label.into(),
        factory,
        _marker: std::marker::PhantomData,
    })
}

/// The undecided-state-dynamics baseline as an engine-erased arm.
pub fn usd() -> Arm {
    table("usd", |counts: &Counts| {
        let t = pp_baselines::UsdTable::new(counts.k());
        let init = t.initial_counts(counts.supports());
        (t, init)
    })
}

// ---------------------------------------------------------------------------
// Closure arms.

struct FnArm<F> {
    label: String,
    f: F,
}

impl<F> ErasedArm for FnArm<F>
where
    F: Fn(&TrialSpec, u64) -> TrialOutcome + Send + Sync,
{
    fn label(&self) -> &str {
        &self.label
    }

    fn run(&self, spec: &TrialSpec, _engine: Engine, seed: u64) -> TrialOutcome {
        (self.f)(spec, seed)
    }
}

/// A bespoke sequential arm from a closure, for protocols outside both the
/// `Algo` set and the table interface (e.g. the cancel/split majority).
pub fn from_fn<F>(label: impl Into<String>, f: F) -> Arm
where
    F: Fn(&TrialSpec, u64) -> TrialOutcome + Send + Sync + 'static,
{
    Box::new(FnArm {
        label: label.into(),
        f,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usd_arm_agrees_across_all_three_engines() {
        let counts = Counts::bias_one(801, 3);
        let spec = TrialSpec::new(&counts, 1.0e4);
        let arm = usd();
        assert!(arm.engine_aware());
        for engine in [Engine::Seq, Engine::Batch, Engine::Pairwise] {
            let out = arm.run(&spec, engine, 11);
            assert!(out.converged, "usd did not converge on {}", engine.name());
        }
        assert_eq!(arm.max_n(Engine::Seq), Some(SEQ_CAP));
        assert_eq!(arm.max_n(Engine::Batch), None);
    }

    #[test]
    fn protocol_arm_runs_and_ignores_engine() {
        let counts = Counts::bias_one(401, 3);
        let spec = TrialSpec::new(&counts, 5.0e5);
        let arm = protocol(Algo::Simple);
        assert!(!arm.engine_aware());
        let out = arm.run(&spec, Engine::Batch, 7);
        assert!(out.converged);
    }

    #[test]
    fn table_arm_census_counts_occupied_states_on_seq() {
        let counts = Counts::bias_one(401, 3);
        let mut spec = TrialSpec::new(&counts, 1.0e4);
        spec.census = true;
        let out = usd().run(&spec, Engine::Seq, 5);
        // USD over k = 3 occupies at most 4 states (blank + opinions).
        let states = out.census.expect("census requested on seq");
        assert!((2..=4).contains(&states), "states = {states}");
        // Batched engines cannot collect a per-agent census.
        assert!(usd().run(&spec, Engine::Batch, 5).census.is_none());
    }
}
