//! Declarative scenario API.
//!
//! A [`Scenario`] is a registered experiment: a name, a one-line
//! description, a declared output schema (the CSV basenames it emits) and
//! a run function. Scenario bodies receive a [`Ctx`] giving them the
//! parsed CLI options, uniform arm execution ([`Ctx::run_arm`]) and result
//! emission ([`Ctx::emit`] → CSV + manifest).
//!
//! Grid-shaped experiments don't write loops at all: a [`Study`] describes
//! a grid of [`GridPoint`]s (workload + budget + tuning), a list of
//! engine-erased [`Arm`]s and an output schema as [`ColSpec`] columns, and
//! [`Study::run`] executes the cross product — honoring `--engine`,
//! per-arm population caps, ensemble threading and seed derivation — then
//! emits the table and returns the raw per-point outcomes for bespoke
//! post-processing (fits, cross-arm ratios).
//!
//! Adding a new experiment is: write a `scenarios/xNN.rs` with a `Study`
//! (typically < 20 lines), register it in `registry.rs`, done — it is
//! immediately runnable as `xp run xNN` with manifests, engine A/B and
//! threading for free.

use std::io;

use plurality_core::Tuning;
use pp_engine::{AdversarySpec, FaultSpec, SchedulerSpec};
use pp_stats::{Summary, Table};
use pp_workloads::{Counts, Workload};

use crate::arm::{Arm, ErasedArm, TrialSpec};
use crate::harness::{Engine, ExpOpts};
use crate::protocols::TrialOutcome;
use crate::sink::Sink;

/// A registered experiment.
pub struct Scenario {
    /// Short name (`"x01"`), the primary CLI handle.
    pub name: &'static str,
    /// Long name (`"x01_simple_scaling"`), matching the legacy binary.
    pub slug: &'static str,
    /// One-line description for `xp list`.
    pub about: &'static str,
    /// CSV basenames this scenario emits, in order — the output schema
    /// contract checked by [`Sink::finish`].
    pub outputs: &'static [&'static str],
    /// The scenario body.
    pub run: fn(&mut Ctx) -> io::Result<()>,
}

/// Everything a scenario body gets to work with.
pub struct Ctx<'a> {
    /// Parsed CLI options.
    pub opts: &'a ExpOpts,
    /// Output sink (CSV + manifest).
    pub sink: &'a mut Sink,
}

impl Ctx<'_> {
    /// Whether `--full` was passed.
    pub fn full(&self) -> bool {
        self.opts.full
    }

    /// Print and persist a table (see [`Sink::emit`]).
    ///
    /// # Errors
    ///
    /// Propagates the CSV write failure.
    pub fn emit(&mut self, csv_name: &str, table: &Table) -> io::Result<()> {
        self.sink.emit(csv_name, table)
    }

    /// Persist a table as CSV (and record it in the manifest) without
    /// printing it — for per-sample time series (see
    /// [`Sink::emit_csv_only`]).
    ///
    /// # Errors
    ///
    /// Propagates the CSV write failure.
    pub fn emit_csv_only(&mut self, csv_name: &str, table: &Table) -> io::Result<()> {
        self.sink.emit_csv_only(csv_name, table)
    }

    /// Run the configured number of trials of an arbitrary closure in
    /// parallel; `f` receives the derived per-trial seed. The escape hatch
    /// for observational experiments that drive simulations by hand.
    pub fn run_trials<R: Send>(&self, stream: u64, f: impl Fn(u64) -> R + Sync) -> Vec<R> {
        self.opts.run_trials(stream, f)
    }

    /// The engine `arm` will actually run on under the current options.
    pub fn engine_for(&self, arm: &dyn ErasedArm) -> Engine {
        if arm.engine_aware() {
            self.opts.engine
        } else {
            Engine::Seq
        }
    }

    /// Run one arm over the ensemble: resolves the engine, derives
    /// per-trial seeds from `stream` and fans trials out across threads.
    pub fn run_arm(&self, arm: &dyn ErasedArm, spec: &TrialSpec, stream: u64) -> Vec<TrialOutcome> {
        let engine = self.engine_for(arm);
        self.opts
            .run_trials(stream, |seed| arm.run(spec, engine, seed))
    }
}

// ---------------------------------------------------------------------------
// Declarative studies.

/// One grid point of a [`Study`].
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Sweep label (for multi-sweep tables; empty when unused).
    pub sweep: &'static str,
    /// Free-form row key (ablation factor, bias multiple, …).
    pub tag: String,
    /// The initial opinion distribution.
    pub workload: Workload,
    /// Parallel-time budget.
    pub budget: f64,
    /// Tuning constants (per-point so ablations can sweep them).
    pub tuning: Tuning,
    /// Fault hooks applied in every trial of this point (`--faults`
    /// overrides when non-empty).
    pub faults: Vec<FaultSpec>,
    /// Interaction scheduler (`--scheduler` overrides; `None` = uniform).
    pub scheduler: Option<SchedulerSpec>,
    /// Byzantine adversary (`--adversary` overrides; `None` = honest).
    pub adversary: Option<AdversarySpec>,
}

impl GridPoint {
    /// A point with default tuning, empty labels and no faults.
    pub fn new(workload: Workload, budget: f64) -> Self {
        Self {
            sweep: "",
            tag: String::new(),
            workload,
            budget,
            tuning: Tuning::default(),
            faults: Vec::new(),
            scheduler: None,
            adversary: None,
        }
    }

    /// Set the sweep label.
    pub fn sweep(mut self, sweep: &'static str) -> Self {
        self.sweep = sweep;
        self
    }

    /// Set the row key.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Set the tuning.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Set the fault plan.
    pub fn faults(mut self, faults: impl Into<Vec<FaultSpec>>) -> Self {
        self.faults = faults.into();
        self
    }

    /// Set the scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Set the Byzantine adversary.
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = Some(adversary);
        self
    }
}

/// An arm inside a study, with optional per-arm overrides.
struct StudyArm {
    arm: Arm,
    /// Budget override (e.g. the stable-majority arm needs Θ(n) time).
    budget: Option<f64>,
    /// Population cap on top of the arm's own engine caps.
    cap: Option<usize>,
}

/// The completed trials of one (grid point × arm) cell.
pub struct PointRun {
    /// The grid point.
    pub point: GridPoint,
    /// Arm label.
    pub arm: String,
    /// Engine the cell ran on.
    pub engine: Engine,
    /// Per-trial outcomes, in trial order.
    pub outcomes: Vec<TrialOutcome>,
}

impl PointRun {
    /// Population size.
    pub fn n(&self) -> usize {
        self.point.workload.n()
    }

    /// Opinion count.
    pub fn k(&self) -> usize {
        self.point.workload.k()
    }

    /// Trials that converged to the planted plurality.
    pub fn ok(&self) -> usize {
        self.outcomes.iter().filter(|o| o.correct).count()
    }

    /// Total trials.
    pub fn trials(&self) -> usize {
        self.outcomes.len()
    }

    /// Trials that exhausted their budget.
    pub fn timeouts(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.converged).count()
    }

    /// Parallel times of the converged trials.
    pub fn converged_times(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.converged)
            .map(|o| o.parallel_time)
            .collect()
    }

    /// Summary of the converged times, if any trial converged.
    pub fn summary(&self) -> Option<Summary> {
        let times = self.converged_times();
        (!times.is_empty()).then(|| Summary::of(&times))
    }

    /// Median parallel time over *all* trials (budget-capped included).
    pub fn median_all(&self) -> f64 {
        crate::protocols::median_parallel_time(&self.outcomes)
    }

    /// Median of the converged times, `NaN` if none converged.
    pub fn median(&self) -> f64 {
        self.summary().map_or(f64::NAN, |s| s.median)
    }

    /// Recovery times (parallel time from fault epoch back to an agreeing
    /// population) over all fault records of all trials, recovered epochs
    /// only.
    pub fn recovery_times(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .flat_map(|o| &o.faults)
            .filter(|f| f.recovered())
            .map(|f| f.recovery_time)
            .collect()
    }

    /// Median recovery time over recovered fault epochs, `NaN` if none.
    pub fn median_recovery(&self) -> f64 {
        let mut t = self.recovery_times();
        if t.is_empty() {
            return f64::NAN;
        }
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        t[t.len() / 2]
    }

    /// Trials where the pre-fault winner survived every fault epoch (the
    /// population reconverged to the same output it held before the first
    /// strike).
    pub fn survived(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.faults.is_empty() && o.faults.iter().all(|f| f.winner_survived()))
            .count()
    }
}

/// One output column: a header plus a formatter over a completed cell.
pub struct ColSpec {
    /// Column header.
    pub header: String,
    value: Box<dyn Fn(&PointRun) -> String>,
}

/// Column constructors for [`Study`] output schemas.
pub mod col {
    use super::{ColSpec, PointRun};
    use pp_engine::ChurnSample;

    /// Integrated consensus fraction of a churn-soak series, formatted for
    /// a CSV cell: the fraction of samples at which the exact predicate
    /// fired, `NaN` on an empty series. Soak scenarios (x22, x24) drive
    /// the engines by hand and stitch series across checkpoint segments,
    /// so this is a value helper rather than a [`ColSpec`].
    pub fn time_in_consensus(series: &[ChurnSample]) -> String {
        format!("{:.4}", pp_engine::result::time_in_consensus(series))
    }

    /// A column from a header and a formatter.
    pub fn derived(
        header: impl Into<String>,
        f: impl Fn(&PointRun) -> String + 'static,
    ) -> ColSpec {
        ColSpec {
            header: header.into(),
            value: Box::new(f),
        }
    }

    /// The sweep label.
    pub fn sweep() -> ColSpec {
        derived("sweep", |r| r.point.sweep.to_string())
    }

    /// The row key under a custom header.
    pub fn tag(header: &str) -> ColSpec {
        derived(header, |r| r.point.tag.clone())
    }

    /// Population size.
    pub fn n() -> ColSpec {
        derived("n", |r| r.n().to_string())
    }

    /// Opinion count.
    pub fn k() -> ColSpec {
        derived("k", |r| r.k().to_string())
    }

    /// Workload bias (plurality minus runner-up).
    pub fn bias() -> ColSpec {
        derived("bias", |r| r.point.workload.counts().bias().to_string())
    }

    /// Arm label under a custom header ("algo", "protocol", …).
    pub fn arm(header: &str) -> ColSpec {
        derived(header, |r| r.arm.clone())
    }

    /// Engine name.
    pub fn engine() -> ColSpec {
        derived("engine", |r| r.engine.name().to_string())
    }

    /// Correct trials as "ok/total".
    pub fn ok_frac() -> ColSpec {
        derived("ok", |r| format!("{}/{}", r.ok(), r.trials()))
    }

    /// Correct trials as a bare count.
    pub fn ok_count() -> ColSpec {
        derived("ok", |r| r.ok().to_string())
    }

    /// Total trials.
    pub fn trials() -> ColSpec {
        derived("trials", |r| r.trials().to_string())
    }

    /// Budget-exhausted trials.
    pub fn timeouts() -> ColSpec {
        derived("timeouts", |r| r.timeouts().to_string())
    }

    /// Success rate with the given precision.
    pub fn rate(prec: usize) -> ColSpec {
        derived("rate", move |r| {
            format!("{:.prec$}", r.ok() as f64 / r.trials() as f64)
        })
    }

    /// Median of converged times (`NaN` if none), given precision.
    pub fn median(prec: usize) -> ColSpec {
        derived("median", move |r| format!("{:.prec$}", r.median()))
    }

    /// Median over all trials (budget-capped included), custom header.
    pub fn median_all(header: &str, prec: usize) -> ColSpec {
        derived(header, move |r| format!("{:.prec$}", r.median_all()))
    }

    /// Mean of converged times, given precision.
    pub fn mean(prec: usize) -> ColSpec {
        derived("mean", move |r| {
            format!("{:.prec$}", r.summary().map_or(f64::NAN, |s| s.mean))
        })
    }

    /// 95% CI half-width of converged times, given precision.
    pub fn ci95(prec: usize) -> ColSpec {
        derived("ci95", move |r| {
            format!("{:.prec$}", r.summary().map_or(f64::NAN, |s| s.ci95()))
        })
    }

    /// Median recovery time after a fault strike (`NaN` if no epoch
    /// recovered), given precision.
    pub fn recovery(prec: usize) -> ColSpec {
        derived("recovery", move |r| {
            format!("{:.prec$}", r.median_recovery())
        })
    }

    /// Trials whose pre-fault winner survived every strike, as
    /// "survived/total".
    pub fn survived() -> ColSpec {
        derived("survived", |r| format!("{}/{}", r.survived(), r.trials()))
    }
}

/// A declarative grid × arms experiment.
pub struct Study {
    title: String,
    csv: String,
    stream_base: u64,
    census: bool,
    arm_major: bool,
    skip_unconverged: bool,
    grid: Vec<GridPoint>,
    arms: Vec<StudyArm>,
    cols: Vec<ColSpec>,
}

impl Study {
    /// A study printing under `title` and persisting as `<csv>.csv`.
    pub fn new(title: impl Into<String>, csv: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            csv: csv.into(),
            stream_base: 0,
            census: false,
            arm_major: false,
            skip_unconverged: false,
            grid: Vec::new(),
            arms: Vec::new(),
            cols: Vec::new(),
        }
    }

    /// Base of the seed-stream range (keep distinct across studies within
    /// a scenario). Cell `(arm i, point j)` uses stream
    /// `base + i·10000 + j`.
    pub fn stream_base(mut self, base: u64) -> Self {
        self.stream_base = base;
        self
    }

    /// Collect the distinct-state census in every trial (slower).
    pub fn census(mut self, census: bool) -> Self {
        self.census = census;
        self
    }

    /// Iterate arms in the outer loop (default: grid points outer).
    pub fn arm_major(mut self) -> Self {
        self.arm_major = true;
        self
    }

    /// Skip (with a note) rows where no trial converged, instead of
    /// printing `NaN` statistics.
    pub fn skip_unconverged(mut self) -> Self {
        self.skip_unconverged = true;
        self
    }

    /// Add one grid point.
    pub fn point(mut self, point: GridPoint) -> Self {
        self.grid.push(point);
        self
    }

    /// Add many grid points.
    pub fn points(mut self, points: impl IntoIterator<Item = GridPoint>) -> Self {
        self.grid.extend(points);
        self
    }

    /// Add an arm.
    pub fn arm(mut self, arm: Arm) -> Self {
        self.arms.push(StudyArm {
            arm,
            budget: None,
            cap: None,
        });
        self
    }

    /// Add an arm with a budget override and/or an extra population cap.
    pub fn arm_with(mut self, arm: Arm, budget: Option<f64>, cap: Option<usize>) -> Self {
        self.arms.push(StudyArm { arm, budget, cap });
        self
    }

    /// Set the output schema.
    pub fn cols(mut self, cols: Vec<ColSpec>) -> Self {
        self.cols = cols;
        self
    }

    /// Execute the grid × arm cross product, emit the table, and return
    /// the per-cell outcomes (in emitted row order) for post-processing.
    ///
    /// Cells whose population exceeds the arm's engine cap are skipped
    /// with a console note, as are unconverged cells under
    /// [`skip_unconverged`](Self::skip_unconverged).
    ///
    /// # Errors
    ///
    /// Propagates the CSV write failure.
    pub fn run(self, ctx: &mut Ctx) -> io::Result<Vec<PointRun>> {
        let headers: Vec<&str> = self.cols.iter().map(|c| c.header.as_str()).collect();
        let mut table = Table::new(self.title.clone(), &headers);
        let mut runs = Vec::new();

        let cells: Vec<(usize, usize)> = if self.arm_major {
            (0..self.arms.len())
                .flat_map(|a| (0..self.grid.len()).map(move |p| (a, p)))
                .collect()
        } else {
            (0..self.grid.len())
                .flat_map(|p| (0..self.arms.len()).map(move |a| (a, p)))
                .collect()
        };

        for (arm_idx, point_idx) in cells {
            let sa = &self.arms[arm_idx];
            let point = &self.grid[point_idx];
            let engine = ctx.engine_for(sa.arm.as_ref());
            let n = point.workload.n();
            let cap = sa
                .arm
                .max_n(engine)
                .unwrap_or(usize::MAX)
                .min(sa.cap.unwrap_or(usize::MAX));
            if n > cap {
                eprintln!(
                    "  [{}] skipping n={n} on {} (cap {cap})",
                    sa.arm.label(),
                    engine.name()
                );
                continue;
            }
            let counts: Counts = point.workload.counts();
            // CLI fault/scheduler/adversary flags override the point's
            // defaults.
            let faults = if ctx.opts.faults.is_empty() {
                point.faults.clone()
            } else {
                ctx.opts.faults.clone()
            };
            let spec = TrialSpec {
                counts: &counts,
                budget: sa.budget.unwrap_or(point.budget),
                tuning: point.tuning,
                census: self.census,
                faults,
                scheduler: ctx.opts.scheduler.or(point.scheduler),
                adversary: ctx.opts.adversary.or(point.adversary),
                threads: ctx.opts.engine_threads(),
            };
            let stream = self.stream_base + (arm_idx as u64) * 10_000 + point_idx as u64;
            let outcomes = ctx.run_arm(sa.arm.as_ref(), &spec, stream);
            let run = PointRun {
                point: point.clone(),
                arm: sa.arm.label().to_string(),
                engine,
                outcomes,
            };
            if self.skip_unconverged && run.summary().is_none() {
                eprintln!("  [{}] n={n}: no convergence!", run.arm);
                continue;
            }
            if ctx.sink.verbose {
                eprintln!(
                    "  [{}] n={n} k={}: ok {}/{}, median {:.1}",
                    run.arm,
                    run.k(),
                    run.ok(),
                    run.trials(),
                    run.median()
                );
            }
            table.push(self.cols.iter().map(|c| (c.value)(&run)).collect());
            runs.push(run);
        }

        ctx.emit(&self.csv, &table)?;
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm;

    #[test]
    fn study_runs_grid_times_arms_and_emits_schema() {
        let opts = ExpOpts {
            trials: 2,
            out_dir: std::env::temp_dir().join(format!("pp-study-test-{}", std::process::id())),
            ..ExpOpts::default()
        };
        let mut sink = Sink::new("t", &opts);
        sink.verbose = false;
        let mut ctx = Ctx {
            opts: &opts,
            sink: &mut sink,
        };
        let runs = Study::new("t", "t_study")
            .points([400usize, 800].map(|n| GridPoint::new(Workload::BiasOne { n, k: 3 }, 1.0e4)))
            .arm(arm::usd())
            .cols(vec![
                col::n(),
                col::k(),
                col::engine(),
                col::ok_frac(),
                col::median(1),
            ])
            .run(&mut ctx)
            .expect("study runs");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].trials(), 2);
        assert_eq!(runs[0].engine, Engine::Batch);
        let csv = std::fs::read_to_string(opts.csv_path("t_study")).expect("csv written");
        assert!(csv.starts_with("n,k,engine,ok,median\n"), "csv: {csv}");
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn seq_cap_skips_oversized_cells() {
        let opts = ExpOpts {
            trials: 1,
            engine: Engine::Seq,
            out_dir: std::env::temp_dir().join(format!("pp-cap-test-{}", std::process::id())),
            ..ExpOpts::default()
        };
        let mut sink = Sink::new("t", &opts);
        sink.verbose = false;
        let mut ctx = Ctx {
            opts: &opts,
            sink: &mut sink,
        };
        let runs = Study::new("t", "t_cap")
            .point(GridPoint::new(Workload::BiasOne { n: 400, k: 2 }, 1.0e4))
            // Far beyond SEQ_CAP: must be skipped, not attempted.
            .point(GridPoint::new(
                Workload::BiasOne {
                    n: 100_000_000,
                    k: 2,
                },
                1.0e4,
            ))
            .arm(arm::usd())
            .cols(vec![col::n(), col::ok_frac()])
            .run(&mut ctx)
            .expect("study runs");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].engine, Engine::Seq);
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }
}
