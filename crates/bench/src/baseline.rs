//! The shared USD baseline arm for scaling experiments.
//!
//! x01/x04 (and x13's large-`n` rows) contrast the paper's exact
//! protocols with undecided-state dynamics on identical inputs. The arm
//! runs on the batched configuration-space engine by default — the only
//! way to reach `n = 10⁸` — with `--engine seq` as the sequential A/B.

use pp_stats::{Summary, Table};
use pp_workloads::Counts;

use crate::harness::{Engine, ExpOpts};
use crate::protocols::run_usd_trial;

/// Largest population the sequential engine is allowed on (per-agent state
/// at 10⁸ agents is hundreds of megabytes per trial and hours of walltime).
const SEQ_CAP: usize = 1_000_000;

/// Run the USD baseline arm over `grid` (extended to `n = 10⁸` under
/// `--full`), print the table and write `<csv_name>.csv`.
pub fn run_usd_baseline(
    opts: &ExpOpts,
    mut grid: Vec<usize>,
    k: usize,
    experiment: &str,
    csv_name: &str,
    stream_base: u64,
) {
    if opts.full {
        grid.extend([1_000_000, 100_000_000]);
        if opts.engine == Engine::Seq {
            grid.retain(|&n| n <= SEQ_CAP);
            eprintln!("  [baseline] --engine seq: capping the USD grid at n = 10⁶");
        }
    }
    let mut table = Table::new(
        format!(
            "{experiment}-baseline: USD on bias-1 inputs ({} engine)",
            opts.engine.name()
        ),
        &["n", "k", "engine", "ok", "median", "mean", "ci95", "t/ln n"],
    );
    for (i, &n) in grid.iter().enumerate() {
        let counts = Counts::bias_one(n, k);
        let outcomes = opts.run_trials(stream_base + i as u64, |seed| {
            run_usd_trial(opts.engine, &counts, seed, 1.0e4)
        });
        let ok = outcomes.iter().filter(|o| o.correct).count();
        let times: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.converged)
            .map(|o| o.parallel_time)
            .collect();
        if times.is_empty() {
            eprintln!("  [baseline] n={n}: no convergence!");
            continue;
        }
        let s = Summary::of(&times);
        table.push(vec![
            n.to_string(),
            k.to_string(),
            opts.engine.name().into(),
            format!("{ok}/{}", outcomes.len()),
            format!("{:.1}", s.median),
            format!("{:.1}", s.mean),
            format!("{:.1}", s.ci95()),
            format!("{:.2}", s.median / (n as f64).ln()),
        ]);
        eprintln!(
            "  [baseline] n={n}: median {:.1} (ok {ok}/{})",
            s.median,
            outcomes.len()
        );
    }
    table.print();
    table.write_csv(opts.csv_path(csv_name)).expect("write csv");
}
