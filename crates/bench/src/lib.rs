//! Shared experiment-harness utilities.
//!
//! Every experiment binary (`x01`–`x15`) uses this crate for CLI options,
//! parallel trial execution and result recording. Experiments print the
//! table they regenerate (the rows recorded in `EXPERIMENTS.md`) and write
//! the same rows as CSV under `results/`.

pub mod baseline;
pub mod harness;
pub mod protocols;

pub use baseline::run_usd_baseline;
pub use harness::{Engine, ExpOpts};
pub use protocols::{run_trial, run_usd_trial, Algo, TrialOutcome};
