//! The experiment layer: a declarative scenario API plus the `xp` driver.
//!
//! The paper's evaluation is a matrix of protocols × workloads × engines.
//! This crate expresses it as *data*:
//!
//! * [`arm`] — engine-erased protocol arms ([`arm::ErasedArm`]): paper
//!   protocols on the sequential engine, table protocols on any of the
//!   three engines (`--engine {seq,batch,pairwise}`), bespoke closures —
//!   all sharing seed derivation, ensemble threading and census handling;
//! * [`scenario`] — [`scenario::Scenario`] (a registered experiment) and
//!   [`scenario::Study`] (a declarative grid × arms × columns runner);
//! * [`sink`] — CSV emission plus a JSON run manifest (seed, grid flavour,
//!   engine, fault plan, scheduler, git revision, wall time, per-table
//!   schemas) for every run;
//! * [`registry`] — the scenario table behind `xp list` / `xp run` /
//!   `xp all` and the legacy `x01_…`–`x16_…` shim binaries;
//! * [`harness`] — the shared CLI ([`ExpOpts`], [`parse_args`]) and
//!   trial-ensemble execution, including the fault-injection flags
//!   (`--faults corrupt@50:0.1,…` and `--scheduler starve:1:0.5`) that
//!   every scenario honors.
//!
//! # Running experiments
//!
//! ```text
//! xp list                      # what is registered
//! xp run x01 --full            # one scenario, full grid
//! xp run x03 x13 --trials 50   # several scenarios
//! xp all --filter usd          # every scenario whose name matches
//! ```
//!
//! The legacy binaries (`x01_simple_scaling`, …) still exist as shims
//! delegating into the registry, so `cargo run --bin x01_simple_scaling`
//! and `xp run x01` produce identical rows for the same seed.
//!
//! # Adding a scenario
//!
//! Write `scenarios/xNN.rs` exposing a `SCENARIO` constant whose body is
//! (typically) one [`scenario::Study`] — grid points from named
//! [`pp_workloads::Workload`]s, arms from [`arm`], output schema from
//! [`scenario::col`] — then add it to the array in `registry.rs`. See
//! `scenarios/x17.rs` for the template; the definition is under twenty
//! lines and `xp run xNN` works immediately, manifest included.

pub mod arm;
pub mod harness;
pub mod protocols;
pub mod registry;
pub mod scenario;
pub mod scenarios;
pub mod sink;

pub use arm::{Arm, ErasedArm, TrialSpec};
pub use harness::{parse_args, CliError, Engine, ExpOpts, USAGE};
pub use protocols::{median_parallel_time, run_trial, Algo, TrialOutcome};
pub use scenario::{col, Ctx, GridPoint, PointRun, Scenario, Study};
pub use sink::Sink;
