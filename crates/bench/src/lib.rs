//! Shared experiment-harness utilities.
//!
//! Every experiment binary (`x01`–`x15`) uses this crate for CLI options,
//! parallel trial execution and result recording. Experiments print the
//! table they regenerate (the rows recorded in `EXPERIMENTS.md`) and write
//! the same rows as CSV under `results/`.

pub mod harness;
pub mod protocols;

pub use harness::ExpOpts;
pub use protocols::{run_trial, Algo, TrialOutcome};
