//! The experiment registry: every scenario the `xp` driver can run.
//!
//! Scenarios register here by adding their `SCENARIO` constant to
//! [`SCENARIOS`]; `xp list`, `xp run` and `xp all` all read this one
//! table, as do the legacy per-experiment shim binaries
//! ([`shim_main`]).

use std::io;
use std::path::PathBuf;

use crate::harness::{self, ExpOpts};
use crate::scenario::{Ctx, Scenario};
use crate::scenarios;
use crate::sink::Sink;

/// All registered scenarios, in run order.
static SCENARIOS: [Scenario; 24] = [
    scenarios::x01::SCENARIO,
    scenarios::x02::SCENARIO,
    scenarios::x03::SCENARIO,
    scenarios::x04::SCENARIO,
    scenarios::x05::SCENARIO,
    scenarios::x07::SCENARIO,
    scenarios::x08::SCENARIO,
    scenarios::x09::SCENARIO,
    scenarios::x10::SCENARIO,
    scenarios::x11::SCENARIO,
    scenarios::x12::SCENARIO,
    scenarios::x13::SCENARIO,
    scenarios::x14::SCENARIO,
    scenarios::x15::SCENARIO,
    scenarios::x16::SCENARIO,
    scenarios::x17::SCENARIO,
    scenarios::x18::SCENARIO,
    scenarios::x19::SCENARIO,
    scenarios::x20::SCENARIO,
    scenarios::x21::SCENARIO,
    scenarios::x22::SCENARIO,
    scenarios::x23::SCENARIO,
    scenarios::x24::SCENARIO,
    scenarios::x25::SCENARIO,
];

/// The registered scenarios.
pub fn scenarios() -> &'static [Scenario] {
    &SCENARIOS
}

/// Look a scenario up by short name (`x01`) or slug
/// (`x01_simple_scaling`).
pub fn find(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name || s.slug == name)
}

/// One formatted line per scenario, as printed by `xp list`.
pub fn list_lines() -> Vec<String> {
    SCENARIOS
        .iter()
        .map(|s| format!("{:<5} {:<24} {}", s.name, s.slug, s.about))
        .collect()
}

/// Run one scenario end to end: execute the body, then write the run
/// manifest. Returns the manifest path.
///
/// # Errors
///
/// Propagates I/O failures and output-schema mismatches.
pub fn run(scenario: &Scenario, opts: &ExpOpts) -> io::Result<PathBuf> {
    run_with(scenario, opts, true)
}

/// Like [`run`], but with console tables suppressed — for tests.
///
/// # Errors
///
/// Propagates I/O failures and output-schema mismatches.
pub fn run_quiet(scenario: &Scenario, opts: &ExpOpts) -> io::Result<PathBuf> {
    run_with(scenario, opts, false)
}

fn run_with(scenario: &Scenario, opts: &ExpOpts, verbose: bool) -> io::Result<PathBuf> {
    let mut sink = Sink::new(scenario.name, opts);
    sink.verbose = verbose;
    {
        let mut ctx = Ctx {
            opts,
            sink: &mut sink,
        };
        (scenario.run)(&mut ctx)?;
    }
    sink.finish(scenario.outputs)
}

/// Entry point for the legacy per-experiment binaries: parse the common
/// flags from `std::env::args()` and run the named scenario. Exits 2 on
/// CLI errors (with usage), 1 on runtime failures.
pub fn shim_main(name: &str) {
    let scenario = find(name).unwrap_or_else(|| {
        eprintln!("error: scenario '{name}' is not registered");
        std::process::exit(1);
    });
    let opts = ExpOpts::from_args();
    if let Err(e) = run(scenario, &opts) {
        eprintln!("error: {}: {e}", scenario.slug);
        std::process::exit(1);
    }
}

/// Report a CLI failure with usage and exit (2, or 0 for `--help`).
pub fn cli_exit(e: &harness::CliError) -> ! {
    harness::handle_cli_error(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        // The acceptance contract: 24 scenarios, unique names/slugs, each
        // findable under both handles, list output naming all of them.
        assert_eq!(scenarios().len(), 24);
        let mut names: Vec<&str> = scenarios().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24, "duplicate scenario names");
        let lines = list_lines();
        for s in scenarios() {
            assert!(std::ptr::eq(find(s.name).expect("find by name"), s));
            assert!(std::ptr::eq(find(s.slug).expect("find by slug"), s));
            assert!(!s.outputs.is_empty(), "{} declares no outputs", s.name);
            assert!(!s.about.is_empty());
            assert!(
                lines
                    .iter()
                    .any(|l| l.contains(s.name) && l.contains(s.slug)),
                "{} missing from xp list",
                s.name
            );
        }
        assert!(find("x99").is_none());
    }

    #[test]
    fn slugs_match_legacy_binary_names() {
        // Every pre-registry experiment binary must still resolve.
        for legacy in [
            "x01_simple_scaling",
            "x02_state_census",
            "x03_exactness",
            "x04_unordered_scaling",
            "x05_improved_speedup",
            "x07_init",
            "x08_clocks",
            "x09_pruning",
            "x10_majority",
            "x11_leader",
            "x12_dynamics",
            "x13_usd_comparison",
            "x14_ablations",
            "x15_large_k",
            "x16_trajectories",
        ] {
            assert!(find(legacy).is_some(), "legacy name {legacy} unresolvable");
        }
    }
}
