//! X13 — The paper's motivation: exact vs approximate plurality.
//!
//! Undecided-state dynamics reaches consensus fast but picks the planted
//! plurality only when the bias is large (≈ √(n·log n) for k = 2 —
//! at bias 1 it is a support-weighted lottery). `SimpleAlgorithm` pays a
//! `O(k·log n)` running time and stays correct all the way down to bias 1.
//!
//! The USD arm is engine-erased: batched by default, `--engine seq` /
//! `--engine pairwise` for the A/B. With `--full` extra USD-only rows
//! extend the population to `n = 10⁸`, where the lottery behaviour at
//! bias 1 is starkest. The side-by-side row layout is bespoke, so this
//! scenario drives its arms by hand.

use std::io;

use pp_stats::Table;
use pp_workloads::Counts;

use crate::arm::{self, TrialSpec};
use crate::harness::Engine;
use crate::protocols::{median_parallel_time, Algo};
use crate::scenario::{Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x13",
    slug: "x13_usd_comparison",
    about: "USD vs SimpleAlgorithm across the bias range — fast lottery vs exact consensus",
    outputs: &["x13_usd_comparison"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let (n, k): (usize, usize) = if ctx.full() { (4001, 3) } else { (1201, 3) };
    let sqrt_term = ((n as f64) * (n as f64).ln()).sqrt();
    let biases: Vec<usize> = [1.0, 0.1 * sqrt_term, 0.5 * sqrt_term, 1.5 * sqrt_term]
        .into_iter()
        .map(|b| (b as usize).max(1))
        .collect();
    let usd = arm::usd();
    let simple = arm::protocol(Algo::Simple);

    let mut table = Table::new(
        "X13: USD vs SimpleAlgorithm across the bias range",
        &[
            "n",
            "k",
            "bias",
            "bias/√(n·ln n)",
            "usd ok",
            "usd med time",
            "simple ok",
            "simple med time",
        ],
    );

    for (i, &bias) in biases.iter().enumerate() {
        let counts = Counts::adversarial_bias(n, k, bias);
        let actual_bias = counts.bias();

        let usd_out = ctx.run_arm(usd.as_ref(), &TrialSpec::new(&counts, 100_000.0), i as u64);
        let simple_out = ctx.run_arm(
            simple.as_ref(),
            &TrialSpec::new(&counts, 1.0e5),
            100 + i as u64,
        );

        let usd_ok = usd_out.iter().filter(|o| o.correct).count();
        let simple_ok = simple_out.iter().filter(|o| o.correct).count();
        table.push(vec![
            n.to_string(),
            k.to_string(),
            actual_bias.to_string(),
            format!("{:.2}", actual_bias as f64 / sqrt_term),
            format!("{usd_ok}/{}", usd_out.len()),
            format!("{:.0}", median_parallel_time(&usd_out)),
            format!("{simple_ok}/{}", simple_out.len()),
            format!("{:.0}", median_parallel_time(&simple_out)),
        ]);
        eprintln!(
            "  bias={actual_bias}: usd {usd_ok}/{}, simple {simple_ok}/{}",
            usd_out.len(),
            simple_out.len()
        );
    }

    // Large-population USD-only rows: the configuration-space engines take
    // the same bias-1 lottery to 10⁸ agents (SimpleAlgorithm columns stay
    // empty — the per-agent protocol does not scale there).
    if ctx.full() && ctx.opts.engine != Engine::Seq {
        for (i, big_n) in [1_000_000usize, 100_000_000].into_iter().enumerate() {
            let counts = Counts::adversarial_bias(big_n, k, 1);
            let big_sqrt = ((big_n as f64) * (big_n as f64).ln()).sqrt();
            let usd_out = ctx.run_arm(
                usd.as_ref(),
                &TrialSpec::new(&counts, 100_000.0),
                500 + i as u64,
            );
            let usd_ok = usd_out.iter().filter(|o| o.correct).count();
            table.push(vec![
                big_n.to_string(),
                k.to_string(),
                counts.bias().to_string(),
                format!("{:.5}", counts.bias() as f64 / big_sqrt),
                format!("{usd_ok}/{}", usd_out.len()),
                format!("{:.0}", median_parallel_time(&usd_out)),
                "—".into(),
                "—".into(),
            ]);
            eprintln!(
                "  n={big_n} bias={}: usd {usd_ok}/{}",
                counts.bias(),
                usd_out.len()
            );
        }
    }

    ctx.emit("x13_usd_comparison", &table)?;
    println!(
        "Read: USD is fast but fails towards small bias; SimpleAlgorithm holds its success \
         rate at every bias — the 'small chance of failure' buys exactness, not sloppiness."
    );
    Ok(())
}
