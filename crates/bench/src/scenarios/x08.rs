//! X8 — Lemmas 6/7 + Claim 8: junta sizes and per-subpopulation clock
//! rates.
//!
//! Part A: junta size vs population size (Claim 8 bound `x^0.98`).
//! Part B: two-opinion populations with varying split: the tick spacing of
//! each opinion's clock scales as `n²/x_j` (Lemma 7(3)) — we report
//! spacing·x_j/n², which the lemma predicts to be ~constant (up to the
//! log n factor shared by all rows at fixed n).

use std::io;

use pp_clocks::junta::FormJuntaRun;
use pp_clocks::subpop::SubpopClocks;
use pp_engine::{RunOptions, Simulation};
use pp_stats::{Summary, Table};

use crate::scenario::{Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x08",
    slug: "x08_clocks",
    about: "Lemmas 6/7 + Claim 8: junta sizes and per-subpopulation clock tick spacing",
    outputs: &["x08a_junta", "x08b_subpop_clocks"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    // ---- Part A: junta sizes. ----
    let sizes: Vec<usize> = if ctx.full() {
        vec![1000, 4000, 16000, 64000]
    } else {
        vec![1000, 4000, 16000]
    };
    let mut ta = Table::new(
        "X8a: FormJunta — junta size vs population (bound x^0.98)",
        &["x", "median junta", "x^0.98", "junta frac", "median time"],
    );
    for (i, &x) in sizes.iter().enumerate() {
        let results = ctx.run_trials(i as u64, |seed| {
            let (proto, states) = FormJuntaRun::new(x);
            let mut sim = Simulation::new(proto, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(x, 50_000.0));
            (r.output.unwrap_or(0) as f64, r.parallel_time)
        });
        let juntas: Vec<f64> = results.iter().map(|r| r.0).collect();
        let times: Vec<f64> = results.iter().map(|r| r.1).collect();
        let j = Summary::of(&juntas);
        ta.push(vec![
            x.to_string(),
            format!("{:.0}", j.median),
            format!("{:.0}", (x as f64).powf(0.98)),
            format!("{:.3}", j.median / x as f64),
            format!("{:.1}", Summary::of(&times).median),
        ]);
        eprintln!("  junta at x={x}: {:.0}", j.median);
    }
    ctx.emit("x08a_junta", &ta)?;

    // ---- Part B: subpopulation clock rates. ----
    let n: usize = if ctx.full() { 16000 } else { 8000 };
    let splits: Vec<f64> = vec![0.5, 0.25, 0.125, 0.0625];
    let mut tb = Table::new(
        "X8b: per-opinion clock tick spacing vs subpopulation size (Lemma 7)",
        &["n", "x_j", "hours", "spacing (ints)", "spacing·x_j/n²"],
    );
    for (i, &frac) in splits.iter().enumerate() {
        let x = (n as f64 * frac) as usize;
        let results = ctx.run_trials(1000 + i as u64, |seed| {
            let mut opinions = vec![1u16; x];
            opinions.extend(std::iter::repeat_n(2u16, n - x));
            let (proto, states) = SubpopClocks::new(&opinions, 8);
            let mut sim = Simulation::new(proto, states, seed);
            sim.run(&RunOptions::with_parallel_time_budget(n, 4000.0));
            let marks = sim.protocol().first_hour_at[0].clone();
            let gaps: Vec<f64> = marks.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            (
                marks.len(),
                if gaps.is_empty() {
                    f64::NAN
                } else {
                    Summary::of(&gaps).median
                },
            )
        });
        let hours: Vec<f64> = results.iter().map(|r| r.0 as f64).collect();
        let spacings: Vec<f64> = results
            .iter()
            .map(|r| r.1)
            .filter(|v| v.is_finite())
            .collect();
        if spacings.is_empty() {
            tb.push(vec![
                n.to_string(),
                x.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let sp = Summary::of(&spacings).median;
        tb.push(vec![
            n.to_string(),
            x.to_string(),
            format!("{:.0}", Summary::of(&hours).median),
            format!("{sp:.0}"),
            format!("{:.2}", sp * x as f64 / (n as f64 * n as f64)),
        ]);
        eprintln!("  x_j={x}: spacing {sp:.0}");
    }
    ctx.emit("x08b_subpop_clocks", &tb)?;
    println!(
        "Read: spacing·x_j/n² is ~constant across rows — the Lemma 7 law \
         spacing = Θ((n²/x_j)·log n) at fixed n."
    );
    Ok(())
}
