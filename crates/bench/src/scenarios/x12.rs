//! X12 — The elementary substrates: epidemic broadcast, load balancing,
//! and the leaderless phase clock.
//!
//! These calibrate the constants used by the tournament phase schedule:
//!
//! * one-way epidemic completes in ≈ log₂ n + ln n parallel time,
//! * discrete load balancing reaches the ±1 band in O(log n),
//! * the leaderless clock's wrap milestones are evenly spaced and its
//!   counters stay tightly clustered (small circular skew).

use std::io;

use pp_clocks::leaderless::{circular_spread, LeaderlessClockRun};
use pp_dynamics::{Epidemic, LoadBalance};
use pp_engine::{RunOptions, Simulation};
use pp_stats::{Summary, Table};

use crate::scenario::{Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x12",
    slug: "x12_dynamics",
    about: "Substrate constants: epidemic broadcast, load balancing, leaderless phase clock",
    outputs: &["x12a_epidemic", "x12b_load_balance", "x12c_clock"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let sizes: Vec<usize> = if ctx.full() {
        vec![1000, 4000, 16000, 64000, 256000]
    } else {
        vec![1000, 8000, 64000]
    };

    // ---- Epidemic. ----
    let mut te = Table::new(
        "X12a: one-way epidemic broadcast time",
        &["n", "median time", "time/(log2 n + ln n)"],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let times = ctx.run_trials(i as u64, |seed| {
            let states = Epidemic::initial_states(n, 1);
            let mut sim = Simulation::new(Epidemic, states, seed);
            sim.run(&RunOptions::default()).parallel_time
        });
        let s = Summary::of(&times);
        let model = (n as f64).log2() + (n as f64).ln();
        te.push(vec![
            n.to_string(),
            format!("{:.1}", s.median),
            format!("{:.2}", s.median / model),
        ]);
        eprintln!("  epidemic n={n}: {:.1}", s.median);
    }
    ctx.emit("x12a_epidemic", &te)?;

    // ---- Load balancing. ----
    let mut tl = Table::new(
        "X12b: discrete load balancing to the ±1 band",
        &["n", "median time", "time/ln n"],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let times = ctx.run_trials(100 + i as u64, |seed| {
            let mut states = vec![0i64; n];
            states[0] = (n / 2) as i64;
            states[1] = -((n / 2) as i64);
            let mut sim = Simulation::new(LoadBalance, states, seed);
            sim.run(&RunOptions::with_parallel_time_budget(n, 50_000.0))
                .parallel_time
        });
        let s = Summary::of(&times);
        tl.push(vec![
            n.to_string(),
            format!("{:.1}", s.median),
            format!("{:.2}", s.median / (n as f64).ln()),
        ]);
        eprintln!("  loadbal n={n}: {:.1}", s.median);
    }
    ctx.emit("x12b_load_balance", &tl)?;

    // ---- Leaderless clock. ----
    let mut tc = Table::new(
        "X12c: leaderless phase clock — wrap spacing and skew",
        &[
            "n",
            "period",
            "wraps",
            "median gap (pt)",
            "gap/period",
            "final skew",
        ],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let period = (6.0 * (n as f64).ln()).ceil() as u32;
        let results = ctx.run_trials(200 + i as u64, |seed| {
            let (proto, states) = LeaderlessClockRun::new(n, period);
            let mut sim = Simulation::new(proto, states, seed);
            sim.run(&RunOptions::with_parallel_time_budget(n, 4000.0));
            let marks = sim.protocol().first_wrap_at.clone();
            let gaps: Vec<f64> = marks
                .windows(2)
                .map(|w| (w[1] - w[0]) as f64 / n as f64)
                .collect();
            let counters: Vec<u32> = sim.states().iter().map(|s| s.g).collect();
            let skew = circular_spread(&counters, period);
            let med_gap = if gaps.is_empty() {
                f64::NAN
            } else {
                Summary::of(&gaps).median
            };
            (marks.len(), med_gap, skew)
        });
        let wraps: Vec<f64> = results.iter().map(|r| r.0 as f64).collect();
        let gaps: Vec<f64> = results
            .iter()
            .map(|r| r.1)
            .filter(|v| v.is_finite())
            .collect();
        let skews: Vec<f64> = results.iter().map(|r| r.2 as f64).collect();
        let gap = if gaps.is_empty() {
            f64::NAN
        } else {
            Summary::of(&gaps).median
        };
        tc.push(vec![
            n.to_string(),
            period.to_string(),
            format!("{:.0}", Summary::of(&wraps).median),
            format!("{gap:.0}"),
            format!("{:.2}", gap / period as f64),
            format!("{:.0}", Summary::of(&skews).median),
        ]);
        eprintln!(
            "  clock n={n}: gap {gap:.0} pt, skew {:.0}",
            Summary::of(&skews).median
        );
    }
    ctx.emit("x12c_clock", &tc)?;
    println!(
        "Read: epidemic ≈ log₂n + ln n; balancing = O(log n); clock wraps are evenly spaced \
         with skew ≪ period/2 — these constants justify the phase-length factors in \
         core::config::Tuning."
    );
    Ok(())
}
