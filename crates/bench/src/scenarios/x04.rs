//! X4 — Theorem 1(2) runtime: the unordered variant pays an additive
//! `O(log² n)` for leader election.
//!
//! We measure total parallel time and the time spent before `le_done`
//! (leader election + defender selection) separately. The paper's claim:
//! total ≈ O(k·log n + log² n). The LE share dominates at small k and
//! washes out as k grows — exactly the additive structure of the bound.
//!
//! A USD baseline arm runs the n-sweep inputs on the batched
//! configuration-space engine (`--engine seq` for the sequential A/B);
//! with `--full` it extends to `n = 10⁸`.

use std::io;

use pp_stats::{fit_affine, Summary};
use pp_workloads::Workload;

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, PointRun, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x04",
    slug: "x04_unordered_scaling",
    about: "Theorem 1(2): UnorderedAlgorithm pays an additive O(log² n) for leader election",
    outputs: &["x04_unordered_scaling", "x04_unordered_scaling_baseline"],
    run,
};

/// Median leader-election completion time in parallel-time units.
fn le_median(r: &PointRun) -> f64 {
    let n = r.n() as f64;
    let le: Vec<f64> = r
        .outcomes
        .iter()
        .filter_map(|o| o.le_done.map(|t| t as f64 / n))
        .collect();
    if le.is_empty() {
        f64::NAN
    } else {
        Summary::of(&le).median
    }
}

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let (n_grid, k_grid, fixed_k, fixed_n): (Vec<usize>, Vec<usize>, usize, usize) = if ctx.full() {
        (vec![1000, 2000, 4000, 8000], vec![2, 3, 4, 6, 8], 3, 2000)
    } else {
        (vec![600, 1200, 2400], vec![2, 3, 4], 3, 1200)
    };
    let budget = |k: usize| 5.0e3 * k as f64 + 5.0e4;

    let runs =
        Study::new(
            "X4: UnorderedAlgorithm parallel time (total and leader-election share)",
            "x04_unordered_scaling",
        )
        .skip_unconverged()
        .points(n_grid.iter().map(|&n| {
            GridPoint::new(Workload::BiasOne { n, k: fixed_k }, budget(fixed_k)).sweep("n-sweep")
        }))
        .points(k_grid.iter().map(|&k| {
            GridPoint::new(Workload::BiasOne { n: fixed_n, k }, budget(k)).sweep("k-sweep")
        }))
        .arm(arm::protocol(Algo::Unordered))
        .cols(vec![
            col::sweep(),
            col::n(),
            col::k(),
            col::ok_frac(),
            col::derived("median total", |r| format!("{:.0}", r.median())),
            col::derived("median LE", |r| format!("{:.0}", le_median(r))),
            col::derived("LE share", |r| format!("{:.2}", le_median(r) / r.median())),
            col::derived("t/(k·lnn + ln²n)", |r| {
                let ln = (r.n() as f64).ln();
                format!("{:.1}", r.median() / (r.k() as f64 * ln + ln * ln))
            }),
        ])
        .run(ctx)?;

    let (le_xs, le_ys): (Vec<f64>, Vec<f64>) = runs
        .iter()
        .filter_map(|r| {
            let le = le_median(r);
            let ln = (r.n() as f64).ln();
            le.is_finite().then_some((ln * ln, le))
        })
        .unzip();
    let fit = fit_affine(&le_xs, &le_ys);
    println!(
        "leader-election time vs ln²n: LE ≈ {:.2}·ln²n + {:.0}   (R² = {:.3}) — the additive \
         O(log² n) term of Theorem 1(2)",
        fit.a, fit.b, fit.r2
    );

    // Baseline arm: USD over the same n-sweep (configuration-space engine
    // reaches 10⁸ agents; the per-agent protocols above stop at 10⁴).
    super::usd_baseline(
        ctx,
        "X4",
        "x04_unordered_scaling_baseline",
        n_grid,
        fixed_k,
        300,
    )
}
