//! X3 — Exactness at bias 1 (Theorem 1 & 2 correctness).
//!
//! The paper's protocols identify the plurality w.h.p. *even at bias 1*.
//! This experiment plants bias-1 (bias-2 for k = 2 with even n) inputs
//! across a grid of (n, k) and reports per-protocol success rates with
//! Wilson 95% intervals.
//!
//! Paper prediction: success probability `1 − n^(−Ω(1))` — i.e. rates at or
//! near 1.0 throughout, improving with n.

use std::io;

use pp_stats::wilson_interval;
use pp_workloads::Workload;

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x03",
    slug: "x03_exactness",
    about: "Exactness at bias 1: success rates with Wilson intervals for all three protocols",
    outputs: &["x03_exactness"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let grid: Vec<(usize, usize)> = if ctx.full() {
        vec![
            (1001, 2),
            (2001, 2),
            (4001, 2),
            (1000, 4),
            (2000, 4),
            (4000, 8),
            (8001, 2),
            (8000, 8),
        ]
    } else {
        vec![(601, 2), (1201, 2), (900, 3), (1800, 6)]
    };

    Study::new(
        "X3: exactness at bias 1 (success rate over trials, Wilson 95%)",
        "x03_exactness",
    )
    .points(
        grid.into_iter()
            .map(|(n, k)| GridPoint::new(Workload::BiasOne { n, k }, 4.0e3 * k as f64 + 4.0e4)),
    )
    .arm(arm::protocol(Algo::Simple))
    .arm(arm::protocol(Algo::Unordered))
    .arm(arm::protocol(Algo::Improved))
    .cols(vec![
        col::arm("algo"),
        col::n(),
        col::k(),
        col::bias(),
        col::ok_count(),
        col::trials(),
        col::rate(3),
        col::derived("lo", |r| {
            format!("{:.3}", wilson_interval(r.ok(), r.trials(), 1.96).0)
        }),
        col::derived("hi", |r| {
            format!("{:.3}", wilson_interval(r.ok(), r.trials(), 1.96).1)
        }),
        col::median_all("median time", 0),
    ])
    .run(ctx)
    .map(|_| ())
}
