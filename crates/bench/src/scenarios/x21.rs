//! X21 — survivable Byzantine lying fraction per protocol.
//!
//! A Byzantine participant reports a forged opinion while keeping its own
//! state, so every lie perturbs an honest agent's transition. Against
//! protocols with *exact* output predicates this is brutal: the predicate
//! only fires when zero agents are perturbed at a check instant, which
//! stops happening once the expected number of concurrently-poisoned
//! agents (`∝ frac · n`) exceeds a handful. This scenario sweeps the
//! lying fraction with the forgery fixed to the runner-up opinion — the
//! worst-case direction — and reports, per protocol, the convergence and
//! correctness rates: the *survivable fraction* is the largest sweep value
//! at which a protocol still converges correctly in (almost) every trial.
//!
//! The interesting contrast: USD and the 3-state majority merely slow
//! down until lies outpace recruitment; the 4-state exact majority's
//! `#strong_A − #strong_B` token invariant is *not* preserved by forged
//! interactions, so it converges *wrong* rather than late; and the
//! paper's simple protocol is the most tolerant of the four — a forged
//! opinion materializes as a fresh initial-state agent, and meeting
//! fresh-looking stragglers is exactly what the tournament's counter
//! machinery is built to absorb.

use std::io;

use pp_engine::AdversarySpec;
use pp_majority::{four_state_counts, FourState, ThreeState};
use pp_workloads::{Counts, Workload};

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x21",
    slug: "x21_byzantine_tolerance",
    about: "Survivable Byzantine lying fraction (USD, 3-/4-state, simple)",
    outputs: &["x21_byzantine_tolerance"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n = if ctx.full() { 2_001 } else { 601 };
    let workload = Workload::Geometric {
        n,
        k: 2,
        ratio: 0.5,
    };
    let fracs = [0.0, 0.002, 0.005, 0.01, 0.02, 0.05];

    Study::new(
        "X21: convergence and correctness vs Byzantine lying fraction",
        "x21_byzantine_tolerance",
    )
    .points(fracs.into_iter().map(|frac| {
        let p = GridPoint::new(workload.clone(), 2_000.0).tag(format!("{frac}"));
        if frac > 0.0 {
            // Liars forge the runner-up opinion — the direction that
            // fights the plurality hardest.
            p.adversary(AdversarySpec::Byzantine {
                frac,
                opinion: Some(2),
            })
        } else {
            p
        }
    }))
    .arm(arm::usd())
    .arm(arm::table("3-state", |c: &Counts| {
        (
            ThreeState,
            vec![0, c.support(1) as u64, c.support(2) as u64],
        )
    }))
    .arm(arm::table("4-state", |c: &Counts| {
        (
            FourState,
            four_state_counts(c.support(1) as u64, c.support(2) as u64),
        )
    }))
    // The paper's tournament needs its usual Θ(log n · log n) headroom.
    .arm_with(arm::protocol(Algo::Simple), Some(500_000.0), None)
    .cols(vec![
        col::tag("frac"),
        col::arm("protocol"),
        col::n(),
        col::engine(),
        col::ok_frac(),
        col::rate(2),
        col::median(1),
    ])
    .run(ctx)?;

    println!(
        "Read: each protocol's survivable fraction is the largest frac whose ok/correct rates \
         stay near 1. The 4-state exact majority breaks first — and converges *wrong*, its \
         token invariant does not survive forged interactions — the 3-state majority next, \
         then USD; the simple tournament outlasts them all, since forged opinions materialize \
         as fresh initial-state agents, which its counters already absorb."
    );
    Ok(())
}
