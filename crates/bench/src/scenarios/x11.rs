//! X11 — Leader election: uniqueness w.h.p. and `O(log² n)` time.
//!
//! Measures, per population size: the fraction of runs electing exactly
//! one leader, the median completion time, and the ratio time/log² n
//! (stable ratio = the Theorem 1(2) substitution bound holds).

use std::io;

use pp_engine::{RunOptions, RunStatus, SimRng, Simulation};
use pp_leader::LeaderElectionRun;
use pp_workloads::Workload;
use rand::SeedableRng;

use crate::arm::{self, TrialSpec};
use crate::protocols::TrialOutcome;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x11",
    slug: "x11_leader",
    about: "Leader election: unique leader w.h.p. in O(log² n) parallel time",
    outputs: &["x11_leader"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let sizes: Vec<usize> = if ctx.full() {
        vec![1000, 2000, 4000, 8000, 16000, 32000]
    } else {
        vec![1000, 4000, 16000]
    };

    let leader = arm::from_fn("leader", |spec: &TrialSpec, seed| {
        let n = spec.counts.n();
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5eed);
        let (proto, states) = LeaderElectionRun::new(n, 4, &mut rng);
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, spec.budget));
        TrialOutcome {
            converged: r.status == RunStatus::Converged,
            correct: r.status == RunStatus::Converged && r.output == Some(1),
            parallel_time: r.parallel_time,
            init_end: None,
            le_done: None,
            census: None,
            faults: r.faults,
        }
    });

    Study::new(
        "X11: leader election (junta-clock coin lottery)",
        "x11_leader",
    )
    .points(
        sizes
            .into_iter()
            .map(|n| GridPoint::new(Workload::BiasOne { n, k: 2 }, 500_000.0)),
    )
    .arm(leader)
    .cols(vec![
        col::n(),
        col::derived("unique", |r| format!("{}/{}", r.ok(), r.trials())),
        col::trials(),
        col::median_all("median time", 0),
        col::derived("time/log2²n", |r| {
            let log2n = (r.n() as f64).log2();
            format!("{:.2}", r.median_all() / (log2n * log2n))
        }),
    ])
    .run(ctx)?;

    println!("Read: exactly one leader in (nearly) every run; time/log²n is ~constant.");
    Ok(())
}
