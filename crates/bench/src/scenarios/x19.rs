//! X19 — the paper's protocols under adversarial execution.
//!
//! The paper's analysis assumes the uniform random scheduler. This
//! scenario stresses the exact-plurality protocols (simple and unordered)
//! on the sequential engine under three departures from that assumption:
//!
//! * `starve:1:0.25` — agents advocating the plurality opinion participate
//!   at a quarter of the uniform rate (an adversary throttling exactly the
//!   interactions the winner needs);
//! * `pairbias:0.5` — half of all pairings are forced like-with-like,
//!   starving the cross-opinion tournaments;
//! * `inject@2000:0.1` — mid-run injection of fresh runner-up supporters
//!   (10% of the population re-enters advocating opinion 2).
//!
//! The schedulers preserve the protocols' correctness argument (every pair
//! still interacts infinitely often, only the rates change), so the
//! interesting output is the slowdown and — for the injection row — whether
//! the tournament recovers its winner after the electorate shifts.

use std::io;

use pp_engine::{FaultSpec, SchedulerSpec};
use pp_workloads::Workload;

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x19",
    slug: "x19_adversarial_execution",
    about: "Simple/unordered under starving and pair-biased schedulers plus mid-run injection",
    outputs: &["x19_adversarial_execution"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n = if ctx.full() { 1001 } else { 401 };
    let workload = Workload::BiasOne { n, k: 3 };
    let budget = 500_000.0;

    let base = || GridPoint::new(workload.clone(), budget);
    let points = [
        base().tag("uniform"),
        base().tag("starve").scheduler(SchedulerSpec::Starve {
            opinion: 1,
            weight: 0.25,
        }),
        base()
            .tag("pairbias")
            .scheduler(SchedulerSpec::PairBias { assort: 0.5 }),
        base().tag("inject").faults(vec![FaultSpec::Inject {
            at: 2_000.0,
            frac: 0.1,
            opinion: 2,
        }]),
    ];

    Study::new(
        "X19: exact plurality under adversarial schedulers and injection",
        "x19_adversarial_execution",
    )
    .points(points)
    .arm(arm::protocol(Algo::Simple))
    .arm(arm::protocol(Algo::Unordered))
    .cols(vec![
        col::tag("regime"),
        col::arm("algo"),
        col::n(),
        col::ok_frac(),
        col::median(1),
        col::recovery(1),
        col::survived(),
    ])
    .run(ctx)?;

    println!(
        "Read: the biased schedulers slow the tournaments without breaking them (the \
         correctness argument only needs every pair to keep meeting), while mid-run \
         injection forces a genuine re-election — recovery is the time the tournament \
         needs to re-settle after the electorate shifts."
    );
    Ok(())
}
