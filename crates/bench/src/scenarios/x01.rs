//! X1 — Theorem 1(1) runtime: `SimpleAlgorithm` converges in O(k·log n).
//!
//! Two sweeps on bias-1 inputs: n at fixed k, and k at fixed n. For each
//! configuration we report the median parallel time; the summary fits
//! `time ≈ a·k·ln n` and reports the constant and R². The paper's claim
//! holds if the fit is tight (R² near 1) and the constant stable.
//!
//! A USD baseline arm runs on the same inputs through the batched
//! configuration-space engine (`--engine seq` for the sequential A/B);
//! with `--full` its grid extends to `n = 10⁸`, far beyond what the
//! per-agent protocols can reach.

use std::io;

use pp_stats::fit_through_origin;
use pp_workloads::Workload;

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x01",
    slug: "x01_simple_scaling",
    about: "Theorem 1(1): SimpleAlgorithm time = O(k·log n), with a USD baseline arm",
    outputs: &["x01_simple_scaling", "x01_simple_scaling_baseline"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let (n_grid, k_grid, fixed_k, fixed_n): (Vec<usize>, Vec<usize>, usize, usize) = if ctx.full() {
        (
            vec![1000, 2000, 4000, 8000, 16000],
            vec![2, 3, 4, 6, 8, 12],
            3,
            4000,
        )
    } else {
        (vec![600, 1200, 2400], vec![2, 3, 4, 6], 3, 1200)
    };
    let budget = |k: usize| 4.0e3 * k as f64 + 2.0e4;

    let runs =
        Study::new(
            "X1: SimpleAlgorithm parallel time on bias-1 inputs",
            "x01_simple_scaling",
        )
        .skip_unconverged()
        .points(n_grid.iter().map(|&n| {
            GridPoint::new(Workload::BiasOne { n, k: fixed_k }, budget(fixed_k)).sweep("n-sweep")
        }))
        .points(k_grid.iter().map(|&k| {
            GridPoint::new(Workload::BiasOne { n: fixed_n, k }, budget(k)).sweep("k-sweep")
        }))
        .arm(arm::protocol(Algo::Simple))
        .cols(vec![
            col::sweep(),
            col::n(),
            col::k(),
            col::ok_frac(),
            col::median(0),
            col::mean(0),
            col::ci95(0),
            col::derived("t/(k·ln n)", |r| {
                format!("{:.1}", r.median() / (r.k() as f64 * (r.n() as f64).ln()))
            }),
        ])
        .run(ctx)?;

    let (xs, ys): (Vec<f64>, Vec<f64>) = runs
        .iter()
        .map(|r| (r.k() as f64 * (r.n() as f64).ln(), r.median()))
        .unzip();
    let fit = fit_through_origin(&xs, &ys);
    println!(
        "fit: time ≈ {:.2} · k·ln n   (R² = {:.4}) — Theorem 1(1) predicts a linear law",
        fit.a, fit.r2
    );

    // Baseline arm: USD on the same bias-1 inputs. Fast but approximate —
    // the ok column collapsing towards a lottery is the paper's motivation.
    super::usd_baseline(
        ctx,
        "X1",
        "x01_simple_scaling_baseline",
        n_grid,
        fixed_k,
        200,
    )
}
