//! X22 — steady-state churn soak with crash-safe checkpointing.
//!
//! A long single run of the 3-state majority on the batched engine while
//! agents continuously join (drawn from the initial workload) and leave
//! (uniformly at random) as a Poisson process — `--churn` overrides the
//! default symmetric 0.005 events per agent per unit of parallel time.
//! Once per unit of parallel time the run samples the population size,
//! the fraction of agents advocating the planted plurality, and whether
//! the convergence predicate currently fires; the series CSV is the soak
//! trajectory and the summary row condenses it to a mean plurality
//! fraction and a time-in-consensus fraction.
//!
//! The run is *crash-safe*: with `--checkpoint-every T` the engine writes
//! a versioned snapshot (`x22_t<T>.ckpt`, `x22_t<2T>.ckpt`, …) into the
//! output directory at every multiple of `T`, and `--resume FILE`
//! restores one byte-identically — RNG state, clock, counts and the
//! series prefix — so a resumed soak emits exactly the CSV the
//! uninterrupted run would have. The CI smoke test diffs the two.

use std::io;

use pp_engine::{
    rng, BatchSimulation, Checkpoint, ChurnProcess, ChurnSample, ChurnSpec, SegmentRunner,
};
use pp_majority::ThreeState;
use pp_stats::Table;

use crate::scenario::{col, Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x22",
    slug: "x22_churn_soak",
    about: "Churn soak: population/plurality series under Poisson join/leave, checkpointable",
    outputs: &["x22_churn_series", "x22_churn_summary"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n: u64 = if ctx.full() { 1_000_000 } else { 10_000 };
    let horizon = if ctx.full() { 600.0 } else { 200.0 };
    let spec = ctx.opts.churn.unwrap_or(ChurnSpec {
        join: 0.005,
        leave: 0.005,
        ..ChurnSpec::default()
    });
    let churn = ChurnProcess::new(spec);
    // 2:1 support over {blank, A, B} — joins re-draw from this forever,
    // so the soak keeps a plurality to track.
    let a = 2 * n / 3;
    let init = vec![0u64, a, n - a];
    let every = ctx.opts.checkpoint_every.unwrap_or(f64::INFINITY);

    let mut runner = match &ctx.opts.resume {
        Some(path) => {
            let ck = Checkpoint::read(path)?;
            if ctx.sink.verbose {
                eprintln!(
                    "  [x22] resumed from {} at parallel time {:.1} ({} samples)",
                    path.display(),
                    ck.time_base,
                    ck.series.len()
                );
            }
            SegmentRunner::from_checkpoint(&ck, ThreeState, churn)?
        }
        None => SegmentRunner::new(
            BatchSimulation::new(ThreeState, init.clone(), rng::derive(ctx.opts.seed, 2_200)),
            churn,
            init,
        ),
    };
    // One soak trial owns the whole `--threads` budget; the trajectory
    // (and every checkpoint) is byte-identical at any thread count, so a
    // resume may use a different count than the original run.
    runner.set_threads(ctx.opts.threads);

    // `drive` cuts segments at absolute multiples of `every`, derived from
    // the live clock — a resumed run recomputes exactly the boundaries the
    // uninterrupted run used, so the stitched series is bit-identical.
    let out_dir = ctx.opts.out_dir.clone();
    let verbose = ctx.sink.verbose;
    runner.drive(horizon, every, |r, stop| {
        let path = out_dir.join(format!("x22_t{stop}.ckpt"));
        r.checkpoint().write(&path)?;
        if verbose {
            eprintln!("  [x22] checkpoint: {}", path.display());
        }
        Ok(())
    })?;

    ctx.emit_csv_only("x22_churn_series", &series_table(runner.series()))?;
    ctx.emit(
        "x22_churn_summary",
        &summary_table(n, horizon, spec, runner.series(), runner.sim()),
    )?;
    println!(
        "Read: under symmetric churn the population random-walks around n while the plurality \
         fraction stays pinned near its absorbing value — joins perturb, the dynamics re-absorb. \
         The time-in-consensus fraction is the sharper lens: the *exact* predicate only fires \
         when re-absorption outruns arrival, so it collapses to 0 once the join rate beats \
         O(log n) recovery — at the default rates the soak holds ~99% plurality support while \
         spending ~0% of its time in exact consensus."
    );
    Ok(())
}

fn series_table(series: &[ChurnSample]) -> Table {
    let mut t = Table::new(
        "X22: churn soak series",
        &["t", "population", "plurality_frac", "output"],
    );
    for s in series {
        t.push(vec![
            format!("{:.3}", s.t),
            s.population.to_string(),
            format!("{:.6}", s.plurality_frac),
            s.output.map_or_else(|| "-".to_string(), |o| o.to_string()),
        ]);
    }
    t
}

fn summary_table(
    n: u64,
    horizon: f64,
    spec: ChurnSpec,
    series: &[ChurnSample],
    sim: &BatchSimulation<ThreeState>,
) -> Table {
    let mut t = Table::new(
        "X22: churn soak summary",
        &[
            "n0",
            "horizon",
            "join",
            "leave",
            "samples",
            "final_pop",
            "mean_plurality_frac",
            "time_in_consensus",
        ],
    );
    let samples = series.len();
    let mean_frac = series.iter().map(|s| s.plurality_frac).sum::<f64>() / samples as f64;
    t.push(vec![
        n.to_string(),
        format!("{horizon}"),
        format!("{}", spec.join),
        format!("{}", spec.leave),
        samples.to_string(),
        sim.counts().iter().sum::<u64>().to_string(),
        format!("{mean_frac:.4}"),
        col::time_in_consensus(series),
    ]);
    t
}
