//! X14 — Ablations: where is the reliability knee?
//!
//! The paper fixes constants only as "sufficiently large". This experiment
//! scales the tuning constants (phase lengths + leader patience) down and
//! up around the defaults, and separately sweeps the match window, showing
//! where correctness collapses. Failing configurations must fail
//! *gracefully* (wrong output or timeout — the budget column — never a
//! panic). Each sweep is a declarative study with the tuning attached to
//! the grid points.

use std::io;

use plurality_core::Tuning;
use pp_workloads::Workload;

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x14",
    slug: "x14_ablations",
    about: "Ablations: phase-length scale, match window and merge cap vs correctness",
    outputs: &["x14a_phase_scale", "x14b_match_window", "x14c_merge_cap"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n = if ctx.full() { 2001 } else { 1201 };
    let k = 3;
    let workload = Workload::BiasOne { n, k };
    let budget = 3.0e5;

    // ---- Sweep A: global phase-length scale. ----
    Study::new(
        "X14a: scaling all phase lengths by f (SimpleAlgorithm, bias 1)",
        "x14a_phase_scale",
    )
    .points([0.25, 0.5, 0.75, 1.0, 1.5].into_iter().map(|f| {
        GridPoint::new(workload.clone(), budget)
            .tag(format!("{f:.2}"))
            .tuning(Tuning::default().scaled(f))
    }))
    .arm(arm::protocol(Algo::Simple))
    .cols(vec![
        col::tag("f"),
        col::ok_count(),
        col::trials(),
        col::timeouts(),
        col::median_all("median time", 0),
    ])
    .run(ctx)?;

    // ---- Sweep B: match window. ----
    Study::new(
        "X14b: cancel/split window of the match majority (SimpleAlgorithm, bias 1)",
        "x14b_match_window",
    )
    .stream_base(100)
    .points([2u32, 4, 6, 10, 16].into_iter().map(|window| {
        GridPoint::new(workload.clone(), budget)
            .tag(window.to_string())
            .tuning(Tuning {
                match_window: window,
                ..Tuning::default()
            })
    }))
    .arm(arm::protocol(Algo::Simple))
    .cols(vec![
        col::tag("window"),
        col::ok_count(),
        col::trials(),
        col::median_all("median time", 0),
    ])
    .run(ctx)?;

    // ---- Sweep C: merge cap (token capacity). ----
    Study::new(
        "X14c: token merge cap (SimpleAlgorithm, bias 1)",
        "x14c_merge_cap",
    )
    .stream_base(200)
    .points([2u8, 4, 10, 20].into_iter().map(|cap| {
        GridPoint::new(workload.clone(), budget)
            .tag(cap.to_string())
            .tuning(Tuning {
                merge_cap: cap,
                ..Tuning::default()
            })
    }))
    .arm(arm::protocol(Algo::Simple))
    .cols(vec![
        col::tag("cap"),
        col::ok_count(),
        col::trials(),
        col::median_all("median time", 0),
    ])
    .run(ctx)?;

    println!(
        "Read: defaults sit right of the knee in every sweep; halving the phase budget or \
         the match window degrades correctness smoothly (never catastrophically)."
    );
    Ok(())
}
