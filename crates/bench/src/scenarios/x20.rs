//! X20 — reconvergence scaling under repeated corruption.
//!
//! X18 measures recovery from a single transient strike; this scenario
//! asks how the recovery time *scales*. The adversary corrupts 20% of the
//! agents to uniformly random states three times per run — at parallel
//! times 50, 100 and 150, each strike well past the previous recovery at
//! these sizes — and the population size sweeps over two (four under
//! `--full`) orders of magnitude. The median recovery time per strike is
//! then regressed against `ln n`: self-stabilizing dynamics restarted
//! from a 20%-scrambled configuration should re-converge in `O(log n)`,
//! so the fit table's slope captures the constant and `r²` how well the
//! logarithm explains the growth.

use std::io;

use pp_engine::FaultSpec;
use pp_majority::ThreeState;
use pp_stats::{fit_affine, Table};
use pp_workloads::{Counts, Workload};

use crate::arm;
use crate::scenario::{col, Ctx, GridPoint, PointRun, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x20",
    slug: "x20_repeated_corruption",
    about: "Reconvergence time vs n under repeated 20% corruption, with O(log n) fit",
    outputs: &["x20_repeated_corruption", "x20_fit"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let mut grid = vec![1_000usize, 10_000, 100_000];
    if ctx.full() {
        grid.extend([1_000_000, 10_000_000]);
    }
    // Three strikes per run; every fault record contributes a recovery
    // sample, so the medians below pool 3 × trials strikes per point.
    let strikes: Vec<FaultSpec> = [50.0, 100.0, 150.0]
        .into_iter()
        .map(|at| FaultSpec::Corrupt { at, frac: 0.2 })
        .collect();

    let runs = Study::new(
        "X20: reconvergence time vs n under repeated corruption",
        "x20_repeated_corruption",
    )
    .points(grid.into_iter().map(|n| {
        GridPoint::new(
            Workload::Geometric {
                n,
                k: 2,
                ratio: 0.5,
            },
            2_000.0,
        )
        .faults(strikes.clone())
    }))
    .arm(arm::usd())
    .arm(arm::table("3-state", |c: &Counts| {
        (
            ThreeState,
            vec![0, c.support(1) as u64, c.support(2) as u64],
        )
    }))
    .cols(vec![
        col::arm("protocol"),
        col::n(),
        col::engine(),
        col::ok_frac(),
        col::median(1),
        col::recovery(1),
        col::survived(),
    ])
    .run(ctx)?;

    ctx.emit("x20_fit", &fit_table(&runs))?;
    println!(
        "Read: the per-strike recovery time grows with ln n at slope ≈ a and r² near 1 — \
         reconvergence from a 20%-scrambled configuration is logarithmic, like the clean runs."
    );
    Ok(())
}

/// Regress each arm's median recovery time against `ln n`.
fn fit_table(runs: &[PointRun]) -> Table {
    let mut table = Table::new(
        "X20-fit: median recovery time ~ a·ln n + b",
        &["protocol", "a", "b", "r2", "points"],
    );
    let mut arms: Vec<&str> = Vec::new();
    for r in runs {
        if !arms.contains(&r.arm.as_str()) {
            arms.push(&r.arm);
        }
    }
    for arm in arms {
        let (x, y): (Vec<f64>, Vec<f64>) = runs
            .iter()
            .filter(|r| r.arm == arm && r.median_recovery().is_finite())
            .map(|r| ((r.n() as f64).ln(), r.median_recovery()))
            .unzip();
        // A fit needs at least two recovered sizes; an arm that never
        // recovered still gets a row so its absence is visible.
        if x.len() < 2 {
            table.push(vec![
                arm.into(),
                "-".into(),
                "-".into(),
                "-".into(),
                x.len().to_string(),
            ]);
            continue;
        }
        let fit = fit_affine(&x, &y);
        table.push(vec![
            arm.into(),
            format!("{:.3}", fit.a),
            format!("{:.3}", fit.b),
            format!("{:.4}", fit.r2),
            x.len().to_string(),
        ]);
    }
    table
}
