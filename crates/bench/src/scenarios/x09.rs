//! X9 — Lemmas 9/10: the pruning phase of `ImprovedAlgorithm`.
//!
//! On one-large-many-small inputs we stop at the moment all agents reach
//! phase 0 and verify, per trial:
//!
//! * plurality tokens conserved: `T_max(t̂) = x_max` (Lemma 10(2)),
//! * the number of opinions still holding tokens is small — close to
//!   `n/x_max`, never close to k (Lemma 10(1)),
//! * clock/tracker/player roles each hold ≥ ~n/10 agents (Lemma 10(3)),
//! * insignificant opinions (support ≤ x_max/4) lost *all* their tokens
//!   (Lemma 9 / Lemma 10 case analysis).

use std::io;

use plurality_core::roles::Role;
use plurality_core::{ImprovedAlgorithm, Tuning};
use pp_engine::{RunOptions, Simulation};
use pp_stats::Table;
use pp_workloads::Counts;

use crate::scenario::{Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x09",
    slug: "x09_pruning",
    about: "Lemmas 9/10: pruning conserves plurality tokens and eliminates insignificant opinions",
    outputs: &["x09_pruning"],
    run,
};

#[derive(Debug, Clone)]
struct PruneStats {
    plurality_tokens: usize,
    surviving_opinions: usize,
    insignificant_with_tokens: usize,
    min_worker_frac: f64,
    t_hat: f64,
}

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let grid: Vec<(usize, usize, usize)> = if ctx.full() {
        vec![
            (2000, 11, 800),
            (4000, 21, 1600),
            (4000, 31, 1200),
            (8000, 41, 3200),
        ]
    } else {
        vec![(2000, 11, 800), (4000, 21, 1600)]
    };

    let mut table = Table::new(
        "X9: pruning invariants at t̂ (all agents in phase 0)",
        &[
            "n",
            "k",
            "x_max",
            "tokens kept",
            "surviving ops (med)",
            "n/x_max",
            "insig. leaks",
            "min worker frac",
            "median t̂",
        ],
    );

    for (i, &(n, k, x_max)) in grid.iter().enumerate() {
        let counts = Counts::one_large(n, k, x_max);
        let supports = counts.supports().to_vec();
        let results = ctx.run_trials(i as u64, |seed| {
            let assignment = counts.assignment();
            let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
            let mut sim = Simulation::new(proto, states, seed);
            let mut stats: Option<PruneStats> = None;
            let _ = sim.run_observed(
                &RunOptions::with_parallel_time_budget(n, 50_000.0),
                |t, states| {
                    if stats.is_some() || !states.iter().all(|s| s.phase >= 0) {
                        return;
                    }
                    let mut tokens_by_op = vec![0usize; supports.len()];
                    let mut workers = [0usize; 3];
                    for s in states {
                        match &s.role {
                            Role::Collector(c) => {
                                tokens_by_op[usize::from(c.opinion) - 1] += usize::from(c.tokens)
                            }
                            Role::Clock(_) => workers[0] += 1,
                            Role::Tracker(_) => workers[1] += 1,
                            Role::Player(_) => workers[2] += 1,
                        }
                    }
                    let surviving = tokens_by_op.iter().filter(|&&t| t > 0).count();
                    let insignificant_with_tokens = tokens_by_op
                        .iter()
                        .zip(&supports)
                        .filter(|&(&tok, &sup)| sup * 4 <= x_max && tok > 0)
                        .count();
                    stats = Some(PruneStats {
                        plurality_tokens: tokens_by_op[0],
                        surviving_opinions: surviving,
                        insignificant_with_tokens,
                        min_worker_frac: workers
                            .iter()
                            .map(|&w| w as f64 / states.len() as f64)
                            .fold(1.0, f64::min),
                        t_hat: t as f64 / n as f64,
                    });
                },
            );
            stats.expect("pruning init must finish within the budget")
        });

        let kept = results
            .iter()
            .filter(|r| r.plurality_tokens == x_max)
            .count();
        let mut surv: Vec<f64> = results
            .iter()
            .map(|r| r.surviving_opinions as f64)
            .collect();
        surv.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let leaks: usize = results.iter().map(|r| r.insignificant_with_tokens).sum();
        let min_frac = results
            .iter()
            .map(|r| r.min_worker_frac)
            .fold(1.0, f64::min);
        let mut t_hats: Vec<f64> = results.iter().map(|r| r.t_hat).collect();
        t_hats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        table.push(vec![
            n.to_string(),
            k.to_string(),
            x_max.to_string(),
            format!("{kept}/{}", results.len()),
            format!("{:.0}", surv[surv.len() / 2]),
            format!("{:.1}", n as f64 / x_max as f64),
            leaks.to_string(),
            format!("{min_frac:.3}"),
            format!("{:.0}", t_hats[t_hats.len() / 2]),
        ]);
        eprintln!(
            "  n={n} k={k} x_max={x_max}: kept {kept}/{}, surviving {:.0}",
            results.len(),
            surv[surv.len() / 2]
        );
    }

    ctx.emit("x09_pruning", &table)?;
    println!(
        "Read: plurality tokens fully conserved; surviving opinions ≈ n/x_max ≪ k; \
         insignificant opinions leak no tokens; worker roles are all ≥ ~0.1·n."
    );
    Ok(())
}
