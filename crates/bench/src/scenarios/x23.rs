//! X23 — survivable *adaptive* lying fraction, head-to-head with x21.
//!
//! X21's Byzantine liars pick their forgery once (the runner-up at time
//! zero) and never look again. An adaptive adversary re-reads the opinion
//! census every batch/stride and re-aims: `boost-runnerup` forges
//! whichever opinion is *currently* second (so the lie pressure follows
//! the race), `suppress-leader` forges the weakest non-leading opinion
//! (starving the front-runner of recruitment targets), and `split` forges
//! the top two opinions with a fair coin (maximizing sustained
//! disagreement). This scenario runs the x21 sweep four times — fixed
//! lies plus the three adaptive strategies — on the same grid, seeds and
//! protocols, so every row is directly comparable to its x21 counterpart:
//! at equal fraction, adaptive lies must be *no less* damaging than fixed
//! ones, and the gap is the price of adaptivity.
//!
//! The mechanism worth watching: a fixed runner-up forgery becomes
//! harmless the moment the runner-up's support dies out (the forged
//! opinion no longer maps to a live state and the adversary degrades to
//! honesty), while `boost-runnerup` re-aims at whatever still lives —
//! it keeps the exact predicate suppressed long after the fixed liar has
//! gone quiet.

use std::io;

use pp_engine::{AdaptiveStrategy, AdversarySpec};
use pp_majority::{four_state_counts, FourState, ThreeState};
use pp_workloads::{Counts, Workload};

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x23",
    slug: "x23_adaptive_tolerance",
    about: "Survivable adaptive lying fraction vs x21's fixed lies, per strategy",
    outputs: &["x23_adaptive_tolerance"],
    run,
};

/// The adversary kinds swept side by side (sweep label, spec builder).
fn adversary(kind: &str, frac: f64) -> AdversarySpec {
    match kind {
        "fixed" => AdversarySpec::Byzantine {
            frac,
            opinion: Some(2),
        },
        "boost-runnerup" => AdversarySpec::Adaptive {
            frac,
            strategy: AdaptiveStrategy::BoostRunnerUp,
        },
        "suppress-leader" => AdversarySpec::Adaptive {
            frac,
            strategy: AdaptiveStrategy::SuppressLeader,
        },
        _ => AdversarySpec::Adaptive {
            frac,
            strategy: AdaptiveStrategy::Split,
        },
    }
}

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n = if ctx.full() { 2_001 } else { 601 };
    let workload = Workload::Geometric {
        n,
        k: 2,
        ratio: 0.5,
    };
    // The x21 sweep, minus the honest baseline (x21 already pins it).
    let fracs = [0.002, 0.005, 0.01, 0.02, 0.05];
    let kinds = ["fixed", "boost-runnerup", "suppress-leader", "split"];

    Study::new(
        "X23: convergence and correctness vs adaptive lying fraction",
        "x23_adaptive_tolerance",
    )
    .points(kinds.into_iter().flat_map(|kind| {
        let workload = workload.clone();
        fracs.into_iter().map(move |frac| {
            GridPoint::new(workload.clone(), 2_000.0)
                .sweep(kind)
                .tag(format!("{frac}"))
                .adversary(adversary(kind, frac))
        })
    }))
    .arm(arm::usd())
    .arm(arm::table("3-state", |c: &Counts| {
        (
            ThreeState,
            vec![0, c.support(1) as u64, c.support(2) as u64],
        )
    }))
    .arm(arm::table("4-state", |c: &Counts| {
        (
            FourState,
            four_state_counts(c.support(1) as u64, c.support(2) as u64),
        )
    }))
    // The paper's tournament needs its usual Θ(log n · log n) headroom.
    .arm_with(arm::protocol(Algo::Simple), Some(500_000.0), None)
    .cols(vec![
        col::sweep(),
        col::tag("frac"),
        col::arm("protocol"),
        col::n(),
        col::engine(),
        col::ok_frac(),
        col::rate(2),
        col::median(1),
    ])
    .run(ctx)?;

    println!(
        "Read: compare each (frac, protocol) row against x21 — at equal fraction the adaptive \
         strategies are never gentler than the fixed runner-up forgery, and boost-runnerup is \
         the cruelest: a fixed lie falls silent once its target opinion dies out, while the \
         census-driven liar re-aims at whatever is still alive and keeps the exact predicate \
         suppressed. Split sustains two-sided disagreement instead, which mostly taxes the \
         protocols with exact absorption predicates."
    );
    Ok(())
}
