//! X17 — adversarial initial distributions under undecided-state dynamics.
//!
//! The USD lower-bound line of work (El-Hayek & Elsässer 2025, and the
//! load-balancing inputs of Berenbrink et al. 2016) studies how the
//! *shape* of the initial support vector drives approximate dynamics: at
//! minimal bias the winner degrades towards a support-weighted lottery
//! regardless of the tail shape. This scenario sweeps the named workload
//! families — flat bias-1, one-large-many-small, Zipf and geometric
//! tails — through the engine-erased USD arm.
//!
//! It is also the template for adding scenarios: the whole experiment is
//! one declarative `Study` (grid = named workloads, one arm, schema as
//! columns) — under twenty lines of actual definition.

use std::io;

use pp_workloads::Workload;

use crate::arm;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x17",
    slug: "x17_adversarial_init",
    about: "USD across adversarial input shapes (bias-1, one-large, Zipf, geometric tails)",
    outputs: &["x17_adversarial_init"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let (n, k) = if ctx.full() {
        (1_000_000, 8)
    } else {
        (10_000, 8)
    };
    let workloads = [
        Workload::BiasOne { n, k },
        Workload::OneLarge { n, k, x_max: n / 4 },
        Workload::Zipf { n, k, s: 1.0 },
        Workload::Geometric { n, k, ratio: 0.5 },
    ];

    Study::new(
        "X17: USD winner quality across adversarial initial distributions",
        "x17_adversarial_init",
    )
    .points(workloads.into_iter().map(|w| {
        let family = w.family();
        GridPoint::new(w, 1.0e4).tag(family)
    }))
    .arm(arm::usd())
    .cols(vec![
        col::tag("workload"),
        col::n(),
        col::k(),
        col::bias(),
        col::engine(),
        col::ok_frac(),
        col::median(1),
        col::mean(1),
        col::ci95(1),
    ])
    .run(ctx)?;

    println!(
        "Read: USD converges fast on every input shape, but only the strongly skewed tails \
         (one_large, geometric) let it find the plurality reliably — flat bias-1 inputs \
         collapse to the lottery the exact protocols are built to avoid."
    );
    Ok(())
}
