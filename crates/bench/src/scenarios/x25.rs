//! X25 — measured corruption tolerance vs the `√(n log n)/n` reference.
//!
//! The paper's protocols buy their state savings by tolerating additive
//! `Θ(√(n log n))` noise in the support counts: any corruption that
//! displaces fewer agents than the plurality's lead is survivable, and
//! the smallest lead the machinery is built for is `Θ(√(n log n))`. This
//! scenario measures that tolerance directly. Each workload plants a
//! two-opinion race whose lead is exactly `⌈√(n ln n)⌉`; at parallel time
//! 2 — early, before the lead has amplified — a directed corruption
//! strike (`inject`) flips a swept fraction of agents to the runner-up.
//! Per population size, the *measured tolerance* is the largest fraction
//! at which the planted plurality still wins at least half the trials.
//!
//! Displacing `m` of the leader's agents erases a lead of `m`, so the
//! flip threshold should sit where `frac · n ≈ √(n ln n)` — i.e. the
//! tolerance should track `√(n ln n)/n`. The fit table regresses
//! `ln(tolerance)` on `ln(√(n ln n)/n)` with [`fit_affine`]: a slope near
//! 1 with `r²` near 1 is the audit passing — the measured tolerance
//! scales exactly as the additive-noise margin predicts.

use std::io;

use pp_engine::FaultSpec;
use pp_majority::ThreeState;
use pp_stats::{fit_affine, Table};
use pp_workloads::{Counts, Workload};

use crate::arm;
use crate::scenario::{col, Ctx, GridPoint, PointRun, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x25",
    slug: "x25_corruption_tolerance",
    about: "Measured corruption tolerance vs the √(n log n)/n additive-noise margin",
    outputs: &["x25_corruption_sweep", "x25_tolerance", "x25_fit"],
    run,
};

/// Survival bar: the planted plurality must win at least this fraction of
/// trials for a corruption level to count as tolerated.
const SURVIVAL_BAR: f64 = 0.5;

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let mut grid = vec![1_000usize, 10_000, 100_000];
    if ctx.full() {
        grid.push(1_000_000);
    }
    // Log-spaced corruption fractions bracketing √(n ln n)/n across the
    // grid (0.083 at n=10³ down to 0.0037 at n=10⁶).
    let fracs = [0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128];

    let runs = Study::new(
        "X25: planted-√(n ln n)-lead survival vs directed corruption fraction",
        "x25_corruption_sweep",
    )
    .points(grid.into_iter().flat_map(|n| {
        let lead = (n as f64 * (n as f64).ln()).sqrt().ceil() as usize;
        fracs.into_iter().map(move |frac| {
            GridPoint::new(
                Workload::AdversarialBias {
                    n,
                    k: 2,
                    bias: lead,
                },
                2_000.0,
            )
            .tag(format!("{frac}"))
            // One early strike, aimed at the runner-up: the cheapest
            // way to spend a corruption budget against a lead.
            .faults(vec![FaultSpec::Inject {
                at: 2.0,
                frac,
                opinion: 2,
            }])
        })
    }))
    .arm(arm::usd())
    .arm(arm::table("3-state", |c: &Counts| {
        (
            ThreeState,
            vec![0, c.support(1) as u64, c.support(2) as u64],
        )
    }))
    .cols(vec![
        col::tag("frac"),
        col::arm("protocol"),
        col::n(),
        col::bias(),
        col::engine(),
        col::ok_frac(),
        col::rate(2),
    ])
    .run(ctx)?;

    let tolerances = tolerance_table(&runs);
    ctx.emit("x25_tolerance", &tolerances.0)?;
    ctx.emit("x25_fit", &fit_table(&tolerances.1))?;
    println!(
        "Read: per size, survival is a cliff — the planted plurality shrugs off every fraction \
         below its √(n ln n) lead and loses every one above it. The measured tolerance therefore \
         tracks √(n ln n)/n: the fit's slope sits near 1 with r² near 1, confirming the \
         protocols tolerate exactly the additive noise margin the paper's state bounds are \
         priced against."
    );
    Ok(())
}

/// Per (arm, n): the largest swept fraction whose survival rate clears
/// [`SURVIVAL_BAR`]. Returns the table and the raw `(arm, n, tolerance)`
/// triples for the fit.
fn tolerance_table(runs: &[PointRun]) -> (Table, Vec<(String, usize, f64)>) {
    let mut table = Table::new(
        "X25-tolerance: largest survivable corruption fraction per size",
        &["protocol", "n", "lead", "tolerance", "reference"],
    );
    let mut keys: Vec<(String, usize)> = Vec::new();
    for r in runs {
        let key = (r.arm.clone(), r.n());
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    let mut triples = Vec::new();
    for (arm, n) in keys {
        let tolerance = runs
            .iter()
            .filter(|r| r.arm == arm && r.n() == n)
            .filter(|r| r.ok() as f64 / r.trials() as f64 >= SURVIVAL_BAR)
            .filter_map(|r| r.point.tag.parse::<f64>().ok())
            .fold(f64::NAN, f64::max);
        let lead = (n as f64 * (n as f64).ln()).sqrt().ceil();
        let reference = lead / n as f64;
        table.push(vec![
            arm.clone(),
            n.to_string(),
            format!("{lead:.0}"),
            if tolerance.is_nan() {
                "-".to_string()
            } else {
                format!("{tolerance}")
            },
            format!("{reference:.5}"),
        ]);
        if tolerance.is_finite() {
            triples.push((arm, n, tolerance));
        }
    }
    (table, triples)
}

/// Regress `ln(tolerance)` on `ln(√(n ln n)/n)` per arm.
fn fit_table(triples: &[(String, usize, f64)]) -> Table {
    let mut table = Table::new(
        "X25-fit: ln(tolerance) ~ a·ln(√(n ln n)/n) + b  (predicted a ≈ 1)",
        &["protocol", "a", "b", "r2", "points"],
    );
    let mut arms: Vec<&str> = Vec::new();
    for (arm, _, _) in triples {
        if !arms.contains(&arm.as_str()) {
            arms.push(arm);
        }
    }
    for arm in arms {
        let (x, y): (Vec<f64>, Vec<f64>) = triples
            .iter()
            .filter(|(a, _, _)| a == arm)
            .map(|(_, n, tol)| {
                let nf = *n as f64;
                (((nf * nf.ln()).sqrt() / nf).ln(), tol.ln())
            })
            .unzip();
        // A fit needs two surviving sizes; an arm that never survived
        // still gets a row so its absence is visible.
        if x.len() < 2 {
            table.push(vec![
                arm.into(),
                "-".into(),
                "-".into(),
                "-".into(),
                x.len().to_string(),
            ]);
            continue;
        }
        let fit = fit_affine(&x, &y);
        table.push(vec![
            arm.into(),
            format!("{:.3}", fit.a),
            format!("{:.3}", fit.b),
            format!("{:.4}", fit.r2),
            x.len().to_string(),
        ]);
    }
    table
}
