//! The registered experiment bodies (one module per scenario).
//!
//! Each module exposes a `SCENARIO` constant collected by
//! [`crate::registry`]. Grid-shaped experiments are declarative
//! [`Study`](crate::scenario::Study) definitions; observational
//! experiments (snapshot invariants, trajectories) drive simulations by
//! hand through [`Ctx`](crate::scenario::Ctx) and still get uniform CLI,
//! threading, seeding and manifest emission.

use std::io;

use crate::arm;
use crate::scenario::{col, Ctx, GridPoint, Study};
use pp_workloads::Workload;

pub mod x01;
pub mod x02;
pub mod x03;
pub mod x04;
pub mod x05;
pub mod x07;
pub mod x08;
pub mod x09;
pub mod x10;
pub mod x11;
pub mod x12;
pub mod x13;
pub mod x14;
pub mod x15;
pub mod x16;
pub mod x17;
pub mod x18;
pub mod x19;
pub mod x20;
pub mod x21;
pub mod x22;
pub mod x23;
pub mod x24;
pub mod x25;

/// The shared USD baseline arm for the scaling experiments (x01/x04):
/// undecided-state dynamics on the same bias-1 inputs, extended to
/// `n = 10⁸` under `--full`. One declarative study — the engine cap under
/// `--engine seq` is enforced by the arm itself.
pub(crate) fn usd_baseline(
    ctx: &mut Ctx,
    experiment: &str,
    csv: &str,
    mut grid: Vec<usize>,
    k: usize,
    stream_base: u64,
) -> io::Result<()> {
    if ctx.full() {
        grid.extend([1_000_000, 100_000_000]);
    }
    Study::new(
        format!(
            "{experiment}-baseline: USD on bias-1 inputs ({} engine)",
            ctx.opts.engine.name()
        ),
        csv,
    )
    .stream_base(stream_base)
    .skip_unconverged()
    .points(
        grid.into_iter()
            .map(|n| GridPoint::new(Workload::BiasOne { n, k }, 1.0e4)),
    )
    .arm(arm::usd())
    .cols(vec![
        col::n(),
        col::k(),
        col::engine(),
        col::ok_frac(),
        col::median(1),
        col::mean(1),
        col::ci95(1),
        col::derived("t/ln n", |r| {
            format!("{:.2}", r.median() / (r.n() as f64).ln())
        }),
    ])
    .run(ctx)
    .map(|_| ())
}
