//! X15 — Appendix C: `SimpleAlgorithm` beyond `k ≤ n/40`.
//!
//! The theorem's base analysis assumes `k ≤ n/40`; Appendix C extends the
//! protocol to `k ≤ (1 − ε)·n` by slowing the init-counter decrement (the
//! `1/c` rule) so a clock agent finishes counting even when a large
//! constant fraction of the population remains collectors. We sweep k up to
//! n/2.5 and compare the base tuning against `Tuning::large_k()` — two
//! arms of the same protocol with different tunings.
//!
//! Note the time: with `x_max ≈ n/k` tiny, the protocol runs all `k − 1`
//! tournaments — runtime grows linearly in k, exactly as Theorem 1 says.

use std::io;

use plurality_core::Tuning;
use pp_workloads::Workload;

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x15",
    slug: "x15_large_k",
    about: "Appendix C: SimpleAlgorithm at large k, base tuning vs the 1/c decrement rule",
    outputs: &["x15_large_k"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n = if ctx.full() { 1500 } else { 1000 };
    let ks: Vec<usize> = if ctx.full() {
        vec![n / 40, n / 10, n / 5, (n as f64 / 2.5) as usize]
    } else {
        vec![n / 40, n / 10, n / 5]
    };

    Study::new(
        "X15: SimpleAlgorithm at large k (Appendix C decrement rule)",
        "x15_large_k",
    )
    .points(
        ks.into_iter()
            .map(|k| GridPoint::new(Workload::BiasOne { n, k }, 2.0e3 * k as f64 + 5.0e4)),
    )
    .arm(arm::protocol_tuned("base", Algo::Simple, Tuning::default()))
    .arm(arm::protocol_tuned(
        "large_k",
        Algo::Simple,
        Tuning::large_k(),
    ))
    .cols(vec![
        col::n(),
        col::k(),
        col::arm("tuning"),
        col::ok_frac(),
        col::trials(),
        col::derived("median time", |r| format!("{:.0}", r.median())),
        col::derived("time/(k·ln n)", |r| {
            format!("{:.1}", r.median() / (r.k() as f64 * (r.n() as f64).ln()))
        }),
    ])
    .run(ctx)?;

    println!(
        "Read: the base tuning carries k = n/5 with k-linear time; the Appendix C decrement \
         rule ends the init earlier, thins every worker role, and only pays off in its \
         asymptotic target regime (collectors above n/2 forever), infeasible under n >= 2k."
    );
    Ok(())
}
