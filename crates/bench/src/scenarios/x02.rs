//! X2/X6 — State-space usage: `O(k + log n)` for `SimpleAlgorithm`,
//! `O(k·loglog n + log n)` for `ImprovedAlgorithm`.
//!
//! We count the *distinct agent states actually visited* over a full run
//! (canonical encodings, see `Machine::encode`) across a (k, n) grid. The
//! paper's claims show up as: the Simple census grows additively in k (slope
//! ≈ constant per opinion) and logarithmically in n; the Improved census
//! pays an extra log log n factor on the k term (the per-opinion clock
//! states) — both far below the `Ω(k²)` bound for always-correct protocols.

use std::io;

use pp_workloads::Workload;

use crate::arm;
use crate::protocols::Algo;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x02",
    slug: "x02_state_census",
    about: "X2/X6: distinct states visited stay O(k + log n), far below the Ω(k²) bound",
    outputs: &["x02_state_census"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let (n_grid, k_grid, fixed_k, fixed_n): (Vec<usize>, Vec<usize>, usize, usize) = if ctx.full() {
        (
            vec![500, 1000, 2000, 4000, 8000],
            vec![2, 4, 8, 16, 32],
            4,
            2000,
        )
    } else {
        (vec![500, 1000, 2000], vec![2, 4, 8], 4, 1000)
    };
    let budget = |k: usize| 5.0e3 * k as f64 + 3.0e4;
    let max_census = |r: &crate::scenario::PointRun| {
        r.outcomes
            .iter()
            .filter_map(|o| o.census)
            .max()
            .unwrap_or(0)
    };

    Study::new(
        "X2/X6: distinct states visited (max over trials)",
        "x02_state_census",
    )
    .census(true)
    .arm_major()
    .points(
        k_grid.iter().map(|&k| {
            GridPoint::new(Workload::BiasOne { n: fixed_n, k }, budget(k)).sweep("k-sweep")
        }),
    )
    .points(n_grid.iter().map(|&n| {
        GridPoint::new(Workload::BiasOne { n, k: fixed_k }, budget(fixed_k)).sweep("n-sweep")
    }))
    .arm(arm::protocol(Algo::Simple))
    .arm(arm::protocol(Algo::Improved))
    .cols(vec![
        col::arm("algo"),
        col::sweep(),
        col::n(),
        col::k(),
        col::derived("states", move |r| max_census(r).to_string()),
        col::derived("states/k", move |r| {
            format!("{:.1}", max_census(r) as f64 / r.k() as f64)
        }),
        col::derived("states/ln n", move |r| {
            format!("{:.1}", max_census(r) as f64 / (r.n() as f64).ln())
        }),
        col::derived("k^2 (lower bd.)", |r| (r.k() * r.k()).to_string()),
    ])
    .run(ctx)?;

    println!(
        "Read: the census grows roughly linearly in k and logarithmically in n for both \
         protocols, with Improved paying an extra loglog-factor on the k term — well below \
         the always-correct Ω(k²) state bound shown in the last column."
    );
    Ok(())
}
