//! X5 — Theorem 2: pruning reduces the tournaments from k − 1 to
//! O(n/x_max).
//!
//! One-large-many-small inputs with fixed n and k while x_max sweeps
//! upward. The paper predicts the improved algorithm's time to scale with
//! `n/x_max·log n + log² n` — so it *falls* as x_max grows — while the
//! unordered algorithm keeps paying for all k − 1 tournaments. The final
//! column is the headline speedup — a cross-arm ratio, so this scenario
//! drives its two arms by hand instead of using a `Study`.

use std::io;

use pp_stats::{Summary, Table};
use pp_workloads::Counts;

use crate::arm::{self, TrialSpec};
use crate::protocols::Algo;
use crate::scenario::{Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x05",
    slug: "x05_improved_speedup",
    about: "Theorem 2: pruning beats the unordered variant on one-large-many-small inputs",
    outputs: &["x05_improved_speedup"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let (n, k, xmax_grid): (usize, usize, Vec<usize>) = if ctx.full() {
        (4000, 21, vec![800, 1200, 1600, 2400, 3200])
    } else {
        (2000, 13, vec![500, 800, 1200])
    };
    let arms = [
        arm::protocol(Algo::Unordered),
        arm::protocol(Algo::Improved),
    ];

    let mut table = Table::new(
        "X5: Improved vs Unordered on one-large-many-small inputs",
        &[
            "n",
            "k",
            "x_max",
            "n/x_max",
            "algo",
            "ok",
            "median time",
            "speedup",
        ],
    );

    for (i, &x_max) in xmax_grid.iter().enumerate() {
        let counts = Counts::one_large(n, k, x_max);
        let spec = TrialSpec::new(&counts, 5.0e3 * k as f64 + 5.0e4);
        let mut medians = [0.0f64; 2];
        for (j, a) in arms.iter().enumerate() {
            let outcomes = ctx.run_arm(a.as_ref(), &spec, (i as u64) << 4 | j as u64);
            let ok = outcomes.iter().filter(|o| o.correct).count();
            let times: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.converged)
                .map(|o| o.parallel_time)
                .collect();
            let median = if times.is_empty() {
                f64::NAN
            } else {
                Summary::of(&times).median
            };
            medians[j] = median;
            let speedup = if j == 1 {
                format!("{:.2}x", medians[0] / medians[1])
            } else {
                "-".into()
            };
            table.push(vec![
                n.to_string(),
                k.to_string(),
                x_max.to_string(),
                format!("{:.1}", n as f64 / x_max as f64),
                a.label().into(),
                format!("{ok}/{}", outcomes.len()),
                format!("{median:.0}"),
                speedup,
            ]);
            eprintln!(
                "  x_max={x_max} {}: median {median:.0} (ok {ok})",
                a.label()
            );
        }
    }

    ctx.emit("x05_improved_speedup", &table)?;
    println!(
        "Read: improved time tracks n/x_max (falling down the column) while unordered stays \
         ~flat; the crossover factor approaches k·x_max/n as predicted by Theorem 2."
    );
    Ok(())
}
