//! X24 — time-in-consensus under targeted vs uniform churn.
//!
//! X22 soaks the 3-state majority under *uniform* Poisson join/leave and
//! reports how little of the run holds exact consensus. This scenario
//! asks the adversarial follow-up: does it matter *who* leaves? The same
//! soak runs three times at identical rates — departures uniform,
//! departures aimed at the current plurality class (`:plurality`), and
//! departures aimed at the weakest opinion class (`:minority`) — and the
//! summary compares the mean plurality fraction and the integrated
//! time-in-consensus across targets.
//!
//! The asymmetry is the point. Plurality-targeted churn culls exactly the
//! agents the dynamics just recruited, so the plurality fraction sags
//! below the uniform soak's and consensus epochs get rarer. Minority
//! targeting does the dynamics' job for it: every departure removes a
//! disagreeing agent, so the exact predicate fires *more* often than
//! under uniform churn — an adversary forced to evict the weakest class
//! is a janitor, not a threat.

use std::io;

use pp_engine::{rng, BatchSimulation, ChurnProcess, ChurnSample, ChurnSpec, SegmentRunner};
use pp_majority::ThreeState;
use pp_stats::Table;

use crate::scenario::{col, Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x24",
    slug: "x24_targeted_churn",
    about: "Time-in-consensus under plurality-/minority-targeted vs uniform churn",
    outputs: &["x24_targeted_churn"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n: u64 = if ctx.full() { 1_000_000 } else { 10_000 };
    let horizon = if ctx.full() { 400.0 } else { 150.0 };
    // Gentler than x22's default soak so consensus epochs are reachable
    // at all: the contrast between targets is the measurement.
    let base = ctx.opts.churn.unwrap_or(ChurnSpec {
        join: 0.002,
        leave: 0.002,
        ..ChurnSpec::default()
    });
    // 2:1 support over {blank, A, B}, as in x22.
    let a = 2 * n / 3;
    let init = vec![0u64, a, n - a];

    let mut table = Table::new(
        "X24: churn soak by departure target",
        &[
            "target",
            "n0",
            "horizon",
            "join",
            "leave",
            "samples",
            "final_pop",
            "mean_plurality_frac",
            "time_in_consensus",
        ],
    );
    for (i, target) in ["uniform", "plurality", "minority"].iter().enumerate() {
        let spec = match *target {
            "uniform" => base,
            other => format!("churn:{}:{}:{other}", base.join, base.leave)
                .parse()
                .map_err(io::Error::other)?,
        };
        let churn = ChurnProcess::new(spec);
        // One seed stream per target: the targets see *different* draw
        // sequences by construction (targeting consumes extra randomness),
        // so per-target streams keep the comparison honest across reruns.
        let mut runner = SegmentRunner::new(
            BatchSimulation::new(
                ThreeState,
                init.clone(),
                rng::derive(ctx.opts.seed, 2_400 + i as u64),
            ),
            churn,
            init.clone(),
        );
        // Serial over targets, so each soak gets the full thread budget.
        runner.set_threads(ctx.opts.threads);
        runner.advance_to(horizon);
        let series: &[ChurnSample] = runner.series();
        let samples = series.len();
        let mean_frac = series.iter().map(|s| s.plurality_frac).sum::<f64>() / samples as f64;
        table.push(vec![
            (*target).to_string(),
            n.to_string(),
            format!("{horizon}"),
            format!("{}", spec.join),
            format!("{}", spec.leave),
            samples.to_string(),
            runner.sim().counts().iter().sum::<u64>().to_string(),
            format!("{mean_frac:.4}"),
            col::time_in_consensus(series),
        ]);
        if ctx.sink.verbose {
            eprintln!(
                "  [x24] target={target}: {} samples, time-in-consensus {}",
                samples,
                col::time_in_consensus(series)
            );
        }
    }
    ctx.emit("x24_targeted_churn", &table)?;

    println!(
        "Read: at equal rates, who leaves decides whether churn is an adversary. Plurality \
         targeting culls the agents the dynamics just recruited — the plurality fraction sags \
         and consensus epochs thin out relative to uniform — while minority targeting evicts \
         disagreement and *raises* time-in-consensus above the uniform baseline. Uniform churn \
         sits between: it only perturbs, it never aims."
    );
    Ok(())
}
