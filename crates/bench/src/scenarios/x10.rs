//! X10 — The majority substrates: exactness, speed and the baselines.
//!
//! Three protocols on two-opinion inputs:
//!
//! * cancel/split (our \[20\] stand-in): exact at bias 1, `O(log n)` time;
//! * 3-state approximate majority \[4\]: `O(log n)` time but needs bias
//!   `Ω(√(n·log n))` — watch its success rate climb with the bias;
//! * 4-state stable exact majority: always correct, but `Θ(n)` time at
//!   bias 1.
//!
//! The 3- and 4-state substrates are table protocols: their arms run on
//! the batched configuration-space engine by default and honor
//! `--engine seq`/`--engine pairwise` like every other table arm.

use std::io;

use pp_engine::{RunOptions, RunStatus, Simulation};
use pp_majority::{cancel_split::CancelSplitRun, four_state_counts, FourState, ThreeState};
use pp_stats::wilson_interval;
use pp_workloads::{Counts, Workload};

use crate::arm::{self, TrialSpec};
use crate::protocols::TrialOutcome;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x10",
    slug: "x10_majority",
    about: "Majority substrates: cancel/split vs 3-state vs 4-state, and the 3-state bias knee",
    outputs: &["x10a_majority_bias1", "x10b_three_state_bias"],
    run,
};

/// 3-state approximate majority as an engine-erased table arm.
fn three_state_arm() -> arm::Arm {
    arm::table("3-state", |c: &Counts| {
        (
            ThreeState,
            vec![0, c.support(1) as u64, c.support(2) as u64],
        )
    })
}

fn run(ctx: &mut Ctx) -> io::Result<()> {
    // ---- Part A: exactness at bias 1 and time scaling in n. ----
    let sizes: Vec<usize> = if ctx.full() {
        vec![1001, 4001, 16001, 64001]
    } else {
        vec![1001, 4001, 16001]
    };

    // cancel/split (window 24: the reliable standalone setting; the window
    // sweep lives in X14b) is a per-agent protocol — a closure arm.
    let cancel_split = arm::from_fn("cancel/split", |spec: &TrialSpec, seed| {
        let (a, b) = (spec.counts.support(1), spec.counts.support(2));
        let (proto, states) = CancelSplitRun::new(a, b, 0, 24);
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(a + b, spec.budget));
        TrialOutcome {
            converged: r.status == RunStatus::Converged,
            correct: r.output == Some(1),
            parallel_time: r.parallel_time,
            init_end: None,
            le_done: None,
            census: None,
            faults: r.faults,
        }
    });
    let four_state = arm::table("4-state", |c: &Counts| {
        (
            FourState,
            four_state_counts(c.support(1) as u64, c.support(2) as u64),
        )
    });

    Study::new(
        "X10a: bias-1 majority across substrates",
        "x10a_majority_bias1",
    )
    .points(sizes.iter().map(|&n| {
        GridPoint::new(
            Workload::Explicit {
                supports: vec![n / 2 + 1, n / 2],
            },
            100_000.0,
        )
    }))
    .arm(cancel_split)
    .arm(three_state_arm())
    // 4-state pays Θ(n) at bias 1: larger budget, capped population.
    .arm_with(four_state, Some(5.0e6), Some(4001))
    .cols(vec![
        col::arm("protocol"),
        col::n(),
        col::ok_count(),
        col::trials(),
        col::derived("rate lo", |r| {
            format!("{:.3}", wilson_interval(r.ok(), r.trials(), 1.96).0)
        }),
        col::median_all("median time", 0),
        col::derived("time/ln n", |r| {
            format!("{:.1}", r.median_all() / (r.n() as f64).ln())
        }),
    ])
    .run(ctx)?;

    // ---- Part B: 3-state success rate vs bias (the √(n log n) knee). ----
    let n = if ctx.full() { 16000 } else { 4000 };
    let sqrt_term = ((n as f64) * (n as f64).ln()).sqrt();
    Study::new(
        "X10b: 3-state approximate majority — success vs bias",
        "x10b_three_state_bias",
    )
    .stream_base(2000)
    .points([0.0, 0.25, 0.5, 1.0, 2.0].into_iter().map(|mult| {
        let bias = ((sqrt_term * mult) as usize).max(1) | 1; // odd, ≥ 1
        let a = (n + bias).div_ceil(2); // strict plurality even when n + bias is odd
        GridPoint::new(
            Workload::Explicit {
                supports: vec![a, n - a],
            },
            100_000.0,
        )
        // Tag the bias actually materialised (a − b), not the nominal one.
        .tag((2 * a - n).to_string())
    }))
    .arm(three_state_arm())
    .cols(vec![
        col::n(),
        col::tag("bias"),
        col::derived("bias/√(n·ln n)", move |r| {
            format!(
                "{:.2}",
                r.point.tag.parse::<f64>().unwrap_or(f64::NAN) / sqrt_term
            )
        }),
        col::ok_count(),
        col::trials(),
        col::rate(2),
    ])
    .run(ctx)?;

    println!(
        "Read: cancel/split is exact at bias 1 in O(log n) time; 3-state needs bias \
         ≳ √(n·ln n); 4-state is exact but pays Θ(n) time — the trade-off that motivates \
         the paper's w.h.p. protocols."
    );
    Ok(())
}
