//! X18 — recovery from transient state corruption.
//!
//! Population protocols are prized for self-stabilization-adjacent
//! robustness: after a transient fault scrambles part of the population,
//! the dynamics should re-converge from the perturbed configuration. This
//! scenario corrupts a fraction of the agents to uniformly random states
//! *after* convergence (parallel time 50 is past the convergence knee for
//! every arm at these sizes) and measures the recovery time — parallel
//! time from the strike back to an agreeing population — and whether the
//! pre-fault winner survives, as the corrupted fraction grows.
//!
//! USD and the 3-state majority recover in `O(log n)` (the surviving
//! majority re-runs the dynamics from a biased start); the 4-state exact
//! majority also re-converges but its token bookkeeping is *not* restored
//! by corruption — random strong tokens shift `#A − #B` — so its famed
//! exactness holds only against the faults that preserve the token
//! invariant, a point the fault layer makes measurable.

use std::io;

use pp_engine::FaultSpec;
use pp_majority::{four_state_counts, FourState, ThreeState};
use pp_workloads::{Counts, Workload};

use crate::arm;
use crate::scenario::{col, Ctx, GridPoint, Scenario, Study};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x18",
    slug: "x18_fault_recovery",
    about: "Recovery time and winner survival vs corrupted fraction (USD, 3-/4-state)",
    outputs: &["x18_fault_recovery"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n = if ctx.full() { 1_000_000 } else { 10_000 };
    // 2:1 support — far enough from the lottery regime that the original
    // winner should survive moderate corruption.
    let workload = Workload::Geometric {
        n,
        k: 2,
        ratio: 0.5,
    };
    let fracs = [0.05, 0.1, 0.2, 0.4];

    Study::new(
        "X18: recovery from transient corruption vs corrupted fraction",
        "x18_fault_recovery",
    )
    .points(fracs.into_iter().map(|frac| {
        GridPoint::new(workload.clone(), 2_000.0)
            .tag(format!("{frac}"))
            .faults(vec![FaultSpec::Corrupt { at: 50.0, frac }])
    }))
    .arm(arm::usd())
    .arm(arm::table("3-state", |c: &Counts| {
        (
            ThreeState,
            vec![0, c.support(1) as u64, c.support(2) as u64],
        )
    }))
    .arm(arm::table("4-state", |c: &Counts| {
        (
            FourState,
            four_state_counts(c.support(1) as u64, c.support(2) as u64),
        )
    }))
    .cols(vec![
        col::tag("frac"),
        col::arm("protocol"),
        col::n(),
        col::engine(),
        col::ok_frac(),
        col::median(1),
        col::recovery(1),
        col::survived(),
    ])
    .run(ctx)?;

    println!(
        "Read: recovery time grows only mildly with the corrupted fraction (the surviving \
         majority restarts the dynamics from a biased configuration), and the pre-fault \
         winner survives moderate corruption in the large majority of trials."
    );
    Ok(())
}
