//! X7 — Lemma 3: the initialization phase.
//!
//! Claims measured: (1) the first `phase = 0` happens within
//! `O(n·(k + log n))` interactions, (2) at that moment every role holds at
//! least ~n/10 agents, (3) all opinion-1 collectors carry the defender bit.

use std::io;

use plurality_core::roles::Role;
use plurality_core::{SimpleAlgorithm, Tuning};
use pp_engine::{RunOptions, Simulation};
use pp_stats::{Summary, Table};
use pp_workloads::Counts;

use crate::scenario::{Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x07",
    slug: "x07_init",
    about: "Lemma 3: initialization ends in O(n(k + log n)) with balanced roles",
    outputs: &["x07_init"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let grid: Vec<(usize, usize)> = if ctx.full() {
        vec![
            (1000, 2),
            (2000, 2),
            (4000, 2),
            (8000, 2),
            (2000, 8),
            (2000, 32),
            (2000, 64),
        ]
    } else {
        vec![(1000, 2), (2000, 2), (2000, 8), (2000, 24)]
    };

    let mut table = Table::new(
        "X7: Lemma 3 — initialization end time and role balance",
        &[
            "n",
            "k",
            "median t̂/n",
            "t̂/(n(k+lnn))·n",
            "min role frac",
            "defender bits ok",
        ],
    );

    for (i, &(n, k)) in grid.iter().enumerate() {
        let counts = Counts::bias_one(n, k);
        let results = ctx.run_trials(i as u64, |seed| {
            let assignment = counts.assignment();
            let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
            let mut sim = Simulation::new(proto, states, seed);
            // Observe until the first agent reaches phase 0, then snapshot.
            let mut snapshot: Option<(f64, f64, bool)> = None;
            let _ = sim.run_observed(
                &RunOptions::with_parallel_time_budget(n, 3.0e3 * k as f64 + 2.0e4),
                |t, states| {
                    if snapshot.is_some() || !states.iter().any(|s| s.phase >= 0) {
                        return;
                    }
                    let mut roles = [0usize; 4];
                    let mut op1_total = 0usize;
                    let mut op1_defenders = 0usize;
                    for s in states {
                        match &s.role {
                            Role::Collector(c) => {
                                roles[0] += 1;
                                if c.opinion == 1 && c.tokens > 0 {
                                    op1_total += 1;
                                    op1_defenders += usize::from(c.defender);
                                }
                            }
                            Role::Clock(_) => roles[1] += 1,
                            Role::Tracker(_) => roles[2] += 1,
                            Role::Player(_) => roles[3] += 1,
                        }
                    }
                    let min_frac = roles
                        .iter()
                        .map(|&r| r as f64 / states.len() as f64)
                        .fold(1.0, f64::min);
                    snapshot = Some((t as f64 / n as f64, min_frac, op1_defenders == op1_total));
                },
            );
            snapshot.expect("init must end within the budget")
        });
        let t_hats: Vec<f64> = results.iter().map(|r| r.0).collect();
        let s = Summary::of(&t_hats);
        let min_frac = results.iter().map(|r| r.1).fold(1.0, f64::min);
        let all_defenders = results.iter().all(|r| r.2);
        table.push(vec![
            n.to_string(),
            k.to_string(),
            format!("{:.1}", s.median),
            format!("{:.2}", s.median / (k as f64 + (n as f64).ln())),
            format!("{min_frac:.3}"),
            all_defenders.to_string(),
        ]);
        eprintln!(
            "  n={n} k={k}: t̂={:.1}, min role frac {min_frac:.3}",
            s.median
        );
    }

    ctx.emit("x07_init", &table)?;
    println!(
        "Read: t̂/n grows like k + ln n (stable ratio column); every role holds ≥ ~0.1 of the \
         population (Lemma 3(2)); opinion-1 collectors all carry the defender bit (Lemma 3(3))."
    );
    Ok(())
}
