//! X16 — trajectory figures: what the dynamics *look like* over time.
//!
//! Two time series (CSV under `results/`), one row per sample:
//!
//! * `x16a_usd_trajectory` — per-opinion support under undecided-state
//!   dynamics on a bias-1 input: the plurality's lead is visibly drowned in
//!   the stochastic drift (why USD cannot be exact);
//! * `x16b_simple_trajectory` — defender-bit counts per opinion and the
//!   phase mode under `SimpleAlgorithm` on the same input: the defender
//!   marker hops to the tournament winner every cycle and settles on the
//!   plurality.

use std::io;

use plurality_core::roles::Role;
use plurality_core::{SimpleAlgorithm, Tuning};
use pp_baselines::Usd;
use pp_engine::{RunOptions, Simulation};
use pp_stats::Table;
use pp_workloads::Counts;

use crate::scenario::{Ctx, Scenario};

/// The registered scenario.
pub const SCENARIO: Scenario = Scenario {
    name: "x16",
    slug: "x16_trajectories",
    about: "Trajectory figures: USD supports random-walk; Simple's defender settles",
    outputs: &["x16a_usd_trajectory", "x16b_simple_trajectory"],
    run,
};

fn run(ctx: &mut Ctx) -> io::Result<()> {
    let n = if ctx.full() { 4000 } else { 1200 };
    let k = 3;
    let counts = Counts::bias_one(n, k);
    let assignment = counts.assignment();

    // ---- (a) USD supports over time. ----
    let mut ta = Table::new(
        "X16a: USD per-opinion support over time (bias-1 input)",
        &["t", "op1", "op2", "op3", "undecided"],
    );
    {
        let states = Usd::initial_states(assignment.opinions());
        let mut sim = Simulation::new(Usd, states, ctx.opts.seed);
        let mut next = 0u64;
        let _ = sim.run_observed(
            &RunOptions::with_parallel_time_budget(n, 200.0),
            |t, states| {
                if t < next {
                    return;
                }
                next = t + n as u64 / 2;
                let mut c = [0usize; 4];
                for &s in states {
                    c[usize::from(s).min(3)] += 1;
                }
                ta.push(vec![
                    format!("{:.1}", t as f64 / n as f64),
                    c[1].to_string(),
                    c[2].to_string(),
                    c[3].to_string(),
                    c[0].to_string(),
                ]);
            },
        );
    }
    println!("X16a: {} samples (see CSV)", ta.len());
    ctx.emit_csv_only("x16a_usd_trajectory", &ta)?;

    // ---- (b) SimpleAlgorithm defender evolution. ----
    let mut tb = Table::new(
        "X16b: SimpleAlgorithm defender bits per opinion over time",
        &["t", "phase_mode", "def1", "def2", "def3", "winners"],
    );
    {
        let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, ctx.opts.seed);
        let mut next = 0u64;
        let r = sim.run_observed(
            &RunOptions::with_parallel_time_budget(n, 100_000.0),
            |t, states| {
                if t < next {
                    return;
                }
                next = t + (n as u64) * 50;
                let mut defs = [0usize; 3];
                let mut winners = 0usize;
                let mut phases = std::collections::HashMap::new();
                for s in states {
                    *phases.entry(s.phase).or_insert(0usize) += 1;
                    if let Role::Collector(c) = &s.role {
                        if c.defender && usize::from(c.opinion) <= 3 {
                            defs[usize::from(c.opinion) - 1] += 1;
                        }
                        winners += usize::from(c.winner);
                    }
                }
                let mode = phases
                    .iter()
                    .max_by_key(|(_, &c)| c)
                    .map(|(&p, _)| p)
                    .unwrap_or(-9);
                tb.push(vec![
                    format!("{:.0}", t as f64 / n as f64),
                    mode.to_string(),
                    defs[0].to_string(),
                    defs[1].to_string(),
                    defs[2].to_string(),
                    winners.to_string(),
                ]);
            },
        );
        println!(
            "X16b: {} samples, final output {:?} (expected {})",
            tb.len(),
            r.output,
            assignment.plurality()
        );
    }
    ctx.emit_csv_only("x16b_simple_trajectory", &tb)?;
    println!(
        "Read: the USD series shows supports random-walking across each other at bias 1; \
         the Simple series shows the defender marker held by one opinion per tournament \
         and ending on the plurality."
    );
    Ok(())
}
