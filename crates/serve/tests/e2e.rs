//! End-to-end tests driving the real `ppd` binary over TCP.
//!
//! Three contracts from the service's spec sheet:
//!
//! * **Smoke**: a fresh daemon serves ingest/census/plurality/status/
//!   metrics and exits 0 on `shutdown`.
//! * **Kill–resume**: SIGKILL the daemon, restart with `--resume`, and
//!   the population continues byte-identically from the checkpoint
//!   boundary — the same census a never-killed daemon reports, with a
//!   monotone parallel clock across the kill.
//! * **Determinism**: same seed, same request trace (in `--lockstep`
//!   mode, where the clock belongs to the client) ⇒ byte-identical
//!   response lines across independent daemon processes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A `ppd` process plus one protocol connection to it.
struct Daemon {
    child: Child,
    conn: Option<Conn>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Daemon {
    /// Start `ppd --port 0 <args>` and connect; the bound address is
    /// scraped from the daemon's single stdout line.
    fn start<I, S>(args: I) -> Daemon
    where
        I: IntoIterator<Item = S>,
        S: AsRef<std::ffi::OsStr>,
    {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ppd"))
            .arg("--port")
            .arg("0")
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn ppd");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the listening line");
        let addr = line
            .trim()
            .strip_prefix("ppd listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
            .to_string();
        let stream = TcpStream::connect(&addr).expect("connect to ppd");
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Daemon {
            child,
            conn: Some(Conn {
                reader: BufReader::new(stream.try_clone().expect("clone")),
                writer: stream,
            }),
        }
    }

    /// One request line, one response line.
    fn ask(&mut self, line: &str) -> String {
        let conn = self.conn.as_mut().expect("connection open");
        writeln!(conn.writer, "{line}").expect("write request");
        conn.writer.flush().expect("flush");
        let mut resp = String::new();
        conn.reader.read_line(&mut resp).expect("read response");
        assert!(
            resp.ends_with('\n'),
            "connection closed mid-request for {line:?}"
        );
        resp.trim_end().to_string()
    }

    /// `shutdown`, then require a clean exit 0.
    fn shutdown(mut self) {
        let resp = self.ask("{\"cmd\":\"shutdown\"}");
        assert!(resp.contains("\"type\":\"shutdown\""), "{resp}");
        drop(self.conn.take());
        let status = wait_timeout(&mut self.child, Duration::from_secs(30));
        assert!(status.success(), "ppd exited with {status:?}");
    }

    /// SIGKILL — no warning, no cleanup; the crash the checkpoint
    /// layer must survive.
    fn kill(mut self) {
        drop(self.conn.take());
        self.child.kill().expect("SIGKILL ppd");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Portable bounded wait (std has no `wait_timeout`).
fn wait_timeout(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + limit;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(Instant::now() < deadline, "ppd did not exit in {limit:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppd-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Pull a JSON field's raw token out of a one-line response: good
/// enough for tests that compare whole lines anyway.
fn field<'a>(resp: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = resp.find(&pat).unwrap_or_else(|| panic!("{key} in {resp}")) + pat.len();
    let rest = &resp[start..];
    let end = rest
        .char_indices()
        .scan(0i32, |depth, (i, c)| {
            match c {
                '[' | '{' => *depth += 1,
                ']' | '}' if *depth > 0 => *depth -= 1,
                ',' | '}' | ']' if *depth == 0 => return Some(Some(i)),
                _ => {}
            }
            Some(None)
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn smoke_ingest_query_shutdown() {
    let mut d = Daemon::start(["--n", "3000", "--seed", "11", "--segment", "0.25"]);

    let resp = d.ask("{\"cmd\":\"status\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert_eq!(field(&resp, "population"), "3000");

    let resp = d.ask("{\"cmd\":\"ingest\",\"opinion\":2,\"count\":500}");
    assert!(resp.contains("\"type\":\"ingested\""), "{resp}");
    assert_eq!(field(&resp, "population"), "3500");

    let resp = d.ask("{\"cmd\":\"census\"}");
    assert_eq!(field(&resp, "population"), "3500");

    let resp = d.ask("{\"cmd\":\"plurality\"}");
    assert!(resp.contains("\"type\":\"plurality\""), "{resp}");

    // The free-running simulation makes observable progress.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = d.ask("{\"cmd\":\"status\"}");
        if field(&resp, "interactions") != "0" {
            break;
        }
        assert!(Instant::now() < deadline, "no interactions after 30s");
        std::thread::sleep(Duration::from_millis(20));
    }

    let resp = d.ask("{\"cmd\":\"metrics\"}");
    assert!(resp.contains("\"type\":\"metrics\""), "{resp}");
    assert_ne!(field(&resp, "interactions"), "0");
    assert_ne!(field(&resp, "segments"), "0");

    d.shutdown();
}

#[test]
fn kill_resume_continues_byte_identically_from_the_checkpoint() {
    let dir = scratch("killresume");
    let ckpt = dir.join("live.ckpt");
    let ckpt_s = ckpt.to_str().expect("utf-8 path");
    let base = |extra: &[&str]| -> Vec<String> {
        [
            "--n",
            "4000",
            "--seed",
            "23",
            "--lockstep",
            "--churn",
            "0.002",
            "--checkpoint",
            ckpt_s,
        ]
        .iter()
        .chain(extra)
        .map(|s| (*s).to_string())
        .collect()
    };

    // Reference run: never killed, steps 6 then 6.
    let mut a = Daemon::start(base(&[]));
    a.ask("{\"cmd\":\"ingest\",\"opinion\":1,\"count\":250}");
    a.ask("{\"cmd\":\"step\",\"time\":6}");
    a.ask("{\"cmd\":\"step\",\"time\":6}");
    let census_a = a.ask("{\"cmd\":\"census\"}");
    let status_a = a.ask("{\"cmd\":\"status\"}");
    a.kill();
    let _ = std::fs::remove_file(&ckpt);

    // Victim run: same trace to t=6, checkpoint, SIGKILL mid-flight.
    let mut b = Daemon::start(base(&[]));
    b.ask("{\"cmd\":\"ingest\",\"opinion\":1,\"count\":250}");
    b.ask("{\"cmd\":\"step\",\"time\":6}");
    let t_before = field(&b.ask("{\"cmd\":\"status\"}"), "t").to_string();
    let resp = b.ask("{\"cmd\":\"checkpoint\"}");
    assert!(resp.contains("\"type\":\"checkpointed\""), "{resp}");
    b.kill();

    // Resume: the second step lands exactly where the reference did.
    let mut c = Daemon::start(base(&["--resume", ckpt_s]));
    let t_resumed: f64 = field(&c.ask("{\"cmd\":\"status\"}"), "t")
        .parse()
        .expect("t");
    let t_before: f64 = t_before.parse().expect("t");
    assert_eq!(
        t_resumed.to_bits(),
        t_before.to_bits(),
        "resume must restart at the checkpoint's clock"
    );
    c.ask("{\"cmd\":\"step\",\"time\":6}");
    let census_c = c.ask("{\"cmd\":\"census\"}");
    let status_c = c.ask("{\"cmd\":\"status\"}");
    assert_eq!(census_c, census_a, "census must stitch byte-identically");
    // Status matches field-by-field except `ingested` (a per-process
    // counter: the resumed daemon ingested nothing itself) and
    // `interactions` (also per-process since the resume).
    for key in [
        "t",
        "population",
        "consensus",
        "output",
        "time_in_consensus",
    ] {
        assert_eq!(
            field(&status_c, key),
            field(&status_a, key),
            "status field {key}: {status_c} vs {status_a}"
        );
    }
    let t_final: f64 = field(&status_c, "t").parse().expect("t");
    assert!(
        t_final >= t_resumed,
        "parallel time must be monotone across the kill"
    );
    c.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn same_seed_same_trace_same_bytes() {
    let trace = [
        "{\"cmd\":\"census\"}",
        "{\"cmd\":\"step\",\"time\":2.5}",
        "{\"cmd\":\"ingest\",\"opinion\":2,\"count\":777}",
        "{\"cmd\":\"step\",\"time\":3.5}",
        "{\"cmd\":\"census\"}",
        "{\"cmd\":\"status\"}",
        "{\"cmd\":\"plurality\"}",
    ];
    let run = || -> Vec<String> {
        let mut d = Daemon::start(["--n", "2500", "--seed", "31", "--lockstep"]);
        let out = trace.iter().map(|line| d.ask(line)).collect();
        d.shutdown();
        out
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "responses must be byte-identical across processes");
}
