//! Wire-protocol conformance: every request and response shape
//! round-trips through its one-line JSON spelling, and a live server
//! answers malformed input with a typed error line — never a panic,
//! never a dropped connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use pp_majority::ThreeState;
use pp_serve::{Metrics, ProtoError, Request, Response, ServerHandle, Service, ServiceConfig};

#[test]
fn every_request_round_trips() {
    let requests = [
        Request::Ingest {
            opinion: 7,
            count: 12_345,
        },
        Request::Census,
        Request::Plurality,
        Request::Status,
        Request::Metrics,
        Request::Checkpoint,
        Request::Step { time: 2.5 },
        Request::Shutdown,
    ];
    for req in requests {
        let line = req.to_json();
        let back = Request::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(back, req, "{line}");
    }
}

#[test]
fn every_response_round_trips() {
    let responses = [
        Response::Ingested {
            opinion: 2,
            count: 500,
            population: 10_500,
        },
        Response::Census {
            t: 42.125,
            population: 10_500,
            census: vec![(1, 7_000), (2, 3_000)],
        },
        Response::Census {
            t: 0.0,
            population: 2,
            census: vec![],
        },
        Response::Plurality {
            t: 1.5,
            opinion: Some(1),
            frac: 0.625,
            exact: false,
        },
        Response::Plurality {
            t: 0.0,
            opinion: None,
            frac: 0.0,
            exact: false,
        },
        Response::Status {
            t: 10.0,
            population: u64::MAX - 5,
            interactions: u64::MAX - 9,
            consensus: true,
            output: Some(1),
            time_in_consensus: 0.75,
            ingested: 600,
        },
        Response::Metrics(Metrics {
            uptime_s: 3.5,
            requests: 100,
            errors: 2,
            ingest_requests: 5,
            ingested_agents: 2_500,
            ingest_rate: 714.2857142857143,
            interactions: 123_456_789,
            interactions_rate: 35_273_368.25,
            batches: 4_321,
            segments: 17,
            threads: 8,
            checkpoints: 3,
            checkpoint_mean_ms: 0.875,
        }),
        Response::Checkpointed {
            path: "/tmp/ppd \"weird\" path.ckpt".to_string(),
            t: 12.5,
        },
        Response::Stepped { t: 5.0 },
        Response::ShutDown,
        Response::Error {
            error: "unknown cmd \"bogus\"\nwith a newline".to_string(),
        },
    ];
    for resp in responses {
        let line = resp.to_json();
        assert!(!line.contains('\n'), "responses must be one line: {line}");
        let back = Response::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(back, resp, "{line}");
    }
}

/// NaN cannot travel as a JSON number; the wire spelling is `null` and
/// the client reads it back as NaN (NaN != NaN, so this one is checked
/// by hand rather than through `PartialEq`).
#[test]
fn nan_time_in_consensus_travels_as_null() {
    let resp = Response::Status {
        t: 0.0,
        population: 100,
        interactions: 0,
        consensus: false,
        output: None,
        time_in_consensus: f64::NAN,
        ingested: 0,
    };
    let line = resp.to_json();
    assert!(line.contains("\"time_in_consensus\":null"), "{line}");
    let Response::Status {
        time_in_consensus, ..
    } = Response::parse(&line).expect("parse")
    else {
        panic!("wrong shape")
    };
    assert!(time_in_consensus.is_nan());
}

#[test]
fn malformed_requests_are_typed_errors() {
    let bad = [
        "",
        "not json",
        "42",
        "[]",
        "{\"cmd\":\"frobnicate\"}",
        "{\"opinion\":1}",
        "{\"cmd\":\"ingest\"}",
        "{\"cmd\":\"ingest\",\"opinion\":1}",
        "{\"cmd\":\"ingest\",\"opinion\":1,\"count\":0}",
        "{\"cmd\":\"ingest\",\"opinion\":-1,\"count\":5}",
        "{\"cmd\":\"ingest\",\"opinion\":1.5,\"count\":5}",
        "{\"cmd\":\"step\"}",
        "{\"cmd\":\"step\",\"time\":0}",
        "{\"cmd\":\"step\",\"time\":-1}",
        "{\"cmd\":\"step\",\"time\":null}",
        "{\"cmd\":42}",
    ];
    for line in bad {
        let err = Request::parse(line);
        assert!(matches!(err, Err(ProtoError(_))), "{line:?} -> {err:?}");
    }
}

/// A live server must answer garbage with an error line and keep the
/// connection serving: the hard protocol promise is that no input
/// drops the socket or kills the daemon.
#[test]
fn server_answers_garbage_with_error_lines_and_keeps_serving() {
    let svc = Service::spawn(
        ThreeState,
        ServiceConfig {
            initial: vec![0, 700, 300],
            lockstep: true,
            ..ServiceConfig::default()
        },
    )
    .expect("spawn service");
    let server = ServerHandle::bind("127.0.0.1:0", &svc, 2).expect("bind");
    let addr = server.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut ask = |line: &str| -> Response {
        writeln!(writer, "{line}").expect("write");
        writer.flush().expect("flush");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        assert!(resp.ends_with('\n'), "unterminated response for {line:?}");
        Response::parse(&resp).unwrap_or_else(|e| panic!("{resp}: {e}"))
    };

    for garbage in [
        "not json at all",
        "{\"cmd\":\"nope\"}",
        "{\"cmd\":\"ingest\",\"opinion\":99,\"count\":5}",
        "{broken",
        "\"just a string\"",
    ] {
        let resp = ask(garbage);
        assert!(
            matches!(resp, Response::Error { .. }),
            "{garbage:?} -> {resp:?}"
        );
    }

    // The same connection still serves real requests afterwards.
    let resp = ask("{\"cmd\":\"census\"}");
    let Response::Census { population, .. } = resp else {
        panic!("census after garbage failed: {resp:?}")
    };
    assert_eq!(population, 1_000);

    let resp = ask("{\"cmd\":\"metrics\"}");
    let Response::Metrics(m) = resp else {
        panic!("metrics failed: {resp:?}")
    };
    assert_eq!(m.errors, 5, "every garbage line counts as one error");
    assert_eq!(m.requests, 7);

    assert_eq!(ask("{\"cmd\":\"shutdown\"}"), Response::ShutDown);
    server.join();
    svc.join();
}
