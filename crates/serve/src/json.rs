//! A minimal JSON reader for the wire protocol.
//!
//! The workspace deliberately carries no external dependencies, so the
//! newline-delimited protocol parses with this hand-rolled recursive
//! descent reader instead of serde. Two deviations from a generic JSON
//! library, both deliberate:
//!
//! * Numbers keep their **literal spelling** ([`Json::Num`] holds the
//!   token, not an `f64`), so `u64` counters round-trip without passing
//!   through the 53-bit double mantissa — a service that has simulated
//!   more than 2⁵³ interactions still reports them exactly.
//! * The parser is **total**: any byte sequence produces either a value
//!   or a typed error string. Malformed input must become an error
//!   *line* on the wire, never a panic or a dropped connection.
//!
//! Serialization stays where the values are built (see
//! [`proto`](crate::proto)); this module only provides the string
//! escaper those builders share.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order; duplicate keys
/// are rejected at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal spelling (parse on demand).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found, with a
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer (no fraction, no exponent,
    /// no precision loss).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The value as an exact `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The value as a double. `null` maps to NaN — the wire spelling for
    /// not-a-number, which JSON itself cannot carry.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(lit) => lit.parse().ok(),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// Render a string as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a double as a JSON token: `null` for non-finite values
/// (JSON has no NaN/Infinity), shortest round-trip decimal otherwise.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Nesting depth cap: deeper input is hostile, not a protocol message.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at {}", self.pos)),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| "bad surrogate pair".to_string())?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "lone low surrogate".to_string())?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe
                    // to do bytewise up to the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8".to_string())?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err("truncated \\u escape".to_string());
        };
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let lit = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ascii")
            .to_string();
        // Reject spellings that don't even fit a double's range grammar.
        lit.parse::<f64>()
            .map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Json::Num(lit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(r#"{"cmd":"ingest","opinion":1,"count":250}"#).expect("parse");
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("ingest"));
        assert_eq!(v.get("opinion").and_then(Json::as_u32), Some(1));
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(250));
    }

    #[test]
    fn u64_counters_keep_exact_precision() {
        let big = u64::MAX - 3;
        let v = Json::parse(&format!("{{\"interactions\":{big}}}")).expect("parse");
        assert_eq!(v.get("interactions").and_then(Json::as_u64), Some(big));
    }

    #[test]
    fn null_reads_as_nan_for_doubles() {
        let v = Json::parse(r#"{"tic":null}"#).expect("parse");
        assert!(v.get("tic").and_then(Json::as_f64).expect("f64").is_nan());
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(0.25), "0.25");
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "-",
            "1.",
            "1e",
            "{\"a\":1,\"a\":2}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\q\"",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Hostile nesting is bounded, not a stack overflow.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f/🦀";
        let v = Json::parse(&escape(nasty)).expect("parse");
        assert_eq!(v.as_str(), Some(nasty));
        let pair = Json::parse("\"\\ud83e\\udd80\"").expect("surrogate pair");
        assert_eq!(pair.as_str(), Some("🦀"));
    }
}
