//! `ppd` — a long-running plurality-consensus service.
//!
//! Every experiment in this workspace so far is a *batch*: configure a
//! population, run to a horizon, emit CSVs. This crate turns the
//! batched engine into a *service*: a daemon hosting a live population
//! that external clients feed (`ingest`), query (`census`,
//! `plurality`, `status`, `metrics`) and snapshot (`checkpoint`) over
//! a newline-delimited JSON protocol on plain TCP — while the
//! simulation keeps absorbing the stream into consensus in the
//! background.
//!
//! The layering, bottom up:
//!
//! * [`json`] — a dependency-free JSON reader (the workspace has no
//!   serde) that keeps integer literals exact,
//! * [`proto`] — the wire protocol: request/response types and their
//!   one-line spellings, total in both directions,
//! * [`stats`] — the relaxed-atomic counters behind `metrics`,
//! * [`service`] — the simulation thread: a
//!   [`SegmentRunner`](pp_engine::SegmentRunner) advanced in segments,
//!   a published [`Snapshot`](service::Snapshot) for queries, a control
//!   channel for mutations, crash-safe checkpoints on a wall-clock
//!   timer,
//! * [`server`] — the `std::net` front end: acceptor thread, worker
//!   pool, graceful drain.
//!
//! The two binaries are thin shells: `ppd` wires a protocol choice and
//! CLI flags into a [`service::Service`] plus a
//! [`server::ServerHandle`]; `ppc` is a one-shot line client for
//! scripts and CI.
//!
//! The contract inherited from the checkpoint layer holds end to end:
//! kill the daemon at any instant and `ppd --resume` restores the
//! population byte-identically from the last checkpoint — snapshots
//! are written atomically (tmp + fsync + rename), so a torn write is
//! never observable.

pub mod json;
pub mod proto;
pub mod server;
pub mod service;
pub mod stats;

pub use proto::{Metrics, ProtoError, Request, Response};
pub use server::ServerHandle;
pub use service::{Ctl, Service, ServiceConfig, Snapshot};
pub use stats::ServiceStats;
