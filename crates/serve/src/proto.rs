//! The `ppd` wire protocol: newline-delimited JSON, one request per
//! line, one response line per request.
//!
//! Requests are objects with a `"cmd"` discriminant; responses carry
//! `"ok"` plus a `"type"` discriminant. Every malformed line — bad JSON,
//! unknown command, missing or mistyped field — maps to a single
//! `{"ok":false,"type":"error",...}` line and the connection stays open;
//! the server never answers a request by dropping the socket.
//!
//! ```text
//! → {"cmd":"ingest","opinion":2,"count":500}
//! ← {"ok":true,"type":"ingested","opinion":2,"count":500,"population":10500}
//! → {"cmd":"plurality"}
//! ← {"ok":true,"type":"plurality","t":42.0,"opinion":1,"frac":0.633,"exact":false}
//! ```
//!
//! Both directions parse and serialize here so the round-trip is
//! testable without a socket. Doubles print in Rust's shortest
//! round-trip decimal form; non-finite doubles (the time-in-consensus
//! of a run with no samples yet) travel as `null` and read back as NaN.

use std::fmt;

use crate::json::{escape, num, Json};

/// A client request, one per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit `count` fresh agents advocating `opinion` into the live
    /// population.
    Ingest {
        /// Opinion the new agents advocate (validated against the
        /// protocol's opinion set at the service layer).
        opinion: u32,
        /// How many agents join.
        count: u64,
    },
    /// Per-opinion headcount of the live population.
    Census,
    /// Current plurality opinion, its support fraction, and whether the
    /// exact predicate fires.
    Plurality,
    /// Parallel time, population, interactions, exact-predicate state,
    /// time-in-consensus.
    Status,
    /// Service counters: requests, interactions, batches, checkpoints,
    /// ingest rate.
    Metrics,
    /// Write a checkpoint now (requires the daemon to have a
    /// checkpoint path).
    Checkpoint,
    /// Advance the simulation by `time` units of parallel time
    /// (lockstep mode's explicit clock).
    Step {
        /// Parallel time to advance by; finite and positive.
        time: f64,
    },
    /// Graceful shutdown: drain in-flight requests, final checkpoint,
    /// exit 0.
    Shutdown,
}

/// A protocol-level error: the text becomes the `error` field of an
/// error response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ProtoError> {
    obj.get(key)
        .ok_or_else(|| ProtoError(format!("missing field {key:?}")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, ProtoError> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| ProtoError(format!("field {key:?} must be an unsigned integer")))
}

fn u32_field(obj: &Json, key: &str) -> Result<u32, ProtoError> {
    field(obj, key)?
        .as_u32()
        .ok_or_else(|| ProtoError(format!("field {key:?} must be an unsigned 32-bit integer")))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, ProtoError> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| ProtoError(format!("field {key:?} must be a number")))
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtoError> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| ProtoError(format!("field {key:?} must be a boolean")))
}

fn opt_u32_field(obj: &Json, key: &str) -> Result<Option<u32>, ProtoError> {
    match field(obj, key)? {
        Json::Null => Ok(None),
        v => v
            .as_u32()
            .map(Some)
            .ok_or_else(|| ProtoError(format!("field {key:?} must be null or a u32"))),
    }
}

fn opt_u32_json(v: Option<u32>) -> String {
    v.map_or_else(|| "null".to_string(), |o| o.to_string())
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] describing the first problem: invalid JSON, a
    /// non-object, a missing or unknown `cmd`, or a bad field.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = Json::parse(line.trim()).map_err(|e| ProtoError(format!("invalid json: {e}")))?;
        if !matches!(v, Json::Obj(_)) {
            return Err(ProtoError("request must be a json object".to_string()));
        }
        let cmd = field(&v, "cmd")?
            .as_str()
            .ok_or_else(|| ProtoError("field \"cmd\" must be a string".to_string()))?;
        match cmd {
            "ingest" => {
                let opinion = u32_field(&v, "opinion")?;
                let count = u64_field(&v, "count")?;
                if count == 0 {
                    return Err(ProtoError("ingest count must be at least 1".to_string()));
                }
                Ok(Request::Ingest { opinion, count })
            }
            "census" => Ok(Request::Census),
            "plurality" => Ok(Request::Plurality),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "checkpoint" => Ok(Request::Checkpoint),
            "step" => {
                let time = f64_field(&v, "time")?;
                if !time.is_finite() || time <= 0.0 {
                    return Err(ProtoError(
                        "step time must be finite and positive".to_string(),
                    ));
                }
                Ok(Request::Step { time })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError(format!("unknown cmd {other:?}"))),
        }
    }

    /// The request as its one-line JSON spelling.
    pub fn to_json(&self) -> String {
        match self {
            Request::Ingest { opinion, count } => {
                format!("{{\"cmd\":\"ingest\",\"opinion\":{opinion},\"count\":{count}}}")
            }
            Request::Census => "{\"cmd\":\"census\"}".to_string(),
            Request::Plurality => "{\"cmd\":\"plurality\"}".to_string(),
            Request::Status => "{\"cmd\":\"status\"}".to_string(),
            Request::Metrics => "{\"cmd\":\"metrics\"}".to_string(),
            Request::Checkpoint => "{\"cmd\":\"checkpoint\"}".to_string(),
            Request::Step { time } => format!("{{\"cmd\":\"step\",\"time\":{}}}", num(*time)),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        }
    }
}

/// Service counters reported by the `metrics` command. Rates are
/// computed over the daemon's uptime.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Seconds since the service started.
    pub uptime_s: f64,
    /// Request lines processed (including ones answered with errors).
    pub requests: u64,
    /// Request lines answered with an error response.
    pub errors: u64,
    /// `ingest` requests applied.
    pub ingest_requests: u64,
    /// Agents admitted via `ingest`.
    pub ingested_agents: u64,
    /// Agents admitted per second of uptime.
    pub ingest_rate: f64,
    /// Interactions simulated since start (or resume).
    pub interactions: u64,
    /// Interactions simulated per second of uptime.
    pub interactions_rate: f64,
    /// Engine batches applied.
    pub batches: u64,
    /// Simulation segments stepped.
    pub segments: u64,
    /// Engine worker threads (`--threads`). Pure scheduling: the
    /// trajectory is byte-identical at any value.
    pub threads: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Mean checkpoint write latency in milliseconds (NaN before the
    /// first checkpoint).
    pub checkpoint_mean_ms: f64,
}

/// A server response, one line per request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `ingest` applied.
    Ingested {
        /// Opinion the admitted agents advocate.
        opinion: u32,
        /// Number of agents admitted.
        count: u64,
        /// Population after the admission.
        population: u64,
    },
    /// `census` result: per-opinion headcounts, ascending by opinion.
    Census {
        /// Parallel time of the census.
        t: f64,
        /// Total live population (including undecided agents).
        population: u64,
        /// `(opinion, count)` pairs, ascending by opinion.
        census: Vec<(u32, u64)>,
    },
    /// `plurality` result.
    Plurality {
        /// Parallel time of the reading.
        t: f64,
        /// The most-supported opinion, `null` when no agent holds one.
        opinion: Option<u32>,
        /// Fraction of the population advocating it.
        frac: f64,
        /// Whether the protocol's exact convergence predicate fires.
        exact: bool,
    },
    /// `status` result.
    Status {
        /// Parallel time of the live population.
        t: f64,
        /// Total live population.
        population: u64,
        /// Interactions simulated since start (or resume).
        interactions: u64,
        /// Whether the exact predicate currently fires.
        consensus: bool,
        /// The converged output when it does.
        output: Option<u32>,
        /// Fraction of sampled marks spent in exact consensus (NaN
        /// before the first sample).
        time_in_consensus: f64,
        /// Agents admitted via `ingest` so far.
        ingested: u64,
    },
    /// `metrics` result.
    Metrics(Metrics),
    /// `checkpoint` applied.
    Checkpointed {
        /// Where the snapshot landed.
        path: String,
        /// Parallel time it captures.
        t: f64,
    },
    /// `step` applied.
    Stepped {
        /// Parallel time after the step.
        t: f64,
    },
    /// `shutdown` acknowledged; the final checkpoint (if configured) is
    /// already on disk when this line arrives.
    ShutDown,
    /// The request could not be served; the connection stays open.
    Error {
        /// What went wrong.
        error: String,
    },
}

impl From<ProtoError> for Response {
    fn from(e: ProtoError) -> Self {
        Response::Error { error: e.0 }
    }
}

impl Response {
    /// The response as its one-line JSON spelling.
    pub fn to_json(&self) -> String {
        match self {
            Response::Ingested {
                opinion,
                count,
                population,
            } => format!(
                "{{\"ok\":true,\"type\":\"ingested\",\"opinion\":{opinion},\"count\":{count},\
                 \"population\":{population}}}"
            ),
            Response::Census {
                t,
                population,
                census,
            } => {
                let pairs: Vec<String> = census.iter().map(|(o, c)| format!("[{o},{c}]")).collect();
                format!(
                    "{{\"ok\":true,\"type\":\"census\",\"t\":{},\"population\":{population},\
                     \"census\":[{}]}}",
                    num(*t),
                    pairs.join(",")
                )
            }
            Response::Plurality {
                t,
                opinion,
                frac,
                exact,
            } => format!(
                "{{\"ok\":true,\"type\":\"plurality\",\"t\":{},\"opinion\":{},\"frac\":{},\
                 \"exact\":{exact}}}",
                num(*t),
                opt_u32_json(*opinion),
                num(*frac)
            ),
            Response::Status {
                t,
                population,
                interactions,
                consensus,
                output,
                time_in_consensus,
                ingested,
            } => format!(
                "{{\"ok\":true,\"type\":\"status\",\"t\":{},\"population\":{population},\
                 \"interactions\":{interactions},\"consensus\":{consensus},\"output\":{},\
                 \"time_in_consensus\":{},\"ingested\":{ingested}}}",
                num(*t),
                opt_u32_json(*output),
                num(*time_in_consensus)
            ),
            Response::Metrics(m) => format!(
                "{{\"ok\":true,\"type\":\"metrics\",\"uptime_s\":{},\"requests\":{},\
                 \"errors\":{},\"ingest_requests\":{},\"ingested_agents\":{},\"ingest_rate\":{},\
                 \"interactions\":{},\"interactions_rate\":{},\"batches\":{},\"segments\":{},\
                 \"threads\":{},\"checkpoints\":{},\"checkpoint_mean_ms\":{}}}",
                num(m.uptime_s),
                m.requests,
                m.errors,
                m.ingest_requests,
                m.ingested_agents,
                num(m.ingest_rate),
                m.interactions,
                num(m.interactions_rate),
                m.batches,
                m.segments,
                m.threads,
                m.checkpoints,
                num(m.checkpoint_mean_ms)
            ),
            Response::Checkpointed { path, t } => format!(
                "{{\"ok\":true,\"type\":\"checkpointed\",\"path\":{},\"t\":{}}}",
                escape(path),
                num(*t)
            ),
            Response::Stepped { t } => {
                format!("{{\"ok\":true,\"type\":\"stepped\",\"t\":{}}}", num(*t))
            }
            Response::ShutDown => "{\"ok\":true,\"type\":\"shutdown\"}".to_string(),
            Response::Error { error } => {
                format!(
                    "{{\"ok\":false,\"type\":\"error\",\"error\":{}}}",
                    escape(error)
                )
            }
        }
    }

    /// Parse one response line (the client half of the round-trip).
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] for invalid JSON or a malformed response shape.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let v = Json::parse(line.trim()).map_err(|e| ProtoError(format!("invalid json: {e}")))?;
        let ok = bool_field(&v, "ok")?;
        let ty = field(&v, "type")?
            .as_str()
            .ok_or_else(|| ProtoError("field \"type\" must be a string".to_string()))?;
        if !ok {
            if ty != "error" {
                return Err(ProtoError(format!("ok:false with type {ty:?}")));
            }
            let error = field(&v, "error")?
                .as_str()
                .ok_or_else(|| ProtoError("field \"error\" must be a string".to_string()))?
                .to_string();
            return Ok(Response::Error { error });
        }
        match ty {
            "ingested" => Ok(Response::Ingested {
                opinion: u32_field(&v, "opinion")?,
                count: u64_field(&v, "count")?,
                population: u64_field(&v, "population")?,
            }),
            "census" => {
                let arr = match field(&v, "census")? {
                    Json::Arr(items) => items,
                    _ => return Err(ProtoError("field \"census\" must be an array".to_string())),
                };
                let mut census = Vec::with_capacity(arr.len());
                for item in arr {
                    let pair = match item {
                        Json::Arr(p) if p.len() == 2 => p,
                        _ => {
                            return Err(ProtoError(
                                "census entries must be [opinion, count] pairs".to_string(),
                            ))
                        }
                    };
                    let (Some(o), Some(c)) = (pair[0].as_u32(), pair[1].as_u64()) else {
                        return Err(ProtoError(
                            "census entries must be [opinion, count] pairs".to_string(),
                        ));
                    };
                    census.push((o, c));
                }
                Ok(Response::Census {
                    t: f64_field(&v, "t")?,
                    population: u64_field(&v, "population")?,
                    census,
                })
            }
            "plurality" => Ok(Response::Plurality {
                t: f64_field(&v, "t")?,
                opinion: opt_u32_field(&v, "opinion")?,
                frac: f64_field(&v, "frac")?,
                exact: bool_field(&v, "exact")?,
            }),
            "status" => Ok(Response::Status {
                t: f64_field(&v, "t")?,
                population: u64_field(&v, "population")?,
                interactions: u64_field(&v, "interactions")?,
                consensus: bool_field(&v, "consensus")?,
                output: opt_u32_field(&v, "output")?,
                time_in_consensus: f64_field(&v, "time_in_consensus")?,
                ingested: u64_field(&v, "ingested")?,
            }),
            "metrics" => Ok(Response::Metrics(Metrics {
                uptime_s: f64_field(&v, "uptime_s")?,
                requests: u64_field(&v, "requests")?,
                errors: u64_field(&v, "errors")?,
                ingest_requests: u64_field(&v, "ingest_requests")?,
                ingested_agents: u64_field(&v, "ingested_agents")?,
                ingest_rate: f64_field(&v, "ingest_rate")?,
                interactions: u64_field(&v, "interactions")?,
                interactions_rate: f64_field(&v, "interactions_rate")?,
                batches: u64_field(&v, "batches")?,
                segments: u64_field(&v, "segments")?,
                threads: u64_field(&v, "threads")?,
                checkpoints: u64_field(&v, "checkpoints")?,
                checkpoint_mean_ms: f64_field(&v, "checkpoint_mean_ms")?,
            })),
            "checkpointed" => Ok(Response::Checkpointed {
                path: field(&v, "path")?
                    .as_str()
                    .ok_or_else(|| ProtoError("field \"path\" must be a string".to_string()))?
                    .to_string(),
                t: f64_field(&v, "t")?,
            }),
            "stepped" => Ok(Response::Stepped {
                t: f64_field(&v, "t")?,
            }),
            "shutdown" => Ok(Response::ShutDown),
            other => Err(ProtoError(format!("unknown response type {other:?}"))),
        }
    }
}
