//! Lock-free service counters behind the `metrics` endpoint.
//!
//! One [`ServiceStats`] is shared by the worker threads (request and
//! error counts), the simulation thread (interactions, batches,
//! segments, checkpoint latencies) and the ingest path. All counters
//! are relaxed atomics: the metrics endpoint reads a statistical
//! snapshot, not a linearizable one, and the hot paths (a counter bump
//! per request, a store per segment) must stay free of locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::proto::Metrics;

/// Shared counters; see the module docs for who writes what.
#[derive(Debug)]
pub struct ServiceStats {
    started: Instant,
    /// Request lines processed (including ones answered with errors).
    pub requests: AtomicU64,
    /// Request lines answered with an error response.
    pub errors: AtomicU64,
    /// `ingest` requests applied.
    pub ingest_requests: AtomicU64,
    /// Agents admitted via `ingest`.
    pub ingested_agents: AtomicU64,
    /// Interactions simulated since start (published by the sim thread).
    pub interactions: AtomicU64,
    /// Engine batches applied (published by the sim thread).
    pub batches: AtomicU64,
    /// Simulation segments stepped.
    pub segments: AtomicU64,
    /// Checkpoints written.
    pub checkpoints: AtomicU64,
    /// Total nanoseconds spent writing checkpoints.
    pub checkpoint_ns: AtomicU64,
    /// Engine worker threads (set once at spawn from the service config).
    pub threads: AtomicU64,
}

impl Default for ServiceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceStats {
    /// Fresh counters with the uptime clock starting now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            ingest_requests: AtomicU64::new(0),
            ingested_agents: AtomicU64::new(0),
            interactions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            segments: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_ns: AtomicU64::new(0),
            threads: AtomicU64::new(1),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the counters into a [`Metrics`] response body.
    pub fn metrics(&self) -> Metrics {
        let uptime_s = self.started.elapsed().as_secs_f64();
        let ingested = self.ingested_agents.load(Ordering::Relaxed);
        let interactions = self.interactions.load(Ordering::Relaxed);
        let checkpoints = self.checkpoints.load(Ordering::Relaxed);
        let ckpt_ns = self.checkpoint_ns.load(Ordering::Relaxed);
        Metrics {
            uptime_s,
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            ingest_requests: self.ingest_requests.load(Ordering::Relaxed),
            ingested_agents: ingested,
            ingest_rate: ingested as f64 / uptime_s,
            interactions,
            interactions_rate: interactions as f64 / uptime_s,
            batches: self.batches.load(Ordering::Relaxed),
            segments: self.segments.load(Ordering::Relaxed),
            threads: self.threads.load(Ordering::Relaxed),
            checkpoints,
            checkpoint_mean_ms: if checkpoints == 0 {
                f64::NAN
            } else {
                ckpt_ns as f64 / checkpoints as f64 / 1e6
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_reports_counts_and_rates() {
        let s = ServiceStats::new();
        ServiceStats::bump(&s.requests);
        ServiceStats::bump(&s.requests);
        ServiceStats::bump(&s.errors);
        ServiceStats::add(&s.ingested_agents, 500);
        ServiceStats::bump(&s.ingest_requests);
        s.interactions.store(1_000_000, Ordering::Relaxed);
        let m = s.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.errors, 1);
        assert_eq!(m.ingested_agents, 500);
        assert_eq!(m.interactions, 1_000_000);
        assert!(m.uptime_s >= 0.0);
        assert!(m.ingest_rate > 0.0);
        assert!(m.checkpoint_mean_ms.is_nan(), "no checkpoints yet");
    }

    #[test]
    fn checkpoint_latency_averages_over_writes() {
        let s = ServiceStats::new();
        ServiceStats::bump(&s.checkpoints);
        ServiceStats::add(&s.checkpoint_ns, 2_000_000);
        ServiceStats::bump(&s.checkpoints);
        ServiceStats::add(&s.checkpoint_ns, 4_000_000);
        let m = s.metrics();
        assert_eq!(m.checkpoints, 2);
        assert!((m.checkpoint_mean_ms - 3.0).abs() < 1e-9);
    }
}
