//! The network half of `ppd`: a `std::net` listener and a worker pool.
//!
//! The workspace runs with no external dependencies, so there is no
//! async runtime here — just an acceptor thread handing sockets to a
//! fixed pool of workers over a channel. Each worker owns one
//! connection at a time and speaks the newline-delimited protocol:
//! read a line, answer a line, never drop the socket over a malformed
//! request.
//!
//! Everything blocking carries a short read timeout so the threads can
//! poll the shared stop flag: a worker parked in `read_line` notices a
//! shutdown within a quarter second and closes its connection after
//! finishing the request in flight. The acceptor is unblocked
//! explicitly — whoever raises the stop flag calls
//! [`ServerHandle::wake`], which makes a throwaway connection to the
//! listening socket so `accept` returns and the acceptor sees the flag.
//!
//! Queries (`census`, `plurality`, `status`, `metrics`) are answered
//! entirely inside the worker from the service's published snapshot;
//! only mutations cross into the simulation thread. See
//! [`service`](crate::service) for that split.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::{Request, Response};
use crate::service::{Ctl, Service, Snapshot};
use crate::stats::ServiceStats;

/// How long a blocked read waits before re-checking the stop flag.
const POLL: Duration = Duration::from_millis(250);

/// How long a worker waits for the simulation thread to answer a
/// mutation before giving up on the request.
const CTL_TIMEOUT: Duration = Duration::from_secs(60);

/// Everything a worker needs to answer requests.
#[derive(Clone)]
struct Shared {
    stats: Arc<ServiceStats>,
    snapshot: Arc<RwLock<Snapshot>>,
    ctl: Sender<Ctl>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

/// A running front end: acceptor thread plus worker pool.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Bind `addr` and start serving the protocol for `service` with
    /// `workers` connection-handling threads.
    ///
    /// # Errors
    ///
    /// Bind/listen errors, and thread-spawn failures.
    pub fn bind(addr: &str, service: &Service, workers: usize) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Shared {
            stats: service.stats(),
            snapshot: service.snapshot_cell(),
            ctl: service.ctl(),
            stop: service.stop_flag(),
            addr: local,
        };

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut pool = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let shared = shared.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("ppd-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))?,
            );
        }

        let stop = Arc::clone(&shared.stop);
        let acceptor = std::thread::Builder::new()
            .name("ppd-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            if conn_tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping conn_tx disconnects the pool's receiver, so
                // idle workers exit without waiting for their poll tick.
            })?;

        Ok(ServerHandle {
            addr: local,
            acceptor,
            workers: pool,
            stop: Arc::clone(&shared.stop),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Unblock the acceptor after the stop flag is raised: a throwaway
    /// connection makes `accept` return so the thread re-checks the
    /// flag. Harmless if the acceptor already exited.
    pub fn wake(&self) {
        if self.stop.load(Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Wait for the acceptor and every worker to exit. Workers finish
    /// the request they are serving before closing their connections.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared) {
    loop {
        // Hold the lock only to receive; `recv_timeout` lets idle
        // workers poll the stop flag.
        let conn = {
            let guard = rx.lock().expect("connection queue lock");
            guard.recv_timeout(POLL)
        };
        match conn {
            Ok(stream) => serve_conn(stream, shared),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Speak the protocol over one connection until EOF, error, or stop.
fn serve_conn(stream: TcpStream, shared: &Shared) {
    // A request/response line protocol stalls badly under Nagle +
    // delayed ACK (40ms per round-trip); flush segments immediately.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` appends across timeouts, so a line arriving in
        // pieces still comes out whole: clear only after processing.
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if !line.trim().is_empty() {
                    let resp = process(&line, shared);
                    let shutting = matches!(resp, Response::ShutDown);
                    if writeln!(writer, "{}", resp.to_json()).is_err() || writer.flush().is_err() {
                        return;
                    }
                    if shutting {
                        // The stop flag is already up (the sim thread
                        // raises it before acknowledging); free the
                        // acceptor so the whole front end can drain.
                        let _ = TcpStream::connect(shared.addr);
                        return;
                    }
                }
                line.clear();
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Answer one request line. Every path produces a response line — a
/// malformed request is an error response, never a dropped connection.
fn process(line: &str, shared: &Shared) -> Response {
    ServiceStats::bump(&shared.stats.requests);
    let resp = match Request::parse(line) {
        Ok(req) => dispatch(req, shared),
        Err(e) => e.into(),
    };
    if matches!(resp, Response::Error { .. }) {
        ServiceStats::bump(&shared.stats.errors);
    }
    resp
}

fn dispatch(req: Request, shared: &Shared) -> Response {
    match req {
        // Queries: answered from the published snapshot, no round-trip
        // into the simulation thread.
        Request::Census => {
            let snap = shared.snapshot.read().expect("snapshot lock").clone();
            Response::Census {
                t: snap.t,
                population: snap.population,
                census: snap.census,
            }
        }
        Request::Plurality => {
            let snap = shared.snapshot.read().expect("snapshot lock").clone();
            let (opinion, frac) = snap.plurality();
            Response::Plurality {
                t: snap.t,
                opinion,
                frac,
                exact: snap.output.is_some(),
            }
        }
        Request::Status => {
            let snap = shared.snapshot.read().expect("snapshot lock").clone();
            Response::Status {
                t: snap.t,
                population: snap.population,
                interactions: snap.interactions,
                consensus: snap.output.is_some(),
                output: snap.output,
                time_in_consensus: snap.time_in_consensus,
                ingested: snap.ingested,
            }
        }
        Request::Metrics => Response::Metrics(shared.stats.metrics()),
        // Mutations: one message to the simulation thread, one reply.
        Request::Ingest { opinion, count } => mutate(shared, |reply| Ctl::Ingest {
            opinion,
            count,
            reply,
        }),
        Request::Checkpoint => mutate(shared, |reply| Ctl::Checkpoint { reply }),
        Request::Step { time } => mutate(shared, |reply| Ctl::Step { time, reply }),
        Request::Shutdown => mutate(shared, |reply| Ctl::Shutdown { reply }),
    }
}

fn mutate(shared: &Shared, msg: impl FnOnce(Sender<Response>) -> Ctl) -> Response {
    let (tx, rx) = mpsc::channel();
    if shared.ctl.send(msg(tx)).is_err() {
        return Response::Error {
            error: "service is shutting down".to_string(),
        };
    }
    match rx.recv_timeout(CTL_TIMEOUT) {
        Ok(resp) => resp,
        Err(_) => Response::Error {
            error: "simulation thread did not answer in time".to_string(),
        },
    }
}
