//! `ppd` — the plurality-consensus daemon.
//!
//! Hosts a live population on the batched engine and serves the
//! newline-delimited JSON protocol on plain TCP. See
//! `crates/serve/README.md` for the wire protocol and examples.
//!
//! ```text
//! ppd [--host H] [--port P] [--protocol majority3|majority4|usd:K]
//!     [--n N] [--init C0,C1,...] [--seed S] [--churn SPEC]
//!     [--segment T] [--sample-every T] [--series-cap K]
//!     [--checkpoint FILE] [--checkpoint-secs X] [--resume FILE]
//!     [--workers W] [--threads T] [--lockstep]
//! ```
//!
//! On startup the daemon prints exactly one line to stdout —
//! `ppd listening on ADDR` — and then serves until a `shutdown`
//! request (graceful: drain, final checkpoint, exit 0) or a kill
//! (crash-safe: `--resume` restores the last checkpoint
//! byte-identically).

use std::io;
use std::path::PathBuf;
use std::process::ExitCode;

use pp_baselines::UsdTable;
use pp_engine::{ChurnSpec, TableProtocol};
use pp_majority::{FourState, ThreeState};
use pp_serve::{ServerHandle, Service, ServiceConfig};

struct Opts {
    host: String,
    port: u16,
    protocol: String,
    n: u64,
    init: Option<Vec<u64>>,
    workers: usize,
    cfg: ServiceConfig,
}

fn usage() -> &'static str {
    "usage: ppd [--host H] [--port P] [--protocol majority3|majority4|usd:K] [--n N]\n\
     \x20          [--init C0,C1,...] [--seed S] [--churn SPEC] [--segment T]\n\
     \x20          [--sample-every T] [--series-cap K] [--checkpoint FILE]\n\
     \x20          [--checkpoint-secs X] [--resume FILE] [--workers W]\n\
     \x20          [--threads T] [--lockstep]"
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        host: "127.0.0.1".to_string(),
        port: 7341,
        protocol: "majority3".to_string(),
        n: 100_000,
        init: None,
        workers: 4,
        cfg: ServiceConfig::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--host" => opts.host = value("--host")?,
            "--port" => {
                opts.port = value("--port")?
                    .parse()
                    .map_err(|_| "--port must be 0..65536".to_string())?;
            }
            "--protocol" => opts.protocol = value("--protocol")?,
            "--n" => {
                opts.n = value("--n")?
                    .parse()
                    .map_err(|_| "--n must be a positive integer".to_string())?;
            }
            "--init" => {
                let spec = value("--init")?;
                let counts: Result<Vec<u64>, _> =
                    spec.split(',').map(|c| c.trim().parse()).collect();
                opts.init =
                    Some(counts.map_err(|_| "--init must be comma-separated counts".to_string())?);
            }
            "--seed" => {
                opts.cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--churn" => {
                let spec = value("--churn")?;
                let spec = if spec.starts_with("churn:") {
                    spec
                } else {
                    format!("churn:{spec}")
                };
                opts.cfg.churn = spec.parse::<ChurnSpec>()?;
            }
            "--segment" => {
                let t: f64 = value("--segment")?
                    .parse()
                    .map_err(|_| "--segment must be a number".to_string())?;
                if !t.is_finite() || t <= 0.0 {
                    return Err("--segment must be finite and positive".to_string());
                }
                opts.cfg.segment = t;
            }
            "--sample-every" => {
                let t: f64 = value("--sample-every")?
                    .parse()
                    .map_err(|_| "--sample-every must be a number".to_string())?;
                if !t.is_finite() || t <= 0.0 {
                    return Err("--sample-every must be finite and positive".to_string());
                }
                opts.cfg.sample_every = t;
            }
            "--series-cap" => {
                opts.cfg.series_cap = value("--series-cap")?
                    .parse()
                    .map_err(|_| "--series-cap must be an integer".to_string())?;
            }
            "--checkpoint" => {
                opts.cfg.checkpoint_path = Some(PathBuf::from(value("--checkpoint")?))
            }
            "--checkpoint-secs" => {
                let x: f64 = value("--checkpoint-secs")?
                    .parse()
                    .map_err(|_| "--checkpoint-secs must be a number".to_string())?;
                if !x.is_finite() || x <= 0.0 {
                    return Err("--checkpoint-secs must be finite and positive".to_string());
                }
                opts.cfg.checkpoint_secs = Some(x);
            }
            "--resume" => opts.cfg.resume = Some(PathBuf::from(value("--resume")?)),
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--threads" => {
                // Engine worker threads (default: all cores). Pure
                // scheduling — the trajectory and every checkpoint are
                // byte-identical at any value.
                opts.cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?;
                if opts.cfg.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--lockstep" => opts.cfg.lockstep = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

/// A 2:1 split over the protocol's first two opinions (all weight on
/// the first when only one exists) — the default live population.
fn default_init<P: TableProtocol>(protocol: &P, n: u64) -> Result<Vec<u64>, String> {
    let mut init = vec![0u64; protocol.states()];
    let first = protocol
        .opinion_state(1)
        .ok_or("protocol has no opinion 1; pass --init explicitly")?;
    match protocol.opinion_state(2) {
        Some(second) => {
            init[first] = 2 * n / 3;
            init[second] = n - 2 * n / 3;
        }
        None => init[first] = n,
    }
    Ok(init)
}

fn run<P>(protocol: P, mut opts: Opts) -> io::Result<()>
where
    P: TableProtocol + Send + 'static,
{
    opts.cfg.initial = match opts.init.take() {
        Some(init) => {
            if init.len() != protocol.states() {
                return Err(io::Error::other(format!(
                    "--init has {} counts but protocol {} has {} states",
                    init.len(),
                    opts.protocol,
                    protocol.states()
                )));
            }
            init
        }
        None => default_init(&protocol, opts.n).map_err(io::Error::other)?,
    };
    if opts.cfg.resume.is_none() && opts.cfg.initial.iter().sum::<u64>() < 2 {
        return Err(io::Error::other("the population needs at least 2 agents"));
    }

    let service = Service::spawn(protocol, opts.cfg)?;
    let server = ServerHandle::bind(
        &format!("{}:{}", opts.host, opts.port),
        &service,
        opts.workers,
    )?;

    // The one line scripts scrape for the bound address (port 0 picks
    // a free one).
    println!("ppd listening on {}", server.addr());
    io::Write::flush(&mut io::stdout())?;

    server.join();
    service.join();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let result = match opts.protocol.clone() {
        p if p == "majority3" => run(ThreeState, opts),
        p if p == "majority4" => run(FourState, opts),
        p => match p.strip_prefix("usd:").and_then(|k| k.parse::<u32>().ok()) {
            Some(k) if k >= 1 => run(UsdTable::new(k as usize), opts),
            _ => {
                eprintln!("unknown --protocol {p:?} (majority3, majority4, or usd:K)");
                return ExitCode::from(2);
            }
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ppd: {e}");
            ExitCode::FAILURE
        }
    }
}
