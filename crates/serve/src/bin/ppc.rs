//! `ppc` — a one-shot line client for `ppd`.
//!
//! ```text
//! ppc ADDR [REQUEST ...]
//! ```
//!
//! Sends each `REQUEST` argument (a raw protocol line, e.g.
//! `{"cmd":"status"}`) over one connection, printing each response
//! line to stdout. With no request arguments, lines are read from
//! stdin instead — `ppc 127.0.0.1:7341 < script.ndjson`. Exits 0 when
//! every request got a response line and none was a protocol error.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn run() -> io::Result<bool> {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        return Err(io::Error::other("usage: ppc ADDR [REQUEST ...]"));
    };
    let requests: Vec<String> = args.collect();

    let stream = TcpStream::connect(&addr)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut all_ok = true;

    let mut roundtrip = |line: &str| -> io::Result<()> {
        writeln!(writer, "{line}")?;
        writer.flush()?;
        let mut resp = String::new();
        if reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::other("connection closed before a response"));
        }
        print!("{resp}");
        if resp.contains("\"ok\":false") {
            all_ok = false;
        }
        Ok(())
    };

    if requests.is_empty() {
        for line in io::stdin().lock().lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            roundtrip(&line)?;
        }
    } else {
        for line in &requests {
            roundtrip(line)?;
        }
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("ppc: {e}");
            ExitCode::from(2)
        }
    }
}
