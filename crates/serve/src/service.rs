//! The simulation half of `ppd`: one thread owns the live population.
//!
//! A [`Service`] spawns a dedicated thread holding a
//! [`SegmentRunner`] and splits the protocol's commands by what they
//! touch:
//!
//! * **Queries** (`census`, `plurality`, `status`) never reach this
//!   thread. After every segment — and after every mutation — the sim
//!   thread publishes an immutable [`Snapshot`] under an `RwLock`;
//!   worker threads answer queries straight from it. That is what lets
//!   the front end serve tens of thousands of queries per second while
//!   the engine sustains its full interaction rate: a query costs one
//!   read-lock and some formatting, never a round-trip into the
//!   simulation.
//! * **Mutations** (`ingest`, `checkpoint`, `step`, `shutdown`) are
//!   [`Ctl`] messages on an mpsc channel, each carrying a reply sender.
//!   The sim thread drains the channel between segments, applies the
//!   mutation, refreshes the snapshot, and *then* replies — so a
//!   client's `ingest` acknowledgment implies the next `census` on the
//!   same connection sees the admitted agents.
//!
//! Two pacing modes share the loop. **Free-run** (the default) advances
//! the engine continuously in parallel-time segments, draining control
//! messages at each boundary. **Lockstep** (`--lockstep`) parks the
//! engine and advances *only* on explicit `step` requests — the clock
//! belongs to the client, so the same seed and the same request trace
//! reproduce byte-identical responses (the service determinism test).
//!
//! Segment boundaries are absolute multiples of the segment length,
//! inherited from [`SegmentRunner`]: a daemon resumed from a checkpoint
//! recuts exactly the boundaries the killed daemon would have.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pp_engine::{BatchSimulation, ChurnProcess, ChurnSpec, SegmentRunner, TableProtocol};

use crate::proto::Response;
use crate::stats::ServiceStats;

/// How a [`Service`] hosts its population.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Starting configuration (per-state counts) — also the
    /// distribution churn joins draw from.
    pub initial: Vec<u64>,
    /// Engine seed (fresh starts only; resume restores the RNG).
    pub seed: u64,
    /// Steady-state churn rates (zero by default: ingest is the only
    /// population change).
    pub churn: ChurnSpec,
    /// Parallel time between series samples.
    pub sample_every: f64,
    /// Parallel time per simulation segment (the control-drain cadence).
    pub segment: f64,
    /// Retain at most this many series samples in memory.
    pub series_cap: usize,
    /// Advance only on explicit `step` requests.
    pub lockstep: bool,
    /// Where checkpoints land; `None` disables the `checkpoint` command
    /// and the timer.
    pub checkpoint_path: Option<PathBuf>,
    /// Wall-clock seconds between automatic checkpoints.
    pub checkpoint_secs: Option<f64>,
    /// Resume from this snapshot instead of a fresh start.
    pub resume: Option<PathBuf>,
    /// Worker threads inside the engine. Pure scheduling: the trajectory
    /// (and every checkpoint) is byte-identical at any value, so a
    /// resumed daemon may use a different count than the one it replaces.
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            initial: Vec::new(),
            seed: 1,
            churn: ChurnSpec {
                join: 0.0,
                leave: 0.0,
                ..ChurnSpec::default()
            },
            sample_every: 1.0,
            segment: 1.0,
            series_cap: 100_000,
            lockstep: false,
            checkpoint_path: None,
            checkpoint_secs: None,
            resume: None,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

/// An immutable view of the live population, published by the sim
/// thread after every segment and every mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Parallel time.
    pub t: f64,
    /// Total live population (including undecided agents).
    pub population: u64,
    /// Interactions simulated since this daemon started (resume resets
    /// the zero point).
    pub interactions: u64,
    /// `(opinion, headcount)` pairs, ascending by opinion.
    pub census: Vec<(u32, u64)>,
    /// The converged output if the exact predicate currently fires.
    pub output: Option<u32>,
    /// Fraction of sampled marks spent in exact consensus (NaN before
    /// the first sample).
    pub time_in_consensus: f64,
    /// Agents admitted via `ingest` since this daemon started.
    pub ingested: u64,
}

impl Snapshot {
    /// The plurality reading this snapshot supports: the most-supported
    /// opinion (smallest wins ties), its support fraction, and whether
    /// the exact predicate fires.
    pub fn plurality(&self) -> (Option<u32>, f64) {
        let best = self
            .census
            .iter()
            .filter(|&&(_, c)| c > 0)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        match best {
            Some(&(op, count)) => (Some(op), count as f64 / self.population as f64),
            None => (None, 0.0),
        }
    }
}

/// A mutation bound for the sim thread, carrying its reply sender.
#[derive(Debug)]
pub enum Ctl {
    /// Admit agents advocating an opinion.
    Ingest {
        /// The opinion; validated against the protocol's opinion set.
        opinion: u32,
        /// How many agents join.
        count: u64,
        /// Where the response goes.
        reply: Sender<Response>,
    },
    /// Write a checkpoint now.
    Checkpoint {
        /// Where the response goes.
        reply: Sender<Response>,
    },
    /// Advance the clock (lockstep's explicit step; allowed in free-run
    /// too, where it just runs extra time).
    Step {
        /// Parallel time to advance by.
        time: f64,
        /// Where the response goes.
        reply: Sender<Response>,
    },
    /// Final checkpoint, then stop the loop.
    Shutdown {
        /// Where the response goes.
        reply: Sender<Response>,
    },
}

/// Handle to a running simulation thread.
#[derive(Debug)]
pub struct Service {
    stats: Arc<ServiceStats>,
    snapshot: Arc<RwLock<Snapshot>>,
    ctl: Sender<Ctl>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Service {
    /// Start the simulation thread: fresh population from
    /// `cfg.initial`, or restored from `cfg.resume`.
    ///
    /// # Errors
    ///
    /// I/O and `InvalidData` errors from reading the resume snapshot.
    pub fn spawn<P>(protocol: P, cfg: ServiceConfig) -> io::Result<Service>
    where
        P: TableProtocol + Send + 'static,
    {
        let churn = ChurnProcess::new(cfg.churn).with_sample_every(cfg.sample_every);
        let mut runner = match &cfg.resume {
            Some(path) => SegmentRunner::resume(path, protocol, churn)?,
            None => SegmentRunner::new(
                BatchSimulation::new(protocol, cfg.initial.clone(), cfg.seed),
                churn,
                cfg.initial.clone(),
            ),
        };
        runner.set_threads(cfg.threads);

        let stats = Arc::new(ServiceStats::new());
        stats.threads.store(cfg.threads as u64, Ordering::Relaxed);
        let stop = Arc::new(AtomicBool::new(false));
        let (ctl_tx, ctl_rx) = mpsc::channel();

        let mut core = SimCore {
            interactions_base: runner.sim().interactions(),
            marks: runner.series().len() as u64,
            marks_in: runner
                .series()
                .iter()
                .filter(|s| s.output.is_some())
                .count() as u64,
            seen: runner.series().len(),
            runner,
            cfg,
            stats: Arc::clone(&stats),
            stop: Arc::clone(&stop),
            last_checkpoint: Instant::now(),
        };
        // Queries must have something to read before the first segment.
        let snapshot = Arc::new(RwLock::new(core.snapshot()));
        let published = Arc::clone(&snapshot);
        let join = std::thread::Builder::new()
            .name("ppd-sim".to_string())
            .spawn(move || core.run(ctl_rx, &published))
            .map_err(io::Error::other)?;

        Ok(Service {
            stats,
            snapshot,
            ctl: ctl_tx,
            stop,
            join: Some(join),
        })
    }

    /// The shared counters.
    pub fn stats(&self) -> Arc<ServiceStats> {
        Arc::clone(&self.stats)
    }

    /// The published population view.
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot.read().expect("snapshot lock").clone()
    }

    /// The shared snapshot cell (for the server's workers).
    pub fn snapshot_cell(&self) -> Arc<RwLock<Snapshot>> {
        Arc::clone(&self.snapshot)
    }

    /// A control sender for dispatching mutations.
    pub fn ctl(&self) -> Sender<Ctl> {
        self.ctl.clone()
    }

    /// The stop flag, raised by `shutdown`.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Wait for the simulation thread to exit (after `shutdown`).
    pub fn join(mut self) {
        // Drop our control sender first: a lockstep loop with no other
        // senders left then observes the disconnect and exits.
        let (dummy, _) = mpsc::channel();
        drop(std::mem::replace(&mut self.ctl, dummy));
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

/// The sim thread's owned state.
struct SimCore<P: TableProtocol> {
    runner: SegmentRunner<P>,
    cfg: ServiceConfig,
    stats: Arc<ServiceStats>,
    stop: Arc<AtomicBool>,
    /// Interactions at spawn — metrics report the delta.
    interactions_base: u64,
    /// Series marks seen so far (for time-in-consensus).
    marks: u64,
    /// Marks with the exact predicate firing.
    marks_in: u64,
    /// Index into the retained series of the first unprocessed sample.
    seen: usize,
    last_checkpoint: Instant,
}

impl<P: TableProtocol> SimCore<P> {
    fn run(&mut self, ctl: Receiver<Ctl>, snapshot: &RwLock<Snapshot>) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if self.cfg.lockstep {
                // Parked: the clock only moves on `step`. Wake
                // periodically for the checkpoint timer.
                match ctl.recv_timeout(Duration::from_millis(100)) {
                    Ok(msg) => {
                        if !self.handle(msg, snapshot) {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            } else {
                // Free-run: drain pending mutations, then advance one
                // segment.
                let mut done = false;
                while let Ok(msg) = ctl.try_recv() {
                    if !self.handle(msg, snapshot) {
                        done = true;
                        break;
                    }
                }
                if done {
                    break;
                }
                let clock = self.runner.parallel_time();
                let stop_at = ((clock / self.cfg.segment).floor() + 1.0) * self.cfg.segment;
                self.runner.advance_to(stop_at);
                self.after_segment(snapshot);
            }
            self.maybe_timer_checkpoint();
        }
    }

    /// Returns `false` when the loop should stop (shutdown).
    fn handle(&mut self, msg: Ctl, snapshot: &RwLock<Snapshot>) -> bool {
        match msg {
            Ctl::Ingest {
                opinion,
                count,
                reply,
            } => {
                let resp = match self.runner.sim().protocol().opinion_state(opinion) {
                    Some(state) => {
                        self.runner.sim_mut().admit(state, count);
                        ServiceStats::bump(&self.stats.ingest_requests);
                        ServiceStats::add(&self.stats.ingested_agents, count);
                        self.publish(snapshot);
                        Response::Ingested {
                            opinion,
                            count,
                            population: self.runner.sim().counts().iter().sum(),
                        }
                    }
                    None => Response::Error {
                        error: format!("opinion {opinion} is not in this protocol's opinion set"),
                    },
                };
                let _ = reply.send(resp);
                true
            }
            Ctl::Checkpoint { reply } => {
                let resp = self.write_checkpoint();
                let _ = reply.send(resp);
                true
            }
            Ctl::Step { time, reply } => {
                let stop_at = self.runner.parallel_time() + time;
                self.runner.advance_to(stop_at);
                self.after_segment(snapshot);
                let _ = reply.send(Response::Stepped {
                    t: self.runner.parallel_time(),
                });
                true
            }
            Ctl::Shutdown { reply } => {
                if self.cfg.checkpoint_path.is_some() {
                    self.write_checkpoint();
                }
                self.publish(snapshot);
                // Raise the flag before acknowledging: when the client
                // sees the response, the server is already draining.
                self.stop.store(true, Ordering::SeqCst);
                let _ = reply.send(Response::ShutDown);
                false
            }
        }
    }

    /// Fold a finished segment into counters and the published view.
    fn after_segment(&mut self, snapshot: &RwLock<Snapshot>) {
        ServiceStats::bump(&self.stats.segments);
        self.stats.interactions.store(
            self.runner.sim().interactions() - self.interactions_base,
            Ordering::Relaxed,
        );
        self.stats
            .batches
            .store(self.runner.sim().batches(), Ordering::Relaxed);
        let series = self.runner.series();
        for s in &series[self.seen..] {
            self.marks += 1;
            if s.output.is_some() {
                self.marks_in += 1;
            }
        }
        self.seen = series.len();
        self.seen -= self.runner.trim_series(self.cfg.series_cap);
        self.publish(snapshot);
    }

    fn maybe_timer_checkpoint(&mut self) {
        let Some(secs) = self.cfg.checkpoint_secs else {
            return;
        };
        if self.cfg.checkpoint_path.is_some()
            && self.last_checkpoint.elapsed().as_secs_f64() >= secs
        {
            self.write_checkpoint();
        }
    }

    /// Write the configured checkpoint atomically, recording latency.
    fn write_checkpoint(&mut self) -> Response {
        let Some(path) = self.cfg.checkpoint_path.clone() else {
            return Response::Error {
                error: "no checkpoint path configured (start ppd with --checkpoint)".to_string(),
            };
        };
        let started = Instant::now();
        let resp = match self.runner.checkpoint().write(&path) {
            Ok(()) => {
                ServiceStats::bump(&self.stats.checkpoints);
                ServiceStats::add(
                    &self.stats.checkpoint_ns,
                    started.elapsed().as_nanos() as u64,
                );
                Response::Checkpointed {
                    path: path.display().to_string(),
                    t: self.runner.parallel_time(),
                }
            }
            Err(e) => Response::Error {
                error: format!("checkpoint write failed: {e}"),
            },
        };
        self.last_checkpoint = Instant::now();
        resp
    }

    fn publish(&self, snapshot: &RwLock<Snapshot>) {
        let snap = self.snapshot();
        *snapshot.write().expect("snapshot lock") = snap;
    }

    /// Build the current population view.
    fn snapshot(&self) -> Snapshot {
        let sim = self.runner.sim();
        let counts = sim.counts();
        let mut census: Vec<(u32, u64)> = Vec::new();
        for (state, &count) in counts.iter().enumerate() {
            if let Some(op) = sim.protocol().opinion(state) {
                match census.binary_search_by_key(&op, |&(o, _)| o) {
                    Ok(i) => census[i].1 += count,
                    Err(i) => census.insert(i, (op, count)),
                }
            }
        }
        Snapshot {
            t: sim.parallel_time(),
            population: counts.iter().sum(),
            interactions: sim.interactions() - self.interactions_base,
            census,
            output: sim.protocol().output(counts),
            time_in_consensus: if self.marks == 0 {
                f64::NAN
            } else {
                self.marks_in as f64 / self.marks as f64
            },
            ingested: self.stats.ingested_agents.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_majority::ThreeState;

    fn config(n: u64) -> ServiceConfig {
        let a = 2 * n / 3;
        ServiceConfig {
            initial: vec![0, a, n - a],
            seed: 42,
            lockstep: true,
            ..ServiceConfig::default()
        }
    }

    fn send(svc: &Service, msg: impl FnOnce(Sender<Response>) -> Ctl) -> Response {
        let (tx, rx) = mpsc::channel();
        svc.ctl().send(msg(tx)).expect("sim thread alive");
        rx.recv_timeout(Duration::from_secs(10)).expect("reply")
    }

    #[test]
    fn lockstep_service_steps_ingests_and_shuts_down() {
        let svc = Service::spawn(ThreeState, config(3_000)).expect("spawn");
        let s0 = svc.snapshot();
        assert_eq!(s0.population, 3_000);
        assert_eq!(s0.t, 0.0);
        assert_eq!(s0.census, vec![(1, 2_000), (2, 1_000)]);

        let r = send(&svc, |reply| Ctl::Step { time: 5.0, reply });
        let Response::Stepped { t } = r else {
            panic!("want stepped, got {r:?}")
        };
        assert!(t >= 5.0);
        assert!(svc.snapshot().interactions > 0);

        let r = send(&svc, |reply| Ctl::Ingest {
            opinion: 2,
            count: 500,
            reply,
        });
        assert_eq!(
            r,
            Response::Ingested {
                opinion: 2,
                count: 500,
                population: 3_500
            }
        );
        let snap = svc.snapshot();
        assert_eq!(snap.population, 3_500);
        assert_eq!(snap.ingested, 500);

        let r = send(&svc, |reply| Ctl::Ingest {
            opinion: 9,
            count: 1,
            reply,
        });
        assert!(matches!(r, Response::Error { .. }), "bad opinion: {r:?}");

        let r = send(&svc, |reply| Ctl::Shutdown { reply });
        assert_eq!(r, Response::ShutDown);
        assert!(svc.stop_flag().load(Ordering::SeqCst));
        svc.join();
    }

    #[test]
    fn same_seed_same_trace_gives_identical_snapshots() {
        let run = || {
            let svc = Service::spawn(ThreeState, config(2_000)).expect("spawn");
            send(&svc, |reply| Ctl::Step { time: 3.0, reply });
            send(&svc, |reply| Ctl::Ingest {
                opinion: 1,
                count: 123,
                reply,
            });
            send(&svc, |reply| Ctl::Step { time: 4.0, reply });
            let snap = svc.snapshot();
            send(&svc, |reply| Ctl::Shutdown { reply });
            svc.join();
            snap
        };
        let (a, b) = (run(), run());
        assert_eq!(a.t.to_bits(), b.t.to_bits());
        assert_eq!(a.census, b.census);
        assert_eq!(a.interactions, b.interactions);
    }

    #[test]
    fn checkpoint_without_a_path_is_a_typed_error() {
        let svc = Service::spawn(ThreeState, config(1_000)).expect("spawn");
        let r = send(&svc, |reply| Ctl::Checkpoint { reply });
        assert!(matches!(r, Response::Error { .. }), "{r:?}");
        send(&svc, |reply| Ctl::Shutdown { reply });
        svc.join();
    }

    #[test]
    fn checkpoint_round_trips_through_the_service() {
        let dir = std::env::temp_dir().join(format!("ppd-svc-{}", std::process::id()));
        let path = dir.join("live.ckpt");
        let mut cfg = config(2_000);
        cfg.checkpoint_path = Some(path.clone());
        let svc = Service::spawn(ThreeState, cfg.clone()).expect("spawn");
        send(&svc, |reply| Ctl::Step { time: 6.0, reply });
        let r = send(&svc, |reply| Ctl::Checkpoint { reply });
        let Response::Checkpointed { t, .. } = r else {
            panic!("want checkpointed, got {r:?}")
        };
        let snap = svc.snapshot();
        send(&svc, |reply| Ctl::Shutdown { reply });
        svc.join();

        // A resumed service starts exactly where the checkpoint was cut.
        let mut cfg2 = cfg;
        cfg2.resume = Some(path);
        let svc2 = Service::spawn(ThreeState, cfg2).expect("resume");
        let snap2 = svc2.snapshot();
        assert_eq!(snap2.t.to_bits(), t.to_bits());
        assert_eq!(snap2.census, snap.census);
        send(&svc2, |reply| Ctl::Shutdown { reply });
        svc2.join();
        let _ = std::fs::remove_dir_all(dir);
    }
}
