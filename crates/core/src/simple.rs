//! `SimpleAlgorithm` — the paper's first protocol (Theorem 1(1)).
//!
//! Opinions are numbered `1..=k`. After an initialization phase that
//! collects tokens and splits the population into collector / clock /
//! tracker / player roles, `k − 1` tournaments run back to back: in
//! tournament `i` the current defender (w.h.p. the plurality among opinions
//! `1..=i`) meets challenger `i + 1` in an exact two-opinion match. The
//! final defender is broadcast to everyone. W.h.p. correct for any bias
//! ≥ 1 in `O(k·log n)` parallel time with `O(k + log n)` states.

use pp_engine::{Protocol, Replacement, SimRng};
use pp_workloads::OpinionAssignment;

use crate::config::Tuning;
use crate::roles::{Agent, Role};
use crate::tournament::{Machine, Milestones, Mode};

/// The ordered plurality-consensus protocol.
#[derive(Debug, Clone)]
pub struct SimpleAlgorithm {
    machine: Machine,
}

impl SimpleAlgorithm {
    /// Build the protocol and its initial configuration for an opinion
    /// assignment.
    ///
    /// The paper's Theorem 1 assumes `k ≤ n/40`; the protocol itself runs
    /// (with weaker guarantees, cf. Appendix C) for any `k < n`, so we only
    /// require room for the role split.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2k` or `n < 40`.
    pub fn new(assignment: &OpinionAssignment, tuning: Tuning) -> (Self, Vec<Agent>) {
        let n = assignment.n();
        let k = assignment.k() as u16;
        assert!(n >= 40, "population too small to split into roles");
        assert!(n >= 2 * usize::from(k), "need n >= 2k");
        let machine = Machine::new(Mode::Ordered, false, n, k, tuning);
        let phase = machine.initial_phase();
        let states = assignment
            .opinions()
            .iter()
            .map(|&op| {
                let mut agent = Agent::collector(op, phase, true);
                // Lemma 3(3): opinion 1 starts as the first defender. The
                // paper sets the bit at each agent's first interaction; we
                // set it at time 0 (outcome-equivalent, DESIGN.md §3.5).
                if op == 1 {
                    if let Role::Collector(c) = &mut agent.role {
                        c.defender = true;
                    }
                }
                agent
            })
            .collect();
        (Self { machine }, states)
    }

    /// Recorded milestones (init end, first winner, …).
    pub fn milestones(&self) -> &Milestones {
        &self.machine.milestones
    }

    /// The underlying machine (schedule, majority config, …).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl Protocol for SimpleAlgorithm {
    type State = Agent;

    fn interact(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        self.machine.interact(t, a, b, rng);
    }

    fn converged(&self, states: &[Agent]) -> Option<u32> {
        self.machine.converged(states)
    }

    fn encode(&self, state: &Agent) -> u64 {
        self.machine.encode(state)
    }

    fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<Agent> {
        self.machine.fault_state(replacement, rng)
    }

    fn opinion_of(&self, state: &Agent) -> Option<u32> {
        state.as_collector().map(|c| u32::from(c.opinion))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};
    use pp_workloads::Counts;

    fn run(counts: Counts, seed: u64, budget: f64) -> (pp_engine::RunResult, u32) {
        let assignment = counts.assignment();
        let expected = assignment.plurality();
        let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            budget,
        ));
        (r, expected)
    }

    #[test]
    fn two_opinions_bias_one() {
        // Odd n so a true bias of 1 is feasible with k = 2.
        let (r, expected) = run(Counts::bias_one(601, 2), 11, 100_000.0);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(expected));
    }

    #[test]
    fn four_opinions_bias_one() {
        let (r, expected) = run(Counts::bias_one(800, 4), 5, 300_000.0);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(expected));
    }

    #[test]
    fn plurality_not_first_opinion() {
        // Opinion 3 dominates: the defender bit must migrate through the
        // tournaments.
        let counts = Counts::from_supports(vec![100, 100, 260, 140]);
        let (r, expected) = run(counts, 9, 300_000.0);
        assert_eq!(expected, 3);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(3));
    }

    #[test]
    fn single_opinion_trivially_wins() {
        let (r, expected) = run(Counts::from_supports(vec![500]), 3, 100_000.0);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(expected));
    }

    #[test]
    fn skimpy_tuning_fails_gracefully() {
        // Deliberately under-provisioned constants: the run may finish with
        // the wrong opinion or exhaust its budget, but it must not panic.
        let counts = Counts::bias_one(400, 3);
        let assignment = counts.assignment();
        let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::skimpy());
        let mut sim = Simulation::new(proto, states, 1);
        let _ = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            20_000.0,
        ));
    }

    #[test]
    fn milestones_are_recorded() {
        let counts = Counts::bias_one(601, 2);
        let assignment = counts.assignment();
        let (proto, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, 2);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            100_000.0,
        ));
        assert_eq!(r.status, RunStatus::Converged);
        let ms = sim.protocol().milestones();
        let init_end = ms.init_end.expect("init end recorded");
        let first_winner = ms.first_winner.expect("winner recorded");
        assert!(init_end < first_winner);
    }
}
