//! Tuning constants.
//!
//! The paper's analysis fixes constants only up to "sufficiently large"
//! (`5·log n` init counting, phase lengths `Θ(log n)`, the pruning constant
//! `c`, …). This module gathers every such constant in one place, states
//! which lemma each serves, and exposes them for the ablation experiment
//! (X14) that sweeps them to locate the failure-rate knee.

/// All tunable constants of the three protocols.
///
/// Thresholds scale as `⌈factor · ln n⌉` unless noted. Defaults are
/// calibrated for populations between roughly 10³ and 10⁶ agents (see
/// `EXPERIMENTS.md`); every default is validated by the exactness
/// experiment X3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// Algorithm 1 line 3: a clock agent ends the initialization phase when
    /// its counter reaches `⌈init_count_factor · ln n⌉` (the paper's
    /// `5·log n`, Lemma 3).
    pub init_count_factor: f64,
    /// Appendix C: the init counter decreases by `1/init_decrement_period`
    /// per collector meeting (implemented as one decrement every c-th such
    /// meeting). `1` is the base Algorithm 1; larger values let a clock
    /// agent finish the initialization even when collectors stay a large
    /// constant fraction of the population, extending `SimpleAlgorithm` to
    /// `k ≤ (1 − ε)·n`.
    pub init_decrement_period: u8,
    /// Counter units (× ln n) per tournament phase 0..9 (even = work,
    /// odd = buffer). The paper uses a uniform `Θ(log n)`; per-phase factors
    /// are a constants-only generalisation (DESIGN.md §3.3). Phase 6 (the
    /// match) carries the largest constant because the cancel/split majority
    /// runs inside it.
    pub phase_factors: [f64; 10],
    /// Cancel/split schedule window (own interactions per level) of the
    /// match majority.
    pub match_window: u32,
    /// Extra windows of dwell at the deepest level before declaring.
    pub match_tail_windows: u32,
    /// Algorithm 3 line 4: collectors merge while their combined tokens fit
    /// this cap (the paper's 10).
    pub merge_cap: u8,
    /// Algorithm 5: `phase` starts at `−improved_init_hours` (the paper's
    /// constant `c > 3·c₂/c₁`, Lemma 10).
    pub improved_init_hours: u8,
    /// Hour length `m` of the per-opinion junta clocks (Algorithm 5).
    pub junta_hour_len: u32,
    /// Lower bound on the junta level cap for the per-opinion clocks. The
    /// paper's `⌊log₂log₂ n⌋ − 2` degenerates to 1 at simulation scales,
    /// which makes the junta half the subpopulation and the clock frontier
    /// outrun its own propagation (stragglers of *significant* opinions
    /// would be pruned). A floor of 3 restores the small-junta regime the
    /// analysis assumes; the asymptotic formula takes over for
    /// n ≳ 2^(2^5).
    pub junta_min_level: u8,
    /// Hour length `m` of the tracker lottery's junta clock (Appendix B).
    pub le_hour_len: u32,
    /// Leader patience `⌈leader_wait_factor · ln n⌉` (own interactions):
    /// how long the leader waits for the defender token to spread before
    /// releasing the clocks, and how long it samples without seeing a
    /// challenger candidate before declaring the tournaments finished
    /// (Appendix B).
    pub leader_wait_factor: f64,
}

impl Default for Tuning {
    fn default() -> Self {
        Self {
            init_count_factor: 5.0,
            init_decrement_period: 1,
            phase_factors: [7.0, 2.0, 5.0, 2.0, 5.0, 2.0, 24.0, 2.0, 4.0, 2.0],
            match_window: 10,
            match_tail_windows: 4,
            merge_cap: 10,
            improved_init_hours: 6,
            junta_hour_len: 8,
            junta_min_level: 3,
            le_hour_len: 8,
            leader_wait_factor: 16.0,
        }
    }
}

impl Tuning {
    /// A deliberately under-provisioned tuning (short phases, small match
    /// window) used by failure-injection tests and the X14 ablation: the
    /// protocols must *fail gracefully* (wrong output or timeout, never a
    /// panic or a livelock beyond the budget) when constants are too small.
    pub fn skimpy() -> Self {
        Self {
            init_count_factor: 2.0,
            init_decrement_period: 1,
            phase_factors: [1.5, 0.5, 1.0, 0.5, 1.0, 0.5, 2.0, 0.5, 1.0, 0.5],
            match_window: 2,
            match_tail_windows: 0,
            merge_cap: 10,
            improved_init_hours: 2,
            junta_hour_len: 2,
            junta_min_level: 1,
            le_hour_len: 2,
            leader_wait_factor: 2.0,
        }
    }

    /// Scale every phase length and patience constant by `f` (ablation
    /// X14 sweeps `f` to find the reliability knee).
    pub fn scaled(mut self, f: f64) -> Self {
        for p in &mut self.phase_factors {
            *p *= f;
        }
        self.leader_wait_factor *= f;
        self
    }

    /// The Appendix C configuration for large `k`: slow the init-counter
    /// decrement so the initialization ends even when a large constant
    /// fraction of the population must stay collectors, and raise the merge
    /// cap (the paper's `c′` replacing 10) so collectors compress harder
    /// and free correspondingly more worker agents — the two changes are a
    /// package: a faster-finishing clock without stronger compression ends
    /// the init before enough workers exist.
    pub fn large_k() -> Self {
        Self {
            init_decrement_period: 6,
            merge_cap: 30,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_phase_factors_are_positive() {
        let t = Tuning::default();
        assert!(t.phase_factors.iter().all(|&f| f > 0.0));
        assert!(t.match_window >= 1);
        assert!(
            t.merge_cap >= 2,
            "merging needs room for at least two tokens"
        );
    }

    #[test]
    fn scaling_scales_phases() {
        let t = Tuning::default().scaled(2.0);
        let d = Tuning::default();
        for (a, b) in t.phase_factors.iter().zip(d.phase_factors.iter()) {
            assert!((a - 2.0 * b).abs() < 1e-12);
        }
        assert!((t.leader_wait_factor - 2.0 * d.leader_wait_factor).abs() < 1e-12);
    }
}
