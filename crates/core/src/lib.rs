//! The paper's plurality-consensus protocols.
//!
//! This crate implements the three protocols of *Population Protocols for
//! Exact Plurality Consensus* (PODC 2022):
//!
//! * [`simple`] — `SimpleAlgorithm` (Theorem 1(1)): `k − 1` tournaments over
//!   *ordered* opinions, `O(k·log n)` time, `O(k + log n)` states.
//! * [`unordered`] — the Appendix B variant (Theorem 1(2)): a leader elected
//!   among the trackers samples each tournament's challenger, removing the
//!   order assumption at the cost of `O(log² n)` additional time.
//! * [`improved`] — `ImprovedAlgorithm` (Theorem 2): per-opinion junta-driven
//!   phase clocks prune insignificant opinions before the tournaments,
//!   reducing their number from `k − 1` to `O(n/x_max)`.
//!
//! All three share the role machinery in [`roles`], the tournament phase
//! logic in [`tournament`] and the tuning constants in [`config`].

pub mod config;
pub mod improved;
pub mod roles;
pub mod simple;
pub mod tournament;
pub mod unordered;

pub use config::Tuning;
pub use improved::ImprovedAlgorithm;
pub use simple::SimpleAlgorithm;
pub use unordered::UnorderedAlgorithm;
