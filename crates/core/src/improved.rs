//! `ImprovedAlgorithm` — the paper's main contribution (Theorem 2).
//!
//! Before any tournament starts, every opinion's subpopulation runs its own
//! junta-driven phase clock on *meaningful* (same-opinion) interactions
//! (Algorithm 5). An opinion of support `x_j` completes a clock hour every
//! `Θ((n²/x_j)·log n)` interactions, so the plurality's clock reaches hour
//! `c` first; the resulting phase-0 broadcast prunes every agent whose
//! clock never ticked — w.h.p. exactly the insignificant opinions
//! (`x_j ≤ x_max/c_s`) — by re-rolling them into clocks, trackers and
//! players with their tokens discarded. The surviving `O(n/x_max)` opinions
//! then run the unordered tournament machinery, for a total of
//! `O(n/x_max·log n + log² n)` parallel time with
//! `O(k·loglog n + log n)` states (for `x_max > n^(1/2+ε)`).

use pp_engine::{Protocol, Replacement, SimRng};
use pp_workloads::OpinionAssignment;

use crate::config::Tuning;
use crate::roles::Agent;
use crate::tournament::{Machine, Milestones, Mode};

/// The pruning plurality-consensus protocol.
#[derive(Debug, Clone)]
pub struct ImprovedAlgorithm {
    machine: Machine,
}

impl ImprovedAlgorithm {
    /// Build the protocol and its initial configuration.
    ///
    /// Theorem 2 assumes `x_max > n^(1/2+ε)`; the protocol runs on any
    /// input (correctness degrades gracefully towards the unordered
    /// variant when the assumption is violated, because then *every* clock
    /// is slow and pruning may remove nothing or too much — measured in
    /// experiment X9).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2k` or `n < 40`.
    pub fn new(assignment: &OpinionAssignment, tuning: Tuning) -> (Self, Vec<Agent>) {
        let n = assignment.n();
        let k = assignment.k() as u16;
        assert!(n >= 40, "population too small to split into roles");
        assert!(n >= 2 * usize::from(k), "need n >= 2k");
        let machine = Machine::new(Mode::Unordered, true, n, k, tuning);
        let phase = machine.initial_phase();
        let states = assignment
            .opinions()
            .iter()
            .map(|&op| Agent::collector(op, phase, false))
            .collect();
        (Self { machine }, states)
    }

    /// Recorded milestones.
    pub fn milestones(&self) -> &Milestones {
        &self.machine.milestones
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl Protocol for ImprovedAlgorithm {
    type State = Agent;

    fn interact(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        self.machine.interact(t, a, b, rng);
    }

    fn converged(&self, states: &[Agent]) -> Option<u32> {
        self.machine.converged(states)
    }

    fn encode(&self, state: &Agent) -> u64 {
        self.machine.encode(state)
    }

    fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<Agent> {
        self.machine.fault_state(replacement, rng)
    }

    fn opinion_of(&self, state: &Agent) -> Option<u32> {
        state.as_collector().map(|c| u32::from(c.opinion))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::Role;
    use pp_engine::{RunOptions, RunStatus, Simulation};
    use pp_workloads::Counts;

    fn run(counts: Counts, seed: u64, budget: f64) -> (pp_engine::RunResult, u32) {
        let assignment = counts.assignment();
        let expected = assignment.plurality();
        let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            budget,
        ));
        (r, expected)
    }

    #[test]
    fn dominant_plurality_with_many_small_opinions() {
        // x_max = 400 ≈ n^0.87, 8 tiny opinions: the Theorem 2 regime.
        let counts = Counts::one_large(1000, 9, 400);
        let (r, expected) = run(counts, 3, 400_000.0);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(expected));
    }

    #[test]
    fn two_large_one_small() {
        let counts = Counts::from_supports(vec![320, 300, 30]);
        let (r, expected) = run(counts, 13, 400_000.0);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(expected));
    }

    #[test]
    fn pruning_removes_insignificant_collectors() {
        // Stop at the end of the pruning init and inspect the roles.
        let counts = Counts::one_large(2000, 11, 800);
        let assignment = counts.assignment();
        let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, 7);
        // Run until every agent reached phase 0 (observed via sampling).
        let mut all_started = false;
        let r = sim.run_observed(
            &RunOptions::with_parallel_time_budget(assignment.n(), 400_000.0),
            |_, states| {
                if !all_started {
                    all_started = states.iter().all(|s| s.phase >= 0);
                }
            },
        );
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(assignment.plurality()));
    }

    #[test]
    fn tokens_of_plurality_survive_the_init() {
        // Lemma 10(2): run only the init (huge budget, observe), then count
        // plurality tokens among collectors the moment all agents reached
        // phase 0.
        let counts = Counts::one_large(2000, 11, 800);
        let assignment = counts.assignment();
        let x_max = assignment.x_max();
        let (proto, states) = ImprovedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, 19);
        let mut plurality_tokens_at_start: Option<usize> = None;
        let _ = sim.run_observed(
            &RunOptions::with_parallel_time_budget(assignment.n(), 400_000.0),
            |_, states| {
                if plurality_tokens_at_start.is_none() && states.iter().all(|s| s.phase >= 0) {
                    let tokens: usize = states
                        .iter()
                        .filter_map(|s| match &s.role {
                            Role::Collector(c) if c.opinion == 1 => Some(usize::from(c.tokens)),
                            _ => None,
                        })
                        .sum();
                    plurality_tokens_at_start = Some(tokens);
                }
            },
        );
        assert_eq!(
            plurality_tokens_at_start.expect("init completed"),
            x_max,
            "plurality tokens must be conserved through the pruning init"
        );
    }
}
