//! The unordered variant of `SimpleAlgorithm` (Theorem 1(2), Appendix B).
//!
//! No numbering of opinions is assumed. The trackers elect a unique leader
//! (w.h.p.) via the junta-clock coin lottery; the leader samples the initial
//! defender, releases the tournament clock, samples one fresh challenger
//! per tournament (amplified through the trackers' opinion slots) and
//! declares the tournaments finished when no candidate opinion remains.
//! Cost of removing the order: an additive `O(log² n)` for the leader
//! election, i.e. `O(k·log n + log² n)` parallel time with `O(k + log n)`
//! states.

use pp_engine::{Protocol, Replacement, SimRng};
use pp_workloads::OpinionAssignment;

use crate::config::Tuning;
use crate::roles::Agent;
use crate::tournament::{Machine, Milestones, Mode};

/// The unordered plurality-consensus protocol.
#[derive(Debug, Clone)]
pub struct UnorderedAlgorithm {
    machine: Machine,
}

impl UnorderedAlgorithm {
    /// Build the protocol and its initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2k` or `n < 40`.
    pub fn new(assignment: &OpinionAssignment, tuning: Tuning) -> (Self, Vec<Agent>) {
        let n = assignment.n();
        let k = assignment.k() as u16;
        assert!(n >= 40, "population too small to split into roles");
        assert!(n >= 2 * usize::from(k), "need n >= 2k");
        let machine = Machine::new(Mode::Unordered, false, n, k, tuning);
        let phase = machine.initial_phase();
        let states = assignment
            .opinions()
            .iter()
            .map(|&op| Agent::collector(op, phase, false))
            .collect();
        (Self { machine }, states)
    }

    /// Recorded milestones (init end, leader done, fin, first winner).
    pub fn milestones(&self) -> &Milestones {
        &self.machine.milestones
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl Protocol for UnorderedAlgorithm {
    type State = Agent;

    fn interact(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        self.machine.interact(t, a, b, rng);
    }

    fn converged(&self, states: &[Agent]) -> Option<u32> {
        self.machine.converged(states)
    }

    fn encode(&self, state: &Agent) -> u64 {
        self.machine.encode(state)
    }

    fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<Agent> {
        self.machine.fault_state(replacement, rng)
    }

    fn opinion_of(&self, state: &Agent) -> Option<u32> {
        state.as_collector().map(|c| u32::from(c.opinion))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};
    use pp_workloads::Counts;

    fn run(counts: Counts, seed: u64, budget: f64) -> (pp_engine::RunResult, u32) {
        let assignment = counts.assignment();
        let expected = assignment.plurality();
        let (proto, states) = UnorderedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, seed);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            budget,
        ));
        (r, expected)
    }

    #[test]
    fn two_opinions_bias_one() {
        // Odd n so a true bias of 1 is feasible with k = 2.
        let (r, expected) = run(Counts::bias_one(601, 2), 21, 400_000.0);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(expected));
    }

    #[test]
    fn three_opinions_plurality_in_the_middle() {
        let counts = Counts::from_supports(vec![150, 301, 149]);
        let (r, expected) = run(counts, 8, 400_000.0);
        assert_eq!(expected, 2);
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(2));
    }

    #[test]
    fn milestones_order_is_sane() {
        let counts = Counts::bias_one(600, 3);
        let assignment = counts.assignment();
        let (proto, states) = UnorderedAlgorithm::new(&assignment, Tuning::default());
        let mut sim = Simulation::new(proto, states, 4);
        let r = sim.run(&RunOptions::with_parallel_time_budget(
            assignment.n(),
            500_000.0,
        ));
        assert_eq!(r.status, RunStatus::Converged);
        let ms = sim.protocol().milestones();
        let init_end = ms.init_end.expect("init end");
        let le_done = ms.le_done.expect("leader + defender selection");
        let fin = ms.fin.expect("finish declaration");
        assert!(init_end < le_done, "leader election follows init");
        assert!(le_done < fin, "tournaments follow the leader release");
    }
}
