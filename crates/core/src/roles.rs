//! Agent states: the four roles of §3 plus the shared broadcast flags.

use pp_clocks::JuntaState;
use pp_leader::LotteryState;
use pp_majority::{MajState, Verdict};

/// A collector agent: holds an opinion's tokens and the tournament bits
/// (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Collector {
    /// Opinion (1-based).
    pub opinion: u16,
    /// Tokens held (1..=merge_cap; 0 transiently in the improved init).
    pub tokens: u8,
    /// This opinion defends the current tournament.
    pub defender: bool,
    /// This opinion challenges the current tournament.
    pub challenger: bool,
    /// Final-broadcast bit (§3.4).
    pub winner: bool,
    /// Unordered modes: this opinion has already been defender/challenger.
    pub played: bool,
    /// Load-balancing value `ℓ ∈ [−merge_cap, merge_cap]`.
    pub ell: i8,
    /// Improved init: junta race within the opinion's subpopulation.
    pub junta: JuntaState,
    /// Improved init: per-opinion junta-clock counter.
    pub jc: u64,
}

impl Collector {
    /// A fresh collector holding one token of `opinion`.
    pub fn new(opinion: u16) -> Self {
        Self {
            opinion,
            tokens: 1,
            defender: false,
            challenger: false,
            winner: false,
            played: false,
            ell: 0,
            junta: JuntaState::new(),
            jc: 0,
        }
    }

    /// `true` iff this collector's opinion may still be sampled as a
    /// challenger (Appendix B: not yet played, not currently competing).
    pub fn is_candidate(&self) -> bool {
        !self.defender && !self.challenger && !self.played && !self.winner
    }
}

/// A clock agent: its counter doubles as the init counter (phase −1) and
/// the leaderless phase-clock position (phases 0..9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Clock {
    /// Counter (`0..Σ Ψ_p` once the tournaments start).
    pub g: u32,
    /// Appendix C: sub-counter implementing the fractional (1/c) init
    /// decrement — the counter drops by one every c-th collector meeting.
    pub sub: u8,
}

/// What a tracker's single opinion slot currently carries (Appendix B).
/// One slot + a two-bit kind keeps the tracker at `O(k)` states, matching
/// the paper's "same number of states as the counter tcnt".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SlotKind {
    /// Nothing stored.
    #[default]
    Empty,
    /// A sampled challenger candidate (not yet chosen).
    Cand,
    /// The leader's defender directive (initial tournament only).
    Def,
    /// The leader's challenger directive for the current tournament.
    Chal,
}

/// A tracker agent. In the ordered `SimpleAlgorithm` it counts tournaments
/// (`tcnt`); in the unordered variants it amplifies candidate opinions,
/// relays the leader's directives, and participates in the leader lottery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tracker {
    /// Ordered mode: challenger counter (1..=k+1, saturating).
    pub tcnt: u16,
    /// Unordered modes: the opinion in the slot (0 = none).
    pub slot_op: u16,
    /// What the slot carries.
    pub slot_kind: SlotKind,
    /// Unordered modes: leader-lottery state.
    pub lot: LotteryState,
    /// Leader bookkeeping: patience counter (defender-spread wait and
    /// finished-detection; only ever meaningful on the leader itself).
    pub leader_ctr: u32,
    /// Leader bookkeeping: the initial defender has been picked.
    pub def_picked: bool,
}

/// A player agent: carries the match-side opinion and the embedded
/// cancel/split majority state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Player {
    /// Pre-match side: `A` (defender), `B` (challenger) or `Tie` (= the
    /// paper's `U`, undecided).
    pub po: Verdict,
    /// Embedded majority state (initialised at the start of each match).
    pub maj: MajState,
}

/// The role-specific part of an agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Role {
    /// Token-holding collector.
    Collector(Collector),
    /// Clock agent.
    Clock(Clock),
    /// Tracker agent.
    Tracker(Tracker),
    /// Player agent.
    Player(Player),
}

/// One agent of the plurality protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agent {
    /// `< 0` during initialization (−1 for Algorithms 1–4; −c..−1 for
    /// Algorithm 5), `0..=9` during the tournaments.
    pub phase: i8,
    /// Role and role-specific state.
    pub role: Role,
    /// Per-phase "do once" scratch bit (reset on every phase entry).
    pub done_once: bool,
    /// Broadcast flag: leader elected *and* initial defender selected; the
    /// tournament clock may run. Constant `true` in the ordered mode.
    pub le_done: bool,
    /// Broadcast flag: no challenger candidates remain — final broadcast.
    pub fin: bool,
}

impl Agent {
    /// The initial agent of the ordered/unordered algorithms: a collector
    /// with one token, in phase −1.
    pub fn collector(opinion: u16, phase: i8, le_done: bool) -> Self {
        Self {
            phase,
            role: Role::Collector(Collector::new(opinion)),
            done_once: false,
            le_done,
            fin: false,
        }
    }

    /// The collector payload, if this agent is a collector.
    pub fn as_collector(&self) -> Option<&Collector> {
        match &self.role {
            Role::Collector(c) => Some(c),
            _ => None,
        }
    }

    /// `true` iff the agent reached the terminal (winner) state.
    pub fn is_winner(&self) -> bool {
        matches!(&self.role, Role::Collector(c) if c.winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_collector_holds_one_token() {
        let c = Collector::new(3);
        assert_eq!(c.opinion, 3);
        assert_eq!(c.tokens, 1);
        assert!(c.is_candidate());
    }

    #[test]
    fn competing_collectors_are_not_candidates() {
        let mut c = Collector::new(1);
        c.defender = true;
        assert!(!c.is_candidate());
        let mut c = Collector::new(1);
        c.played = true;
        assert!(!c.is_candidate());
    }

    #[test]
    fn slot_kind_priority_order() {
        // Tracker-to-tracker adoption relies on this ordering: directives
        // beat candidates beat empty slots.
        assert!(SlotKind::Chal > SlotKind::Def);
        assert!(SlotKind::Def > SlotKind::Cand);
        assert!(SlotKind::Cand > SlotKind::Empty);
    }

    #[test]
    fn winner_detection() {
        let mut a = Agent::collector(2, -1, true);
        assert!(!a.is_winner());
        if let Role::Collector(c) = &mut a.role {
            c.winner = true;
        }
        assert!(a.is_winner());
    }
}
