//! The shared tournament machine behind all three protocols.
//!
//! One [`Machine`] implements:
//!
//! * Algorithm 1 (clock agents: init counting + leaderless phase clock),
//! * Algorithm 2 (trackers: the ordered `tcnt` counter),
//! * Algorithm 3 (initialization: token merging, role splitting),
//! * Algorithm 4 (the five-phase tournament: setup, cancellation, lineup,
//!   match, conclusion; phase propagation),
//! * Algorithm 5 (improved initialization: per-opinion junta clocks,
//!   pruning at the phase-0 broadcast),
//! * Appendix B (tracker lottery, leader-driven defender/challenger
//!   selection, finished-detection),
//! * §3.4 (final winner broadcast).
//!
//! `SimpleAlgorithm`, `UnorderedAlgorithm` and `ImprovedAlgorithm` are thin
//! wrappers choosing [`Mode`] and the init style.

use pp_clocks::{FormJunta, JuntaClock, LeaderlessClock, PhaseSchedule};
use pp_dynamics::balance;
use pp_engine::{Replacement, SimRng};
use pp_leader::Lottery;
use pp_majority::{CancelSplit, Verdict};
use rand::Rng;

use crate::config::Tuning;
use crate::roles::{Agent, Clock, Collector, Player, Role, SlotKind, Tracker};

/// How the next challenger is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Opinions are numbered; tournament `i` pits the defender against
    /// opinion `i + 1` via the trackers' `tcnt` (Theorem 1(1)).
    Ordered,
    /// A leader elected among the trackers samples each challenger
    /// (Theorem 1(2) / Theorem 2).
    Unordered,
}

/// Interaction indices of notable global events, for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Milestones {
    /// First agent left the initialization phase (the paper's `t̂`).
    pub init_end: Option<u64>,
    /// Leader elected and initial defender selected (clocks released).
    pub le_done: Option<u64>,
    /// Leader declared the tournaments finished.
    pub fin: Option<u64>,
    /// First winner bit set (final broadcast started).
    pub first_winner: Option<u64>,
}

/// The tournament machine: all static configuration plus run milestones.
#[derive(Debug, Clone)]
pub struct Machine {
    mode: Mode,
    improved_init: bool,
    n: usize,
    k: u16,
    tuning: Tuning,
    schedule: PhaseSchedule,
    clock: LeaderlessClock,
    init_threshold: u32,
    maj: CancelSplit,
    lottery: Lottery,
    sub_junta: FormJunta,
    sub_clock: JuntaClock,
    leader_wait: u32,
    /// Recorded global events.
    pub milestones: Milestones,
}

impl Machine {
    /// Build the machine for a population of `n` agents and `k` opinions.
    pub fn new(mode: Mode, improved_init: bool, n: usize, k: u16, tuning: Tuning) -> Self {
        assert!(n >= 4, "population too small for the role split");
        assert!(k >= 1);
        assert!(
            (2..=63).contains(&tuning.merge_cap),
            "merge cap must lie in 2..=63 (token and load fields are i8-sized)"
        );
        let ln = (n as f64).ln().max(1.0);
        let lengths: Vec<u32> = tuning
            .phase_factors
            .iter()
            .map(|f| ((f * ln).ceil() as u32).max(2))
            .collect();
        let schedule = PhaseSchedule::from_lengths(&lengths);
        let clock = LeaderlessClock::new(schedule.period());
        Self {
            mode,
            improved_init,
            n,
            k,
            tuning,
            schedule,
            clock,
            init_threshold: (tuning.init_count_factor * ln).ceil() as u32,
            maj: CancelSplit::for_population_with_tail(
                n,
                tuning.match_window,
                tuning.match_tail_windows,
            ),
            lottery: Lottery::new(n, tuning.le_hour_len),
            sub_junta: FormJunta::new(
                FormJunta::for_subpopulation_of(n)
                    .max_level()
                    .max(tuning.junta_min_level),
            ),
            sub_clock: JuntaClock::new(tuning.junta_hour_len),
            leader_wait: (tuning.leader_wait_factor * ln).ceil() as u32,
            milestones: Milestones::default(),
        }
    }

    /// Challenger-selection mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Population size this machine was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of opinions.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// The phase schedule in use.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// The embedded match-majority configuration.
    pub fn majority(&self) -> &CancelSplit {
        &self.maj
    }

    /// Initial phase for agents of this machine (−1, or −c for the
    /// improved init).
    pub fn initial_phase(&self) -> i8 {
        if self.improved_init {
            -(self.tuning.improved_init_hours as i8)
        } else {
            -1
        }
    }

    /// A fresh collector as it would enter the initial configuration of
    /// this machine: one token, initial phase, `le_done` preset in the
    /// ordered mode (where no leader election runs). The state a
    /// fault-injected or rejoining agent adopts.
    pub fn fresh_collector(&self, opinion: u16) -> Agent {
        Agent::collector(
            opinion,
            self.initial_phase(),
            matches!(self.mode, Mode::Ordered),
        )
    }

    /// The state a fault-struck agent adopts, shared by the three
    /// algorithm wrappers' `Protocol::fault_state`. Corruption and
    /// injection both produce a [`fresh_collector`](Self::fresh_collector)
    /// — with a random or the given opinion respectively — modelling an
    /// agent that loses all protocol progress and restarts with a vote.
    /// Rejoin is handled by the engine (initial-state restore): `None`.
    pub fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<Agent> {
        match *replacement {
            Replacement::Random => Some(self.fresh_collector(rng.gen_range(1..=self.k))),
            Replacement::Opinion(o) => u16::try_from(o)
                .ok()
                .filter(|op| (1..=self.k).contains(op))
                .map(|op| self.fresh_collector(op)),
            Replacement::Rejoin => None,
        }
    }

    /// One interaction of the full protocol (`a` initiates).
    pub fn interact(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        // §3.4 final broadcast dominates everything.
        if a.is_winner() || b.is_winner() {
            self.spread_winner(a, b);
            return;
        }
        // Broadcast flags travel on every interaction.
        if a.le_done || b.le_done {
            a.le_done = true;
            b.le_done = true;
        }
        if a.fin || b.fin {
            a.fin = true;
            b.fin = true;
            // The final broadcast starts at the defenders.
            for x in [&mut *a, &mut *b] {
                if let Role::Collector(c) = &mut x.role {
                    if c.defender && !c.winner {
                        c.winner = true;
                        self.milestones.first_winner.get_or_insert(t);
                    }
                }
            }
        }

        if a.phase < 0 || b.phase < 0 {
            if self.improved_init {
                self.improved_init_step(t, a, b, rng);
            } else {
                self.standard_init_step(t, a, b, rng);
            }
            return;
        }
        self.tournament_step(t, a, b, rng);
    }

    // ------------------------------------------------------------------
    // Initialization (Algorithms 1 & 3).
    // ------------------------------------------------------------------

    fn standard_init_step(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        // Algorithm 3 lines 7–8: the init phase ends by broadcast.
        if a.phase >= 0 || b.phase >= 0 {
            for x in [&mut *a, &mut *b] {
                if x.phase < 0 {
                    self.enter_phase0(x);
                }
            }
            return;
        }
        // Both in phase −1.
        if let (Role::Collector(ca), Role::Collector(cb)) = (&a.role, &b.role) {
            // Token merging: the responder absorbs, the initiator re-roles.
            if ca.opinion == cb.opinion && ca.tokens + cb.tokens <= self.tuning.merge_cap {
                let moved = ca.tokens;
                let (Role::Collector(ca), Role::Collector(cb)) = (&mut a.role, &mut b.role) else {
                    unreachable!()
                };
                cb.tokens += moved;
                ca.tokens = 0;
                a.role = self.random_worker_role(rng);
            }
            return;
        }
        // Algorithm 1 lines 1–4: init counting, initiator side only. With
        // `init_decrement_period = c > 1` this is the Appendix C variant:
        // the counter drops by one only every c-th collector meeting.
        let period = self.tuning.init_decrement_period.max(1);
        if let Role::Clock(cl) = &mut a.role {
            if matches!(b.role, Role::Collector(_)) {
                cl.sub += 1;
                if cl.sub >= period {
                    cl.sub = 0;
                    cl.g = cl.g.saturating_sub(1);
                }
            } else {
                cl.g += 1;
                if cl.g >= self.init_threshold {
                    self.milestones.init_end.get_or_insert(t);
                    self.enter_phase0(a);
                }
            }
        }
    }

    fn improved_init_step(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        // Algorithm 5 lines 8–11: phase-0 broadcast converts init agents;
        // those whose clock never ticked (phase still −c) or that hold no
        // tokens are pruned into worker roles.
        if a.phase >= 0 || b.phase >= 0 {
            for x in [&mut *a, &mut *b] {
                if x.phase < 0 {
                    self.improved_enter(x, rng);
                }
            }
            return;
        }
        // Both still initializing: everyone is a collector here.
        let (Role::Collector(ca), Role::Collector(cb)) = (&mut a.role, &mut b.role) else {
            unreachable!("improved init only holds collectors before phase 0")
        };
        if ca.opinion != cb.opinion {
            return; // not meaningful
        }
        // Junta race + per-opinion clock (initiator side).
        self.sub_junta.interact(&mut ca.junta, &cb.junta);
        let is_junta = self.sub_junta.is_junta(&ca.junta);
        let crossed = self.sub_clock.interact(is_junta, &mut ca.jc, cb.jc);
        // Token merging (the emptied agent stays a collector until the
        // broadcast — Algorithm 5 line 7).
        if ca.tokens + cb.tokens <= self.tuning.merge_cap {
            cb.tokens += ca.tokens;
            ca.tokens = 0;
        }
        if crossed > 0 {
            let target = (i64::from(a.phase) + crossed as i64).min(0) as i8;
            a.phase = target;
            if a.phase == 0 {
                self.milestones.init_end.get_or_insert(t);
                a.phase = -1; // improved_enter expects phase < 0
                self.improved_enter(a, rng);
            }
        }
    }

    /// Entry into the tournament from the improved init: prune or keep.
    fn improved_enter(&mut self, x: &mut Agent, rng: &mut SimRng) {
        let never_ticked = x.phase == self.initial_phase();
        let tokenless = matches!(&x.role, Role::Collector(c) if c.tokens == 0);
        if never_ticked || tokenless {
            x.role = self.random_worker_role(rng);
        }
        self.enter_phase0(x);
    }

    /// Uniform choice among clock/tracker/player (Algorithm 3 line 6).
    fn random_worker_role(&self, rng: &mut SimRng) -> Role {
        match rng.gen_range(0..3u8) {
            0 => Role::Clock(Clock { g: 0, sub: 0 }),
            1 => Role::Tracker(Tracker {
                tcnt: 1,
                slot_op: 0,
                slot_kind: SlotKind::Empty,
                lot: self.lottery.init_state(rng),
                leader_ctr: 0,
                def_picked: false,
            }),
            _ => Role::Player(Player::default()),
        }
    }

    /// Move an agent from the init phase into tournament phase 0, firing
    /// the phase-entry hooks. Clocks restart their counter at 0.
    fn enter_phase0(&mut self, x: &mut Agent) {
        if let Role::Clock(cl) = &mut x.role {
            cl.g = 0;
            cl.sub = 0;
        }
        x.phase = 0;
        self.on_enter_phase(x, 0);
    }

    // ------------------------------------------------------------------
    // Tournament phases (Algorithm 4 + Appendix B).
    // ------------------------------------------------------------------

    fn tournament_step(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        self.advance_clocks(a, b);
        self.propagate_phase(a, b);

        if a.phase == b.phase {
            match a.phase {
                0 => self.setup_phase(t, a, b, rng),
                2 => self.cancellation_phase(a, b),
                4 => self.lineup_phase(a, b),
                6 => self.match_phase(a, b),
                8 => self.conclusion_phase(a, b),
                _ => {}
            }
        }

        // Failure containment: defender bits on *two different opinions*
        // can only arise from a mixed match conclusion (a w.h.p.-excluded
        // event). Left alone the pair rides every later tournament together
        // and both reach the final broadcast. Letting the responder's bit
        // yield collapses the split back to a single defender within a few
        // parallel-time units. Suppressed during the conclusion/buffer
        // phases, where a *legitimate* transient split exists while the
        // defender bit migrates from the loser to the winner.
        if a.phase == b.phase && !matches!(a.phase, 8 | 9) {
            if let (Role::Collector(ca), Role::Collector(cb)) = (&a.role, &mut b.role) {
                if ca.defender && cb.defender && ca.opinion != cb.opinion {
                    cb.defender = false;
                }
            }
        }

        // §3.4: the ordered final broadcast triggers once `tcnt = k + 1`.
        if self.mode == Mode::Ordered {
            let final_tcnt = self.k + 1;
            let tournaments_over =
                |x: &Agent| matches!(&x.role, Role::Tracker(tr) if tr.tcnt == final_tcnt);
            let a_over = tournaments_over(a);
            let b_over = tournaments_over(b);
            for (over, y) in [(a_over, &mut *b), (b_over, &mut *a)] {
                if !over {
                    continue;
                }
                if let Role::Collector(c) = &mut y.role {
                    if c.defender && !c.winner {
                        c.winner = true;
                        self.milestones.first_winner.get_or_insert(t);
                    }
                }
            }
        }
    }

    /// Clock agents run the leaderless clock ([1]); the counter is gated on
    /// `le_done` (constant `true` in the ordered mode) so the unordered
    /// variants can hold phase 0 until the leader has set up the first
    /// tournament.
    fn advance_clocks(&mut self, a: &mut Agent, b: &mut Agent) {
        if !(a.le_done && b.le_done) {
            return;
        }
        let (mut ga, mut gb) = match (&a.role, &b.role) {
            (Role::Clock(x), Role::Clock(y)) => (x.g, y.g),
            _ => return,
        };
        let adv = self.clock.interact(&mut ga, &mut gb);
        if let Role::Clock(x) = &mut a.role {
            x.g = ga;
        }
        if let Role::Clock(y) = &mut b.role {
            y.g = gb;
        }
        let (moved, g_new) = match adv {
            pp_clocks::Advanced::Initiator { to, .. } => (&mut *a, to),
            pp_clocks::Advanced::Responder { to, .. } => (&mut *b, to),
        };
        let new_phase = self.schedule.phase_of(g_new) as i8;
        if new_phase != moved.phase {
            moved.phase = new_phase;
            self.on_enter_phase(moved, new_phase);
        }
    }

    /// Algorithm 4 lines 22–23: non-clock agents adopt a circularly-ahead
    /// phase, stepping through every intermediate phase so entry hooks fire.
    fn propagate_phase(&mut self, a: &mut Agent, b: &mut Agent) {
        let pa = a.phase;
        let pb = b.phase;
        let step_to = |this: &mut Machine, x: &mut Agent, target: i8| {
            while x.phase != target {
                x.phase = (x.phase + 1) % 10;
                let p = x.phase;
                this.on_enter_phase(x, p);
            }
        };
        let ahead = |from: i8, to: i8| -> bool {
            let d = (i16::from(to) - i16::from(from)).rem_euclid(10);
            (1..=4).contains(&d)
        };
        if !matches!(a.role, Role::Clock(_)) && ahead(pa, pb) {
            step_to(self, a, pb);
        } else if !matches!(b.role, Role::Clock(_)) && ahead(pb, pa) {
            step_to(self, b, pa);
        }
    }

    /// Phase-entry hooks: reset per-phase scratch, advance trackers, reset
    /// players, initialise the match.
    fn on_enter_phase(&mut self, x: &mut Agent, phase: i8) {
        x.done_once = false;
        match phase {
            0 => match &mut x.role {
                Role::Tracker(tr) => {
                    if self.mode == Mode::Ordered {
                        tr.tcnt = (tr.tcnt + 1).min(self.k + 1);
                    } else {
                        tr.slot_op = 0;
                        tr.slot_kind = SlotKind::Empty;
                        tr.leader_ctr = 0;
                    }
                }
                Role::Player(pl) => {
                    *pl = Player::default();
                }
                Role::Collector(c) => {
                    c.challenger = false;
                    c.ell = 0;
                }
                Role::Clock(_) => {}
            },
            6 => {
                if let Role::Player(pl) = &mut x.role {
                    pl.maj = self.maj.init_state(pl.po);
                }
            }
            _ => {}
        }
    }

    /// Phase 0: challenger/defender determination plus `ℓ` initialization.
    fn setup_phase(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        match self.mode {
            Mode::Ordered => {
                // Algorithm 4 lines 2–3 (both orientations).
                self.ordered_challenger_bit(a, b);
                self.ordered_challenger_bit(b, a);
            }
            Mode::Unordered => self.unordered_setup(t, a, b, rng),
        }
        // Algorithm 4 lines 4–5, recomputed idempotently on every phase-0
        // interaction so late challenger bits still load their tokens.
        for x in [&mut *a, &mut *b] {
            if let Role::Collector(c) = &mut x.role {
                c.ell = if c.defender {
                    c.tokens as i8
                } else if c.challenger {
                    -(c.tokens as i8)
                } else {
                    0
                };
            }
        }
    }

    fn ordered_challenger_bit(&self, x: &mut Agent, y: &Agent) {
        if let (Role::Collector(c), Role::Tracker(tr)) = (&mut x.role, &y.role) {
            if c.opinion == tr.tcnt {
                c.challenger = true;
            }
        }
    }

    /// Appendix B: tracker lottery, candidate amplification, leader
    /// directives, collector bit setting.
    fn unordered_setup(&mut self, t: u64, a: &mut Agent, b: &mut Agent, rng: &mut SimRng) {
        // Leader lottery among trackers (self-freezing once done).
        if let (Role::Tracker(ta), Role::Tracker(tb)) = (&mut a.role, &mut b.role) {
            self.lottery.interact(&mut ta.lot, &mut tb.lot, rng);
        }

        // Candidate copying and directive relaying, both orientations.
        self.tracker_slot_update(a, b);
        self.tracker_slot_update(b, a);

        // Leader actions (either endpoint may be the leader).
        self.leader_actions(t, a, b);
        self.leader_actions(t, b, a);

        // Collectors read directives from trackers, both orientations.
        self.collector_reads_directive(a, b);
        self.collector_reads_directive(b, a);
    }

    fn tracker_slot_update(&self, x: &mut Agent, y: &Agent) {
        let Role::Tracker(tr) = &mut x.role else {
            return;
        };
        match &y.role {
            Role::Collector(c) if c.is_candidate() && tr.slot_kind == SlotKind::Empty => {
                tr.slot_op = c.opinion;
                tr.slot_kind = SlotKind::Cand;
            }
            Role::Tracker(other) if other.slot_kind > tr.slot_kind => {
                tr.slot_op = other.slot_op;
                tr.slot_kind = other.slot_kind;
            }
            _ => {}
        }
    }

    /// A challenger candidate visible on the partner: a candidate collector
    /// directly, or a tracker carrying a sampled candidate.
    fn candidate_on(y: &Agent) -> Option<u16> {
        match &y.role {
            Role::Collector(c) if c.is_candidate() => Some(c.opinion),
            Role::Tracker(tr) if tr.slot_kind == SlotKind::Cand => Some(tr.slot_op),
            _ => None,
        }
    }

    fn leader_actions(&mut self, t: u64, x: &mut Agent, y: &Agent) {
        let x_fin = x.fin;
        let x_le_done = x.le_done;
        let Role::Tracker(tr) = &mut x.role else {
            return;
        };
        if !tr.lot.leader {
            return;
        }
        if !tr.def_picked {
            // Select the initial defender (Appendix B: "the same procedure
            // to select the initial defender").
            if let Some(op) = Self::candidate_on(y) {
                tr.slot_op = op;
                tr.slot_kind = SlotKind::Def;
                tr.def_picked = true;
                tr.leader_ctr = 0;
            }
        } else if !x_le_done {
            // Wait for the defender directive to saturate the trackers,
            // then release the tournament clock.
            tr.leader_ctr += 1;
            if tr.leader_ctr >= self.leader_wait {
                tr.leader_ctr = 0; // fresh patience for challenger sampling
                x.le_done = true;
                self.milestones.le_done.get_or_insert(t);
            }
        } else if tr.slot_kind != SlotKind::Chal && !x_fin {
            // Sample this tournament's challenger; persistent failure to
            // find one means every opinion has played: finish.
            if let Some(op) = Self::candidate_on(y) {
                tr.slot_op = op;
                tr.slot_kind = SlotKind::Chal;
            } else {
                tr.leader_ctr += 1;
                if tr.leader_ctr >= self.leader_wait {
                    x.fin = true;
                    self.milestones.fin.get_or_insert(t);
                }
            }
        }
    }

    fn collector_reads_directive(&self, x: &mut Agent, y: &Agent) {
        let Role::Collector(c) = &mut x.role else {
            return;
        };
        let Role::Tracker(tr) = &y.role else { return };
        if c.played || tr.slot_op != c.opinion {
            return;
        }
        match tr.slot_kind {
            SlotKind::Chal => {
                c.challenger = true;
                c.played = true;
            }
            SlotKind::Def => {
                c.defender = true;
                c.played = true;
            }
            _ => {}
        }
    }

    /// Phase 2: Algorithm 4 lines 7–8 — discrete averaging over all
    /// collectors.
    fn cancellation_phase(&mut self, a: &mut Agent, b: &mut Agent) {
        if let (Role::Collector(ca), Role::Collector(cb)) = (&mut a.role, &mut b.role) {
            let (x, y) = balance(i64::from(ca.ell), i64::from(cb.ell));
            ca.ell = x as i8;
            cb.ell = y as i8;
        }
    }

    /// Phase 4: Algorithm 4 lines 10–12 — collectors recruit undecided
    /// players.
    fn lineup_phase(&mut self, a: &mut Agent, b: &mut Agent) {
        let recruit = |x: &mut Agent, y: &mut Agent| -> bool {
            if let (Role::Collector(c), Role::Player(pl)) = (&mut x.role, &mut y.role) {
                if pl.po == Verdict::Tie && c.ell != 0 {
                    pl.po = if c.ell > 0 { Verdict::A } else { Verdict::B };
                    c.ell -= c.ell.signum();
                    return true;
                }
            }
            false
        };
        if !recruit(a, b) {
            recruit(b, a);
        }
    }

    /// Phase 6: Algorithm 4 lines 14–15 — the exact majority among players.
    fn match_phase(&mut self, a: &mut Agent, b: &mut Agent) {
        if let (Role::Player(pa), Role::Player(pb)) = (&mut a.role, &mut b.role) {
            self.maj.interact(&mut pa.maj, &mut pb.maj);
        }
    }

    /// Phase 8: Algorithm 4 lines 17–21 — collectors adopt the verdict
    /// (exactly once per phase).
    fn conclusion_phase(&mut self, a: &mut Agent, b: &mut Agent) {
        let declare_thr = self.maj.declare_threshold();
        let conclude = |x: &mut Agent, y: &Agent| {
            if x.done_once {
                return;
            }
            let Role::Collector(c) = &mut x.role else {
                return;
            };
            let Role::Player(pl) = &y.role else { return };
            // Only players that finished the match carry a result; the
            // paper's phase lengths guarantee completion, so reading an
            // unfinished player would conflate "still computing" with the
            // genuine tie verdict.
            if pl.maj.t < declare_thr {
                return;
            }
            match pl.maj.out {
                Verdict::B => {
                    // The challenger won: it becomes the defender.
                    c.defender = c.challenger;
                    c.challenger = false;
                }
                Verdict::A | Verdict::Tie => {
                    // The defender retains (ties favour the defender).
                    c.challenger = false;
                }
            }
            x.done_once = true;
        };
        conclude(a, b);
        conclude(b, a);
    }

    /// §3.4: winners convert everyone they meet. If a failed tournament
    /// ever crowned *two* opinions (a w.h.p.-excluded event), the two
    /// winner epidemics compete: the initiator's opinion overwrites the
    /// responder's, so the population still collapses to a single (possibly
    /// wrong) answer instead of deadlocking — failures stay observable as
    /// wrong outputs rather than burned budgets.
    fn spread_winner(&mut self, a: &mut Agent, b: &mut Agent) {
        let winner_op = [&*a, &*b]
            .iter()
            .find_map(|x| x.as_collector().filter(|c| c.winner).map(|c| c.opinion))
            .expect("spread_winner called with a winner present");
        for x in [a, b] {
            if !x.is_winner() || x.as_collector().map(|c| c.opinion) != Some(winner_op) {
                let mut c = Collector::new(winner_op);
                c.tokens = 0;
                c.winner = true;
                c.played = true;
                x.role = Role::Collector(c);
            }
        }
    }

    // ------------------------------------------------------------------
    // Output & census.
    // ------------------------------------------------------------------

    /// All agents are winner-collectors of the same opinion.
    pub fn converged(&self, states: &[Agent]) -> Option<u32> {
        let mut opinion = None;
        for x in states {
            match x.as_collector() {
                Some(c) if c.winner => match opinion {
                    None => opinion = Some(c.opinion),
                    Some(op) if op == c.opinion => {}
                    Some(_) => return None,
                },
                _ => return None,
            }
        }
        opinion.map(u32::from)
    }

    /// Canonical census encoding; see DESIGN.md §3.6 for the accounting of
    /// the junta-clock counter.
    pub fn encode(&self, x: &Agent) -> u64 {
        let shared = ((x.phase + 16) as u64)
            | u64::from(x.done_once) << 5
            | u64::from(x.le_done) << 6
            | u64::from(x.fin) << 7;
        let (tag, payload): (u64, u64) = match &x.role {
            Role::Collector(c) => {
                let bits = u64::from(c.defender)
                    | u64::from(c.challenger) << 1
                    | u64::from(c.winner) << 2
                    | u64::from(c.played) << 3;
                let mut p = u64::from(c.opinion)
                    | u64::from(c.tokens) << 16
                    | bits << 22
                    | ((i16::from(c.ell) + 64) as u64) << 26;
                if self.improved_init && x.phase < 0 {
                    let j = u64::from(c.junta.level) << 1 | u64::from(c.junta.active);
                    p |= j << 34 | self.sub_clock.encode_counter(c.jc) << 40;
                }
                (0, p)
            }
            Role::Clock(cl) => (1, u64::from(cl.g) | u64::from(cl.sub) << 24),
            Role::Tracker(tr) => {
                let p = match self.mode {
                    Mode::Ordered => u64::from(tr.tcnt),
                    Mode::Unordered => {
                        let lot = &tr.lot;
                        let flags = u64::from(lot.candidate)
                            | u64::from(lot.coin) << 1
                            | u64::from(lot.best_coin) << 2
                            | u64::from(lot.leader) << 3
                            | u64::from(lot.done) << 4;
                        let j = u64::from(lot.junta.level) << 1 | u64::from(lot.junta.active);
                        u64::from(tr.slot_op)
                            | (tr.slot_kind as u64) << 16
                            | flags << 18
                            | (lot.best_hour % 64) << 23
                            | j << 29
                            | (lot.p % 256) << 33
                            | u64::from(tr.leader_ctr.min(8191)) << 41
                    }
                };
                (2, p)
            }
            Role::Player(pl) => {
                let m = &pl.maj;
                let p = ((m.sign + 1) as u64)
                    | u64::from(m.level) << 2
                    | u64::from(m.out.code()) << 8
                    | u64::from(m.t) << 10
                    | u64::from(pl.po.code()) << 26;
                (3, p)
            }
        };
        shared | tag << 8 | payload << 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(mode: Mode) -> Machine {
        Machine::new(mode, false, 1000, 4, Tuning::default())
    }

    #[test]
    fn initial_phase_depends_on_init_style() {
        assert_eq!(machine(Mode::Ordered).initial_phase(), -1);
        let m = Machine::new(Mode::Unordered, true, 1000, 4, Tuning::default());
        assert_eq!(
            m.initial_phase(),
            -(Tuning::default().improved_init_hours as i8)
        );
    }

    #[test]
    fn phase_entry_resets_scratch_and_advances_tracker() {
        let mut m = machine(Mode::Ordered);
        let mut x = Agent::collector(1, 0, true);
        x.role = Role::Tracker(Tracker {
            tcnt: 1,
            slot_op: 0,
            slot_kind: SlotKind::Empty,
            lot: {
                let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(1);
                Lottery::new(1000, 4).init_state(&mut rng)
            },
            leader_ctr: 0,
            def_picked: false,
        });
        x.done_once = true;
        m.on_enter_phase(&mut x, 0);
        assert!(!x.done_once);
        match &x.role {
            Role::Tracker(tr) => assert_eq!(tr.tcnt, 2),
            _ => unreachable!(),
        }
        // Saturates at k + 1.
        for _ in 0..10 {
            m.on_enter_phase(&mut x, 0);
        }
        match &x.role {
            Role::Tracker(tr) => assert_eq!(tr.tcnt, 5),
            _ => unreachable!(),
        }
    }

    #[test]
    fn winner_converts_partner() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(2);
        let mut w = Agent::collector(3, 5, true);
        if let Role::Collector(c) = &mut w.role {
            c.winner = true;
        }
        let mut other = Agent::collector(1, 5, true);
        m.interact(0, &mut w, &mut other, &mut rng);
        assert!(other.is_winner());
        assert_eq!(other.as_collector().expect("collector").opinion, 3);
    }

    #[test]
    fn converged_requires_unanimous_winners() {
        let m = machine(Mode::Ordered);
        let mut w1 = Agent::collector(3, 5, true);
        if let Role::Collector(c) = &mut w1.role {
            c.winner = true;
        }
        let w2 = w1;
        assert_eq!(m.converged(&[w1, w2]), Some(3));
        let plain = Agent::collector(3, 5, true);
        assert_eq!(m.converged(&[w1, plain]), None);
        let mut w3 = Agent::collector(2, 5, true);
        if let Role::Collector(c) = &mut w3.role {
            c.winner = true;
        }
        assert_eq!(m.converged(&[w1, w3]), None);
    }

    #[test]
    fn merge_respects_cap_and_reroles_initiator() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(3);
        let mut a = Agent::collector(1, -1, true);
        let mut b = Agent::collector(1, -1, true);
        m.interact(0, &mut a, &mut b, &mut rng);
        assert_eq!(b.as_collector().expect("collector").tokens, 2);
        assert!(
            !matches!(a.role, Role::Collector(_)),
            "initiator must re-role"
        );
        // Over-cap pairs do not merge.
        let mut c = Agent::collector(2, -1, true);
        let mut d = Agent::collector(2, -1, true);
        if let Role::Collector(cc) = &mut c.role {
            cc.tokens = 6;
        }
        if let Role::Collector(dd) = &mut d.role {
            dd.tokens = 6;
        }
        m.interact(1, &mut c, &mut d, &mut rng);
        assert_eq!(c.as_collector().expect("collector").tokens, 6);
        assert_eq!(d.as_collector().expect("collector").tokens, 6);
    }

    #[test]
    fn different_opinions_do_not_merge() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(4);
        let mut a = Agent::collector(1, -1, true);
        let mut b = Agent::collector(2, -1, true);
        m.interact(0, &mut a, &mut b, &mut rng);
        assert_eq!(a.as_collector().expect("collector").tokens, 1);
        assert_eq!(b.as_collector().expect("collector").tokens, 1);
    }

    #[test]
    fn phase_propagation_steps_through_hooks() {
        let mut m = machine(Mode::Ordered);
        let mut behind = Agent::collector(1, 8, true);
        if let Role::Collector(c) = &mut behind.role {
            c.ell = 7; // stale ℓ that must be cleared by the phase-0 hook
        }
        let mut ahead = Agent::collector(2, 1, true); // 8 → 9 → 0 → 1 is 3 ahead circularly
        m.propagate_phase(&mut behind, &mut ahead);
        assert_eq!(behind.phase, 1);
        assert_eq!(
            behind.as_collector().expect("collector").ell,
            0,
            "phase-0 hook must fire"
        );
    }

    #[test]
    fn encode_distinguishes_roles_and_phases() {
        let m = machine(Mode::Ordered);
        let a = Agent::collector(1, -1, true);
        let b = Agent::collector(2, -1, true);
        let mut c = Agent::collector(1, 0, true);
        c.phase = 0;
        let set: std::collections::HashSet<u64> =
            [&a, &b, &c].iter().map(|x| m.encode(x)).collect();
        assert_eq!(set.len(), 3);
    }

    fn tracker_agent(m: &Machine, tcnt: u16, phase: i8) -> Agent {
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(1);
        let mut x = Agent::collector(1, phase, true);
        x.role = Role::Tracker(Tracker {
            tcnt,
            slot_op: 0,
            slot_kind: SlotKind::Empty,
            lot: {
                let lottery = Lottery::new(m.n(), 4);
                lottery.init_state(&mut rng)
            },
            leader_ctr: 0,
            def_picked: false,
        });
        x
    }

    fn player_agent(phase: i8) -> Agent {
        let mut x = Agent::collector(1, phase, true);
        x.role = Role::Player(Player::default());
        x
    }

    #[test]
    fn ordered_setup_sets_challenger_from_tcnt() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(2);
        // Tracker at tcnt = 3 names opinion 3 the challenger; its collectors
        // load ℓ = −tokens in the same interaction.
        let mut c = Agent::collector(3, 0, true);
        if let Role::Collector(cc) = &mut c.role {
            cc.tokens = 4;
        }
        let mut t = tracker_agent(&m, 3, 0);
        m.interact(0, &mut c, &mut t, &mut rng);
        let cc = c.as_collector().expect("collector");
        assert!(cc.challenger);
        assert_eq!(cc.ell, -4);
        // A collector of a different opinion stays out and keeps ℓ = 0.
        let mut other = Agent::collector(2, 0, true);
        m.interact(1, &mut other, &mut t, &mut rng);
        let oc = other.as_collector().expect("collector");
        assert!(!oc.challenger);
        assert_eq!(oc.ell, 0);
    }

    #[test]
    fn cancellation_phase_averages_loads() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(3);
        let mut a = Agent::collector(1, 2, true);
        let mut b = Agent::collector(2, 2, true);
        if let Role::Collector(c) = &mut a.role {
            c.ell = 7;
        }
        if let Role::Collector(c) = &mut b.role {
            c.ell = -2;
        }
        m.interact(0, &mut a, &mut b, &mut rng);
        let (ea, eb) = (
            a.as_collector().expect("collector").ell,
            b.as_collector().expect("collector").ell,
        );
        assert_eq!(ea + eb, 5, "cancellation must preserve the load sum");
        assert!((eb - ea).abs() <= 1);
    }

    #[test]
    fn lineup_recruits_undecided_players() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(4);
        let mut c = Agent::collector(1, 4, true);
        if let Role::Collector(cc) = &mut c.role {
            cc.ell = -2;
        }
        let mut p = player_agent(4);
        m.interact(0, &mut c, &mut p, &mut rng);
        match &p.role {
            Role::Player(pl) => assert_eq!(pl.po, Verdict::B),
            _ => unreachable!(),
        }
        assert_eq!(c.as_collector().expect("collector").ell, -1);
        // A recruited player is not recruited twice.
        let mut p2 = player_agent(4);
        if let Role::Player(pl) = &mut p2.role {
            pl.po = Verdict::A;
        }
        m.interact(1, &mut c, &mut p2, &mut rng);
        assert_eq!(c.as_collector().expect("collector").ell, -1);
    }

    #[test]
    fn conclusion_transfers_defender_on_b_verdict_once() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(5);
        let thr = m.majority().declare_threshold();
        let mut chall = Agent::collector(2, 8, true);
        if let Role::Collector(c) = &mut chall.role {
            c.challenger = true;
        }
        let mut p = player_agent(8);
        if let Role::Player(pl) = &mut p.role {
            pl.maj.out = Verdict::B;
            pl.maj.t = thr;
        }
        m.interact(0, &mut chall, &mut p, &mut rng);
        let c = chall.as_collector().expect("collector");
        assert!(
            c.defender,
            "challenger collectors become defenders on a B verdict"
        );
        assert!(!c.challenger);
        assert!(chall.done_once);
        // The do-once guard: a later conflicting A verdict changes nothing.
        let mut p2 = player_agent(8);
        if let Role::Player(pl) = &mut p2.role {
            pl.maj.out = Verdict::A;
            pl.maj.t = thr;
        }
        m.interact(1, &mut chall, &mut p2, &mut rng);
        assert!(chall.as_collector().expect("collector").defender);
    }

    #[test]
    fn conclusion_ignores_unfinished_players() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(6);
        let mut chall = Agent::collector(2, 8, true);
        if let Role::Collector(c) = &mut chall.role {
            c.challenger = true;
        }
        // Player with a B sign but an unfinished schedule: no verdict yet.
        let mut p = player_agent(8);
        if let Role::Player(pl) = &mut p.role {
            pl.maj.out = Verdict::B;
            pl.maj.t = 1;
        }
        m.interact(0, &mut chall, &mut p, &mut rng);
        let c = chall.as_collector().expect("collector");
        assert!(!c.defender, "unfinished players must not conclude");
        assert!(c.challenger);
        assert!(!chall.done_once);
    }

    #[test]
    fn split_defenders_heal_outside_conclusion() {
        let mut m = machine(Mode::Ordered);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d1 = Agent::collector(1, 2, true);
        let mut d2 = Agent::collector(2, 2, true);
        for d in [&mut d1, &mut d2] {
            if let Role::Collector(c) = &mut d.role {
                c.defender = true;
            }
        }
        m.interact(0, &mut d1, &mut d2, &mut rng);
        let bits = u8::from(d1.as_collector().expect("c").defender)
            + u8::from(d2.as_collector().expect("c").defender);
        assert_eq!(
            bits, 1,
            "exactly one defender bit must survive the healing rule"
        );
        // In the conclusion phase the transient split is legitimate.
        let mut d3 = Agent::collector(1, 8, true);
        let mut d4 = Agent::collector(2, 8, true);
        for d in [&mut d3, &mut d4] {
            if let Role::Collector(c) = &mut d.role {
                c.defender = true;
            }
        }
        m.interact(1, &mut d3, &mut d4, &mut rng);
        assert!(d3.as_collector().expect("c").defender);
        assert!(d4.as_collector().expect("c").defender);
    }

    #[test]
    fn improved_entry_prunes_tokenless_and_unticked() {
        let mut m = Machine::new(Mode::Unordered, true, 1000, 4, Tuning::default());
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(8);
        // An agent whose clock never ticked (phase −c) is re-rolled even
        // with tokens.
        let mut stuck = Agent::collector(1, m.initial_phase(), false);
        let mut herald = Agent::collector(2, 0, false);
        m.interact(0, &mut stuck, &mut herald, &mut rng);
        assert_eq!(stuck.phase, 0);
        assert!(
            !matches!(stuck.role, Role::Collector(_)),
            "unticked agent must be pruned"
        );
        // An agent that ticked and holds tokens stays a collector.
        let mut healthy = Agent::collector(1, m.initial_phase() + 2, false);
        m.interact(1, &mut healthy, &mut herald, &mut rng);
        assert_eq!(healthy.phase, 0);
        assert!(matches!(healthy.role, Role::Collector(_)));
    }

    #[test]
    fn appendix_c_decrement_period_slows_decrements() {
        let tuning = Tuning {
            init_decrement_period: 3,
            ..Tuning::default()
        };
        let mut m = Machine::new(Mode::Ordered, false, 1000, 4, tuning);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(9);
        let mut clock = Agent::collector(1, -1, true);
        clock.role = Role::Clock(Clock { g: 5, sub: 0 });
        let mut coll = Agent::collector(1, -1, true);
        // Three collector meetings = one decrement.
        for t in 0..3 {
            m.interact(t, &mut clock, &mut coll, &mut rng);
        }
        match &clock.role {
            Role::Clock(cl) => assert_eq!(cl.g, 4),
            _ => unreachable!(),
        }
    }
}
