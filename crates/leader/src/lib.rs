//! Leader election in `O(log² n)` time w.h.p., standing in for
//! Gąsieniec–Stachowiak \[23\].
//!
//! See [`lottery`] for the mechanism and `DESIGN.md` §3.2 for the
//! substitution argument. The component form is embedded by the unordered
//! and improved plurality protocols (the trackers elect the leader that
//! samples each tournament's challenger); the standalone protocol measures
//! uniqueness probability and running time (experiment X11).

pub mod lottery;

pub use lottery::{LeaderElectionRun, Lottery, LotteryState};
