//! The junta-clock-synchronised coin lottery.
//!
//! All participants run the junta election and junta clock of \[11\]
//! (`pp-clocks`). Every participant starts as a *candidate*. Each clock
//! "hour" every surviving candidate draws a fresh coin; the pair
//! `(hour, coin)` is a lottery *token*, and the population relays the
//! lexicographic maximum token epidemically. A candidate that observes a
//! token strictly greater than its own current `(hour, coin)` retires.
//!
//! * **At least one survivor:** tokens are snapshots of candidate states, so
//!   no token ever strictly exceeds the lexicographically maximal current
//!   candidate — that candidate never retires.
//! * **Unique w.h.p.:** two candidates can only both survive `H` hours by
//!   drawing identical coins in every shared hour; with `H = ⌈3·log₂ n⌉`
//!   a union bound gives failure probability ≤ n²·2^(−H) ≤ 1/n.
//! * **Time:** `H` hours × Θ(log n) per hour = `O(log² n)` w.h.p.
//! * **Termination detection:** the candidate that reaches hour `H` *knows*
//!   it is the leader (the paper's requirement in Appendix B) and
//!   broadcasts `done`.

use pp_clocks::{FormJunta, JuntaClock, JuntaState};
use pp_engine::{Protocol, SimRng};
use rand::Rng;

/// Per-participant lottery state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LotteryState {
    /// Junta-race state.
    pub junta: JuntaState,
    /// Junta-clock counter.
    pub p: u64,
    /// Still in the running.
    pub candidate: bool,
    /// This hour's coin.
    pub coin: bool,
    /// Best token seen: hour.
    pub best_hour: u64,
    /// Best token seen: coin.
    pub best_coin: bool,
    /// Elected (a candidate that completed the final hour).
    pub leader: bool,
    /// Election-concluded broadcast flag.
    pub done: bool,
}

/// The lottery component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lottery {
    election: FormJunta,
    clock: JuntaClock,
    end_hour: u64,
}

impl Lottery {
    /// A lottery sized for `n` participants: junta cap per \[11\] (floored
    /// at 3 — see below), the given hour length, and `H = ⌈3·log₂ n⌉`
    /// elimination hours.
    ///
    /// The junta cap `⌊log₂log₂ n⌋ − 3` degenerates to 1 at simulation
    /// scales, which makes the junta roughly half the population and drives
    /// the clock frontier faster than the token epidemic — hours then fail
    /// to act as synchronised elimination rounds and several candidates
    /// survive. Flooring the cap at 3 keeps the junta small (the regime the
    /// \[11\] analysis assumes); the asymptotic formula dominates for
    /// n ≳ 2^64.
    pub fn new(n: usize, hour_len: u32) -> Self {
        assert!(n >= 2);
        let end_hour = (3.0 * (n as f64).log2()).ceil() as u64;
        let cap = FormJunta::for_population(n).max_level().max(3);
        Self {
            election: FormJunta::new(cap),
            clock: JuntaClock::new(hour_len),
            end_hour: end_hour.max(2),
        }
    }

    /// The hour after which the surviving candidate declares itself leader.
    pub fn end_hour(&self) -> u64 {
        self.end_hour
    }

    /// The clock component.
    pub fn clock(&self) -> &JuntaClock {
        &self.clock
    }

    /// Fresh participant state (every participant starts as a candidate
    /// with a random hour-0 coin).
    pub fn init_state(&self, rng: &mut SimRng) -> LotteryState {
        LotteryState {
            junta: JuntaState::new(),
            p: 0,
            candidate: true,
            coin: rng.gen(),
            best_hour: 0,
            best_coin: false,
            leader: false,
            done: false,
        }
    }

    /// One interaction between two participants (`a` initiates).
    pub fn interact(&self, a: &mut LotteryState, b: &mut LotteryState, rng: &mut SimRng) {
        // `done` freezes the machinery (states are reused afterwards).
        if a.done || b.done {
            a.done = true;
            b.done = true;
            return;
        }
        // Junta race + clock, initiator side.
        self.election.interact(&mut a.junta, &b.junta);
        let is_junta = self.election.is_junta(&a.junta);
        let before = self.clock.hour(a.p);
        self.clock.interact(is_junta, &mut a.p, b.p);
        let after = self.clock.hour(a.p);
        if after > before && a.candidate {
            a.coin = rng.gen();
        }

        // Token maxing: combine both agents' best with both current
        // candidate tokens, then broadcast the maximum both ways.
        let mut best = (a.best_hour, a.best_coin).max((b.best_hour, b.best_coin));
        if a.candidate {
            best = best.max((self.clock.hour(a.p), a.coin));
        }
        if b.candidate {
            best = best.max((self.clock.hour(b.p), b.coin));
        }
        (a.best_hour, a.best_coin) = best;
        (b.best_hour, b.best_coin) = best;

        // Elimination: a candidate strictly dominated by the best token
        // retires.
        for s in [&mut *a, &mut *b] {
            if s.candidate && (best.0, best.1) > (self.clock.hour(s.p), s.coin) {
                s.candidate = false;
            }
        }

        // Completion: a candidate that survived through the final hour is
        // the leader and knows it.
        for s in [&mut *a, &mut *b] {
            if s.candidate && !s.leader && self.clock.hour(s.p) >= self.end_hour {
                s.leader = true;
                s.done = true;
            }
        }
        if a.done || b.done {
            a.done = true;
            b.done = true;
        }
    }

    /// Census encoding (counter accounted modulo the circular window, hours
    /// modulo 64 — see `JuntaClock::encode_counter`).
    pub fn encode(&self, s: &LotteryState) -> u64 {
        let flags = u64::from(s.candidate)
            | u64::from(s.coin) << 1
            | u64::from(s.best_coin) << 2
            | u64::from(s.leader) << 3
            | u64::from(s.done) << 4;
        let j = u64::from(s.junta.level) << 1 | u64::from(s.junta.active);
        flags << 40 | (s.best_hour % 64) << 32 | j << 24 | self.clock.encode_counter(s.p)
    }
}

/// Standalone leader election (experiment X11).
#[derive(Debug, Clone)]
pub struct LeaderElectionRun {
    lottery: Lottery,
}

impl LeaderElectionRun {
    /// A run over `n` participants.
    pub fn new(n: usize, hour_len: u32, rng: &mut SimRng) -> (Self, Vec<LotteryState>) {
        let lottery = Lottery::new(n, hour_len);
        let states = (0..n).map(|_| lottery.init_state(rng)).collect();
        (Self { lottery }, states)
    }

    /// The component.
    pub fn lottery(&self) -> &Lottery {
        &self.lottery
    }
}

impl Protocol for LeaderElectionRun {
    type State = LotteryState;

    fn interact(&mut self, _t: u64, a: &mut LotteryState, b: &mut LotteryState, rng: &mut SimRng) {
        self.lottery.interact(a, b, rng);
    }

    fn converged(&self, states: &[LotteryState]) -> Option<u32> {
        states
            .iter()
            .all(|s| s.done)
            .then(|| states.iter().filter(|s| s.leader).count() as u32)
    }

    fn encode(&self, state: &LotteryState) -> u64 {
        self.lottery.encode(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};
    use rand::SeedableRng;

    #[test]
    fn elects_exactly_one_leader() {
        for seed in 0..5 {
            let n = 3000;
            let mut rng = SimRng::seed_from_u64(1000 + seed);
            let (proto, states) = LeaderElectionRun::new(n, 4, &mut rng);
            let mut sim = Simulation::new(proto, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 100_000.0));
            assert_eq!(r.status, RunStatus::Converged, "seed {seed}");
            assert_eq!(r.output, Some(1), "seed {seed}: wrong leader count");
        }
    }

    #[test]
    fn leader_knows_it_is_leader() {
        let n = 2000;
        let mut rng = SimRng::seed_from_u64(7);
        let (proto, states) = LeaderElectionRun::new(n, 4, &mut rng);
        let mut sim = Simulation::new(proto, states, 3);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 100_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        let leaders: Vec<_> = sim.states().iter().filter(|s| s.leader).collect();
        assert_eq!(leaders.len(), 1);
        assert!(leaders[0].done);
    }

    #[test]
    fn time_is_polylogarithmic() {
        let n = 4096;
        let mut rng = SimRng::seed_from_u64(9);
        let (proto, states) = LeaderElectionRun::new(n, 4, &mut rng);
        let mut sim = Simulation::new(proto, states, 5);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 200_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        let log2n = (n as f64).log2();
        // O(log² n) with a moderate constant; fail loudly if it degrades to
        // something polynomial.
        assert!(
            r.parallel_time < 60.0 * log2n * log2n,
            "leader election took {} parallel time",
            r.parallel_time
        );
    }

    #[test]
    fn done_flag_freezes_state() {
        let lottery = Lottery::new(100, 4);
        let mut rng = SimRng::seed_from_u64(1);
        let mut a = lottery.init_state(&mut rng);
        let mut b = lottery.init_state(&mut rng);
        a.done = true;
        let b_before_p = b.p;
        lottery.interact(&mut a, &mut b, &mut rng);
        assert!(b.done, "done must spread");
        assert_eq!(b.p, b_before_p, "done must freeze the clock");
    }

    #[test]
    fn dominated_candidate_retires() {
        let lottery = Lottery::new(100, 4);
        let mut rng = SimRng::seed_from_u64(2);
        let mut a = lottery.init_state(&mut rng);
        let mut b = lottery.init_state(&mut rng);
        // b carries a token from a much later hour.
        b.best_hour = 5;
        b.best_coin = true;
        b.candidate = false;
        lottery.interact(&mut a, &mut b, &mut rng);
        assert!(
            !a.candidate,
            "hour-0 candidate must retire against an hour-5 token"
        );
    }
}
