//! The classic 4-state stable exact majority.
//!
//! States: *strong* `A`/`B` (carrying the agent's original vote as a token)
//! and *weak* `a`/`b` (an opinion without a token). Strong opposites
//! annihilate into weak states — preserving the token difference
//! `#A − #B` exactly — and surviving strong agents convert weak agents to
//! their side. For any bias `d ≥ 1` the minority's strong tokens are
//! eventually wiped out and the `d` surviving majority tokens convert
//! everyone: *always correct*. The price is time: with `d = 1` the final
//! annihilation and the single-token conversion sweep cost `Θ(n)` parallel
//! time — the baseline demonstrating why the paper accepts a small failure
//! probability to get `O(log n)`-time building blocks (experiment X10).

use rand::Rng;

use pp_engine::{Protocol, Replacement, SimRng};

/// 4-state agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FourStateAgent {
    /// Strong A (token holder).
    StrongA,
    /// Strong B (token holder).
    StrongB,
    /// Weak a.
    WeakA,
    /// Weak b.
    WeakB,
}

/// The 4-state stable exact-majority protocol.
#[derive(Debug, Clone, Default)]
pub struct FourState;

impl FourState {
    /// Initial configuration with `a` strong-A and `b` strong-B agents.
    pub fn initial_states(a: usize, b: usize) -> Vec<FourStateAgent> {
        let mut v = Vec::with_capacity(a + b);
        v.extend(std::iter::repeat_n(FourStateAgent::StrongA, a));
        v.extend(std::iter::repeat_n(FourStateAgent::StrongB, b));
        v
    }
}

impl Protocol for FourState {
    type State = FourStateAgent;

    #[inline]
    fn interact(
        &mut self,
        _t: u64,
        a: &mut FourStateAgent,
        b: &mut FourStateAgent,
        _rng: &mut SimRng,
    ) {
        use FourStateAgent::*;
        match (*a, *b) {
            // Strong opposites annihilate into weak opinions.
            (StrongA, StrongB) => {
                *a = WeakA;
                *b = WeakB;
            }
            (StrongB, StrongA) => {
                *a = WeakB;
                *b = WeakA;
            }
            // Strong agents convert weak opposites.
            (StrongA, WeakB) => *b = WeakA,
            (StrongB, WeakA) => *b = WeakB,
            (WeakB, StrongA) => *a = WeakA,
            (WeakA, StrongB) => *a = WeakB,
            _ => {}
        }
    }

    fn converged(&self, states: &[FourStateAgent]) -> Option<u32> {
        use FourStateAgent::*;
        let mut saw_a = false;
        let mut saw_b = false;
        for s in states {
            match s {
                StrongA | WeakA => saw_a = true,
                StrongB | WeakB => saw_b = true,
            }
            if saw_a && saw_b {
                return None;
            }
        }
        Some(if saw_a { 1 } else { 2 })
    }

    fn encode(&self, state: &FourStateAgent) -> u64 {
        use FourStateAgent::*;
        match state {
            StrongA => 0,
            StrongB => 1,
            WeakA => 2,
            WeakB => 3,
        }
    }

    fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<FourStateAgent> {
        use FourStateAgent::*;
        match *replacement {
            Replacement::Random => Some(match rng.gen_range(0..4u8) {
                0 => StrongA,
                1 => StrongB,
                2 => WeakA,
                _ => WeakB,
            }),
            // Injected agents enter strong (token-carrying) — a fresh vote.
            Replacement::Opinion(1) => Some(StrongA),
            Replacement::Opinion(2) => Some(StrongB),
            Replacement::Opinion(_) | Replacement::Rejoin => None,
        }
    }

    fn opinion_of(&self, state: &FourStateAgent) -> Option<u32> {
        use FourStateAgent::*;
        match state {
            StrongA | WeakA => Some(1),
            StrongB | WeakB => Some(2),
        }
    }
}

/// The same protocol as a transition table over states `0..4` (the
/// [`Protocol::encode`] numbering: 0 = strong A, 1 = strong B, 2 = weak a,
/// 3 = weak b), runnable on the batched configuration-space engines for
/// `n ≥ 10⁸` experiments.
impl pp_engine::TableProtocol for FourState {
    fn states(&self) -> usize {
        4
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        match (a, b) {
            // Strong opposites annihilate into weak opinions.
            (0, 1) => (2, 3),
            (1, 0) => (3, 2),
            // Strong agents convert weak opposites.
            (0, 3) => (0, 2),
            (1, 2) => (1, 3),
            (3, 0) => (2, 0),
            (2, 1) => (3, 1),
            _ => (a, b),
        }
    }

    fn output(&self, counts: &[u64]) -> Option<u32> {
        let saw_a = counts[0] + counts[2] > 0;
        let saw_b = counts[1] + counts[3] > 0;
        match (saw_a, saw_b) {
            (true, true) => None,
            (true, false) => Some(1),
            (false, _) => Some(2),
        }
    }

    fn opinion(&self, s: usize) -> Option<u32> {
        match s {
            0 | 2 => Some(1),
            1 | 3 => Some(2),
            _ => None,
        }
    }

    fn opinion_state(&self, opinion: u32) -> Option<usize> {
        // Injected agents enter strong (token-carrying) — a fresh vote.
        match opinion {
            1 => Some(0),
            2 => Some(1),
            _ => None,
        }
    }
}

/// Initial per-state counts for the table form: `a` strong-A, `b` strong-B.
pub fn four_state_counts(a: u64, b: u64) -> Vec<u64> {
    vec![a, b, 0, 0]
}

/// Token difference `#StrongA − #StrongB`: invariant under all transitions.
pub fn token_difference(states: &[FourStateAgent]) -> i64 {
    states
        .iter()
        .map(|s| match s {
            FourStateAgent::StrongA => 1,
            FourStateAgent::StrongB => -1,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};

    #[test]
    fn exact_at_bias_one_always() {
        for seed in 0..10 {
            let n = 200;
            let states = FourState::initial_states(n / 2 + 1, n / 2 - 1);
            let mut sim = Simulation::new(FourState, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 200_000.0));
            assert_eq!(r.status, RunStatus::Converged, "seed {seed}");
            assert_eq!(r.output, Some(1), "seed {seed}");
        }
    }

    #[test]
    fn minority_never_wins() {
        let n = 500;
        let states = FourState::initial_states(200, 300);
        let mut sim = Simulation::new(FourState, states, 77);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 200_000.0));
        assert_eq!(r.output, Some(2));
    }

    #[test]
    fn token_difference_is_invariant() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut p = FourState;
        let mut rng = SimRng::seed_from_u64(5);
        let mut states = FourState::initial_states(33, 31);
        let d0 = token_difference(&states);
        for _ in 0..50_000 {
            let i = rng.gen_range(0..states.len());
            let mut j = rng.gen_range(0..states.len() - 1);
            if j >= i {
                j += 1;
            }
            let (lo, hi) = states.split_at_mut(i.max(j));
            let (x, y) = if i < j {
                (&mut lo[i], &mut hi[0])
            } else {
                (&mut hi[0], &mut lo[j])
            };
            p.interact(0, x, y, &mut rng);
        }
        assert_eq!(token_difference(&states), d0);
    }

    #[test]
    fn table_form_matches_agent_form() {
        use pp_engine::TableProtocol;
        let mut p = FourState;
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(6);
        let decode = |s: usize| match s {
            0 => FourStateAgent::StrongA,
            1 => FourStateAgent::StrongB,
            2 => FourStateAgent::WeakA,
            _ => FourStateAgent::WeakB,
        };
        for a in 0usize..4 {
            for b in 0usize..4 {
                let (mut x, mut y) = (decode(a), decode(b));
                p.interact(0, &mut x, &mut y, &mut rng);
                let (tx, ty) = TableProtocol::delta(&FourState, a, b, &mut rng);
                assert_eq!(
                    (p.encode(&x), p.encode(&y)),
                    (tx as u64, ty as u64),
                    "mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn batched_four_state_is_exact_at_scale() {
        use pp_engine::BatchSimulation;
        let n = 1_000_000u64;
        // Minority-heavy weak start is irrelevant for the table: strong
        // counts decide. Bias n/100 keeps runtime tame at this n.
        let counts = four_state_counts(n / 2 + n / 100, n / 2 - n / 100);
        let mut sim = BatchSimulation::new(FourState, counts, 19);
        let r = sim.run(&pp_engine::RunOptions {
            max_interactions: 2000 * n,
            check_every: 0,
        });
        assert_eq!(r.status, pp_engine::RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    fn bias_one_is_slow() {
        // Θ(n) parallel time: at n = 512 expect hundreds of time units,
        // far above the O(log n) of cancel/split.
        let n = 512;
        let states = FourState::initial_states(n / 2 + 1, n / 2 - 1);
        let mut sim = Simulation::new(FourState, states, 3);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 1_000_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert!(
            r.parallel_time > 2.0 * (n as f64).ln(),
            "suspiciously fast: {}",
            r.parallel_time
        );
    }
}
