//! Two-opinion majority substrates.
//!
//! * [`cancel_split`] — the workhorse: a w.h.p.-exact majority with
//!   `O(log n)` states and `O(log n)` parallel time, standing in for the
//!   fast path of Doty et al. \[20\]. Algorithm 4's *match* phase runs this
//!   protocol among the player agents.
//! * [`three_state`] — the classic 3-state *approximate* majority \[4\]:
//!   blazingly fast but only correct for bias `Ω(√(n log n))`; the
//!   motivation baseline for why exactness is hard.
//! * [`four_state`] — the classic 4-state *stable exact* majority: always
//!   correct with ≥ 1 bias, but Θ(n) parallel time at bias 1 — the
//!   motivation baseline for why small state counts alone are not enough.
//!
//! Experiment X10 compares all three on the same inputs.

pub mod cancel_split;
pub mod four_state;
pub mod three_state;

pub use cancel_split::{CancelSplit, CancelSplitRun, MajState, Verdict};
pub use four_state::{four_state_counts, FourState};
pub use three_state::ThreeState;
