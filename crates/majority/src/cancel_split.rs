//! Cancel/split exact majority (w.h.p.), in the spirit of \[20\].
//!
//! Agents hold signed values `±2^(−level)` (level `0..=L`, `L = ⌈log₂ n⌉`)
//! or 0. Two rules drive the protocol:
//!
//! * **cancel** — equal-level opposite values annihilate (both → 0);
//! * **split** — an agent *behind the level schedule* halves itself into a
//!   0-agent: both take `(sign, level + 1)`.
//!
//! The level schedule is a fixed-resolution clock: each agent counts its own
//! interactions and must be at level ≥ `⌊t/window⌋`. Both rules preserve the
//! signed sum exactly, so with initial bias `d > 0` the sum stays `d ≥ 1`;
//! if every agent reached level `L` the minority would need
//! `#majority − #minority = d·2^L ≥ n` agents — impossible unless the
//! minority is extinct. The probabilistic part (all minority mass actually
//! cancels; stragglers are rare) is \[20\]'s analysis; we validate it
//! empirically in experiment X10 (success rate at bias 1 vs `n` and vs the
//! `window` constant).
//!
//! After `window·(L + 1)` own interactions an agent *declares*: a surviving
//! sign becomes the output `A`/`B` and spreads epidemically to undeclared
//! agents. A tie (sum 0) cancels everything, nobody declares, and the
//! verdict stays [`Verdict::Tie`] — Algorithm 4's conclusion phase resolves
//! ties in favour of the defender, exactly as the paper prescribes.

use pp_engine::{Protocol, SimRng};

/// The output layer of the majority protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Verdict {
    /// Undeclared (or, as a final result, a tie).
    #[default]
    Tie,
    /// The positive/defender side wins.
    A,
    /// The negative/challenger side wins.
    B,
}

impl Verdict {
    /// Protocol output encoding: 0 = tie/undecided, 1 = A, 2 = B.
    pub fn code(self) -> u32 {
        match self {
            Verdict::Tie => 0,
            Verdict::A => 1,
            Verdict::B => 2,
        }
    }
}

/// Per-agent majority state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MajState {
    /// −1, 0, +1.
    pub sign: i8,
    /// Level `0..=L`; the value magnitude is `2^(−level)`.
    pub level: u8,
    /// Declared output.
    pub out: Verdict,
    /// Own interaction counter (capped at the declare threshold).
    pub t: u32,
}

/// The majority component: level count, window length, and the transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelSplit {
    levels: u8,
    window: u32,
    tail_windows: u32,
}

impl CancelSplit {
    /// A protocol with `levels = L` and the given schedule window. Agents
    /// dwell at the deepest level for 4 extra windows before declaring
    /// (see [`with_tail`](Self::with_tail)).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0, `levels > 62`, or `window` is 0.
    pub fn new(levels: u8, window: u32) -> Self {
        Self::with_tail(levels, window, 4)
    }

    /// Like [`new`](Self::new) with an explicit terminal dwell: agents
    /// declare only after `window·(levels + 1 + tail_windows)` own
    /// interactions, giving same-level stragglers extra chances to cancel.
    pub fn with_tail(levels: u8, window: u32, tail_windows: u32) -> Self {
        assert!((1..=62).contains(&levels));
        assert!(window >= 1);
        Self {
            levels,
            window,
            tail_windows,
        }
    }

    /// Standard configuration for a population of `n` agents:
    /// `L = ⌈log₂ n⌉` (so `2^L ≥ n`, the exactness requirement) and the
    /// given window.
    pub fn for_population(n: usize, window: u32) -> Self {
        Self::new(Self::levels_for(n), window)
    }

    /// Like [`for_population`](Self::for_population) with an explicit
    /// terminal dwell.
    pub fn for_population_with_tail(n: usize, window: u32, tail_windows: u32) -> Self {
        Self::with_tail(Self::levels_for(n), window, tail_windows)
    }

    /// `L = ⌈log₂ n⌉` — the level count guaranteeing `2^L ≥ n`.
    pub fn levels_for(n: usize) -> u8 {
        assert!(n >= 2);
        (usize::BITS - (n - 1).leading_zeros()).max(1) as u8
    }

    /// Number of levels `L`.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Schedule window (own interactions per level).
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Own-interaction count after which an agent declares its output.
    pub fn declare_threshold(&self) -> u32 {
        self.window * (u32::from(self.levels) + 1 + self.tail_windows)
    }

    /// Initial state for an agent starting on side `input`
    /// ([`Verdict::Tie`] = undecided / zero-valued).
    pub fn init_state(&self, input: Verdict) -> MajState {
        let sign = match input {
            Verdict::A => 1,
            Verdict::B => -1,
            Verdict::Tie => 0,
        };
        MajState {
            sign,
            level: 0,
            out: Verdict::Tie,
            t: 0,
        }
    }

    /// The agent's signed value in units of `2^(−L)`.
    pub fn signed_value(&self, s: &MajState) -> i64 {
        i64::from(s.sign) * (1i64 << (self.levels - s.level))
    }

    /// The agent's current verdict (declared output, or pending).
    pub fn verdict(&self, s: &MajState) -> Verdict {
        s.out
    }

    /// One (symmetric) interaction between two participating agents.
    pub fn interact(&self, a: &mut MajState, b: &mut MajState) {
        let thr = self.declare_threshold();
        a.t = (a.t + 1).min(thr);
        b.t = (b.t + 1).min(thr);

        let undeclared = a.out == Verdict::Tie && b.out == Verdict::Tie;
        if undeclared && a.sign != 0 && b.sign != 0 && a.sign == -b.sign {
            if a.level == b.level {
                // Cancel.
                a.sign = 0;
                b.sign = 0;
            } else if a.level + 1 == b.level {
                // Absorb: ±2^(−i) and ∓2^(−i−1) combine into ±2^(−i−1) and
                // a fresh zero — partial cancellation without needing a
                // zero partner, resolving adjacent-level stragglers.
                a.level += 1;
                b.sign = 0;
            } else if b.level + 1 == a.level {
                b.level += 1;
                a.sign = 0;
            }
        } else if undeclared {
            // Split whichever side is behind its schedule, if the partner
            // is a zero-agent.
            let wa = (a.t / self.window).min(u32::from(self.levels)) as u8;
            let wb = (b.t / self.window).min(u32::from(self.levels)) as u8;
            if a.sign != 0 && a.level < wa && b.sign == 0 {
                a.level += 1;
                b.sign = a.sign;
                b.level = a.level;
            } else if b.sign != 0 && b.level < wb && a.sign == 0 {
                b.level += 1;
                a.sign = b.sign;
                a.level = b.level;
            }
        }

        // Declare once past the schedule.
        for s in [&mut *a, &mut *b] {
            if s.t >= thr && s.out == Verdict::Tie && s.sign != 0 {
                s.out = if s.sign > 0 { Verdict::A } else { Verdict::B };
            }
        }
        // Conflicting declarations (possible only when both signs survived
        // to the threshold — a tie, or a failed run): the shallower claim —
        // the one backed by the larger remaining value — wins; the loser
        // reverts to an undeclared zero so the winner's epidemic can paint
        // it. Between equally-deep (or both unbacked) claims the responder
        // yields, a drift that favours the larger declared army. This
        // resolves exact defender/challenger ties to a clean single winner,
        // which is all the tournament needs: a tied pair can never contain
        // the unique global plurality, so either winner is acceptable.
        if a.out != Verdict::Tie && b.out != Verdict::Tie && a.out != b.out {
            if a.sign != 0 && b.sign != 0 && a.sign == -b.sign && a.level == b.level {
                // Declared stragglers with exactly opposite values: cancel
                // outright (value-preserving) and return both to paintable
                // zeros — killing a source pair beats letting their paint
                // armies stalemate.
                for s in [&mut *a, &mut *b] {
                    s.sign = 0;
                    s.out = Verdict::Tie;
                }
            } else {
                let depth = |s: &MajState| {
                    if s.sign != 0 {
                        i32::from(s.level)
                    } else {
                        i32::MAX
                    }
                };
                let loser = if depth(a) > depth(b) {
                    &mut *a
                } else {
                    &mut *b
                };
                loser.sign = 0;
                loser.out = Verdict::Tie;
            }
        }
        // Output epidemic, but only onto zero-valued agents: an agent still
        // carrying a sign must eventually declare *its own* side, otherwise
        // a surviving minority straggler would be silently painted over and
        // a failed run would masquerade as consensus.
        if a.out == Verdict::Tie && a.sign == 0 && b.out != Verdict::Tie {
            a.out = b.out;
        } else if b.out == Verdict::Tie && b.sign == 0 && a.out != Verdict::Tie {
            b.out = a.out;
        }
    }

    /// Census encoding: `(sign, level, out, capped t)` — `O(log n)` distinct
    /// values.
    pub fn encode(&self, s: &MajState) -> u64 {
        let sign = (s.sign + 1) as u64; // 0..=2
        sign << 40 | u64::from(s.level) << 32 | u64::from(s.out.code()) << 24 | u64::from(s.t)
    }
}

/// Standalone protocol over a pure two-opinion population (experiment X10).
#[derive(Debug, Clone)]
pub struct CancelSplitRun {
    cfg: CancelSplit,
}

impl CancelSplitRun {
    /// Standalone majority over `a + b + undecided` agents.
    pub fn new(a: usize, b: usize, undecided: usize, window: u32) -> (Self, Vec<MajState>) {
        let n = a + b + undecided;
        let cfg = CancelSplit::for_population(n, window);
        let mut states = Vec::with_capacity(n);
        states.extend(std::iter::repeat_n(cfg.init_state(Verdict::A), a));
        states.extend(std::iter::repeat_n(cfg.init_state(Verdict::B), b));
        states.extend(std::iter::repeat_n(cfg.init_state(Verdict::Tie), undecided));
        (Self { cfg }, states)
    }

    /// The component configuration.
    pub fn cfg(&self) -> &CancelSplit {
        &self.cfg
    }
}

impl Protocol for CancelSplitRun {
    type State = MajState;

    fn interact(&mut self, _t: u64, a: &mut MajState, b: &mut MajState, _rng: &mut SimRng) {
        self.cfg.interact(a, b);
    }

    fn converged(&self, states: &[MajState]) -> Option<u32> {
        let thr = self.cfg.declare_threshold();
        let first = states[0].out;
        states
            .iter()
            .all(|s| s.t >= thr && s.out == first)
            .then_some(first.code())
    }

    fn encode(&self, state: &MajState) -> u64 {
        self.cfg.encode(state)
    }
}

/// Total signed value of a configuration in units of `2^(−L)` — invariant
/// under every interaction (the exactness backbone).
pub fn total_value(cfg: &CancelSplit, states: &[MajState]) -> i64 {
    states.iter().map(|s| cfg.signed_value(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};

    #[test]
    fn level_count_covers_population() {
        assert_eq!(CancelSplit::for_population(1000, 8).levels(), 10);
        assert_eq!(CancelSplit::for_population(1024, 8).levels(), 10);
        assert_eq!(CancelSplit::for_population(1025, 8).levels(), 11);
    }

    #[test]
    fn cancel_rule_annihilates_equal_levels() {
        let cfg = CancelSplit::new(4, 100);
        let mut a = MajState {
            sign: 1,
            level: 2,
            out: Verdict::Tie,
            t: 0,
        };
        let mut b = MajState {
            sign: -1,
            level: 2,
            out: Verdict::Tie,
            t: 0,
        };
        cfg.interact(&mut a, &mut b);
        assert_eq!((a.sign, b.sign), (0, 0));
    }

    #[test]
    fn adjacent_levels_absorb() {
        let cfg = CancelSplit::new(4, 100);
        let mut a = MajState {
            sign: 1,
            level: 1,
            out: Verdict::Tie,
            t: 0,
        };
        let mut b = MajState {
            sign: -1,
            level: 2,
            out: Verdict::Tie,
            t: 0,
        };
        let before = cfg.signed_value(&a) + cfg.signed_value(&b);
        cfg.interact(&mut a, &mut b);
        // +2^(−1) absorbs −2^(−2): survivor +2^(−2), partner zeroed.
        assert_eq!((a.sign, a.level, b.sign), (1, 2, 0));
        assert_eq!(cfg.signed_value(&a) + cfg.signed_value(&b), before);
    }

    #[test]
    fn distant_levels_do_not_interact() {
        let cfg = CancelSplit::new(4, 100);
        let mut a = MajState {
            sign: 1,
            level: 0,
            out: Verdict::Tie,
            t: 0,
        };
        let mut b = MajState {
            sign: -1,
            level: 3,
            out: Verdict::Tie,
            t: 0,
        };
        cfg.interact(&mut a, &mut b);
        assert_eq!((a.sign, a.level, b.sign, b.level), (1, 0, -1, 3));
    }

    #[test]
    fn split_halves_into_zero_agent() {
        let cfg = CancelSplit::new(4, 1); // every interaction advances the window
        let mut a = MajState {
            sign: 1,
            level: 0,
            out: Verdict::Tie,
            t: 0,
        };
        let mut b = MajState {
            sign: 0,
            level: 0,
            out: Verdict::Tie,
            t: 0,
        };
        // After the bump t=1 ⇒ window 1 ⇒ a (level 0) is behind and splits.
        cfg.interact(&mut a, &mut b);
        assert_eq!(
            a,
            MajState {
                sign: 1,
                level: 1,
                out: Verdict::Tie,
                t: 1
            }
        );
        assert_eq!(
            b,
            MajState {
                sign: 1,
                level: 1,
                out: Verdict::Tie,
                t: 1
            }
        );
    }

    #[test]
    fn interactions_preserve_total_value() {
        use rand::Rng;
        use rand::SeedableRng;
        // Window chosen so splits happen but nobody reaches the declare
        // threshold within the test: the signed sum is invariant for the
        // whole undeclared epoch (declaration-conflict resolution may later
        // discard straggler values by design).
        let cfg = CancelSplit::new(6, 30);
        let mut rng = SimRng::seed_from_u64(2024);
        let mut states: Vec<MajState> = (0..64)
            .map(|i| {
                cfg.init_state(match i % 3 {
                    0 => Verdict::A,
                    1 => Verdict::B,
                    _ => Verdict::Tie,
                })
            })
            .collect();
        let before = total_value(&cfg, &states);
        for _ in 0..2_000 {
            let i = rng.gen_range(0..states.len());
            let mut j = rng.gen_range(0..states.len() - 1);
            if j >= i {
                j += 1;
            }
            let (lo, hi) = states.split_at_mut(i.max(j));
            let (x, y) = if i < j {
                (&mut lo[i], &mut hi[0])
            } else {
                (&mut hi[0], &mut lo[j])
            };
            cfg.interact(x, y);
        }
        assert!(
            states.iter().all(|s| s.out == Verdict::Tie),
            "test invalid: an agent declared within the undeclared epoch"
        );
        assert_eq!(total_value(&cfg, &states), before);
    }

    #[test]
    fn exact_majority_at_bias_one() {
        // 501 vs 500 with no undecideds: the paper's hardest case.
        let (proto, states) = CancelSplitRun::new(501, 500, 0, 12);
        let n = states.len();
        let mut sim = Simulation::new(proto, states, 4);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 30_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(Verdict::A.code()));
    }

    #[test]
    fn exact_minority_side_wins_when_larger() {
        let (proto, states) = CancelSplitRun::new(500, 501, 99, 12);
        let n = states.len();
        let mut sim = Simulation::new(proto, states, 8);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 30_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(Verdict::B.code()));
    }

    #[test]
    fn tie_resolves_to_a_single_clean_side() {
        // An exact tie either cancels completely (verdict `Tie`) or the
        // conflict-resolution drift crowns one side — what matters for the
        // tournament is that the outcome is *unanimous*, never a mixed
        // population (a tied defender/challenger pair can never contain the
        // global plurality, so either winner is sound).
        for seed in [15, 16, 17, 18] {
            let (proto, states) = CancelSplitRun::new(500, 500, 100, 12);
            let n = states.len();
            let mut sim = Simulation::new(proto, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 30_000.0));
            assert_eq!(r.status, RunStatus::Converged, "seed {seed}");
            assert!(r.output.is_some());
        }
    }

    #[test]
    fn runtime_is_logarithmic() {
        let n = 4096;
        let (proto, states) = CancelSplitRun::new(n / 2 + 1, n / 2 - 1, 0, 12);
        let mut sim = Simulation::new(proto, states, 21);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 50_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        // window·(L+1) own interactions at ~2 per parallel time unit, plus
        // the output epidemic: well under 60·ln n.
        let bound = 60.0 * (n as f64).ln();
        assert!(
            r.parallel_time < bound,
            "time {} vs bound {bound}",
            r.parallel_time
        );
    }
}
