//! The 3-state approximate majority of Angluin–Aspnes–Eisenstat \[4\].
//!
//! States: opinion `A`, opinion `B`, or blank. An opinionated initiator
//! blanks a responder of the opposite opinion and recruits a blank
//! responder. Converges in `O(log n)` parallel time w.h.p., but identifies
//! the true majority only when the initial bias is `Ω(√(n·log n))` — the
//! canonical example of *approximate* (non-exact) majority, included as the
//! baseline the paper's protocols are measured against (experiment X13
//! flavour for k = 2).

use rand::Rng;

use pp_engine::{Protocol, Replacement, SimRng};

/// 3-state agent: 0 = blank, 1 = A, 2 = B.
pub type ThreeStateAgent = u8;

/// Blank (undecided) state.
pub const BLANK: ThreeStateAgent = 0;
/// Opinion A.
pub const A: ThreeStateAgent = 1;
/// Opinion B.
pub const B: ThreeStateAgent = 2;

/// The 3-state approximate-majority protocol.
#[derive(Debug, Clone, Default)]
pub struct ThreeState;

impl ThreeState {
    /// Initial configuration with `a` supporters of A, `b` of B.
    pub fn initial_states(a: usize, b: usize) -> Vec<ThreeStateAgent> {
        let mut v = Vec::with_capacity(a + b);
        v.extend(std::iter::repeat_n(A, a));
        v.extend(std::iter::repeat_n(B, b));
        v
    }
}

impl Protocol for ThreeState {
    type State = ThreeStateAgent;

    #[inline]
    fn interact(&mut self, _t: u64, a: &mut u8, b: &mut u8, _rng: &mut SimRng) {
        match (*a, *b) {
            (A, B) | (B, A) => *b = BLANK,
            (A, BLANK) => *b = A,
            (B, BLANK) => *b = B,
            _ => {}
        }
    }

    fn converged(&self, states: &[u8]) -> Option<u32> {
        let first = states[0];
        (first != BLANK && states.iter().all(|&s| s == first)).then(|| u32::from(first))
    }

    fn encode(&self, state: &u8) -> u64 {
        u64::from(*state)
    }

    fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<u8> {
        match *replacement {
            Replacement::Random => Some(rng.gen_range(0..3u8)),
            Replacement::Opinion(o @ (1 | 2)) => Some(o as u8),
            Replacement::Opinion(_) | Replacement::Rejoin => None,
        }
    }

    fn opinion_of(&self, state: &u8) -> Option<u32> {
        (*state != BLANK).then(|| u32::from(*state))
    }
}

/// The same protocol as a deterministic transition table, runnable on the
/// batched configuration-space engine (`pp_engine::BatchSimulation`) for
/// million-agent experiments.
impl pp_engine::TableProtocol for ThreeState {
    fn states(&self) -> usize {
        3
    }

    fn is_deterministic(&self) -> bool {
        true
    }

    fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        let (a8, b8) = (a as u8, b as u8);
        match (a8, b8) {
            (A, B) | (B, A) => (a, usize::from(BLANK)),
            (A, BLANK) => (a, usize::from(A)),
            (B, BLANK) => (a, usize::from(B)),
            _ => (a, b),
        }
    }

    fn output(&self, counts: &[u64]) -> Option<u32> {
        if counts[usize::from(BLANK)] != 0 {
            return None;
        }
        match (counts[usize::from(A)], counts[usize::from(B)]) {
            (_, 0) => Some(u32::from(A)),
            (0, _) => Some(u32::from(B)),
            _ => None,
        }
    }

    fn opinion(&self, s: usize) -> Option<u32> {
        (s != usize::from(BLANK)).then_some(s as u32)
    }

    fn opinion_state(&self, opinion: u32) -> Option<usize> {
        matches!(opinion, 1 | 2).then_some(opinion as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{BatchSimulation, RunOptions, RunStatus, Simulation};

    #[test]
    fn large_bias_picks_the_majority() {
        let n = 4096;
        // bias n/4 >> sqrt(n log n) ≈ 185.
        let states = ThreeState::initial_states(n / 2 + n / 8, n / 2 - n / 8);
        let mut sim = Simulation::new(ThreeState, states, 31);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 2000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(u32::from(A)));
    }

    #[test]
    fn convergence_is_fast() {
        let n = 8192;
        let states = ThreeState::initial_states(n * 3 / 4, n / 4);
        let mut sim = Simulation::new(ThreeState, states, 7);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 2000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert!(
            r.parallel_time < 15.0 * (n as f64).ln(),
            "time {}",
            r.parallel_time
        );
    }

    #[test]
    fn bias_one_is_a_coin_flip() {
        // Not a correctness guarantee — exactly the paper's point. Over many
        // trials at bias 1 the loser must win a non-trivial fraction.
        let n = 256;
        let mut wrong = 0;
        let trials = 40;
        for seed in 0..trials {
            let states = ThreeState::initial_states(n / 2 + 1, n / 2 - 1);
            let mut sim = Simulation::new(ThreeState, states, seed);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 5000.0));
            if r.output == Some(u32::from(B)) {
                wrong += 1;
            }
        }
        assert!(
            wrong > 5,
            "3-state majority should often fail at bias 1, failed {wrong}/{trials}"
        );
    }

    #[test]
    fn transitions_never_resurrect_a_decided_population() {
        let mut p = ThreeState;
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(3);
        let mut a = A;
        let mut b = A;
        p.interact(0, &mut a, &mut b, &mut rng);
        assert_eq!((a, b), (A, A));
    }

    #[test]
    fn table_form_matches_agent_form() {
        use pp_engine::TableProtocol;
        let mut p = ThreeState;
        let t = ThreeState;
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(4);
        for a in 0u8..3 {
            for b in 0u8..3 {
                let (mut x, mut y) = (a, b);
                p.interact(0, &mut x, &mut y, &mut rng);
                let (tx, ty) = t.delta(usize::from(a), usize::from(b), &mut rng);
                assert_eq!(
                    (usize::from(x), usize::from(y)),
                    (tx, ty),
                    "mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn million_agent_majority_via_batch_engine() {
        let n = 1_000_000u64;
        let mut sim = BatchSimulation::new(ThreeState, vec![0, n / 2 + n / 8, n / 2 - n / 8], 7);
        let r = sim.run(&RunOptions {
            max_interactions: 200 * n,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(u32::from(A)));
        assert!(r.parallel_time < 15.0 * (n as f64).ln());
    }
}
