//! Elementary population dynamics used as building blocks by the paper's
//! protocols.
//!
//! * [`epidemic`] — the one-way epidemic (broadcast by infection), the
//!   paper's tool for disseminating `phase = 0`, the winner bit, the
//!   challenger token, … Completes in `log₂ n + O(log n)` parallel time
//!   w.h.p. [5].
//! * [`load_balance`] — the discrete averaging protocol of [12, 28]:
//!   a pair holding loads `(a, b)` rebalances to `(⌊(a+b)/2⌋, ⌈(a+b)/2⌉)`.
//!   After `O(n·log n)` interactions all loads are within ±1 of the average
//!   w.h.p.; Algorithm 4's *cancellation* phase is exactly this protocol on
//!   signed token counts.

pub mod epidemic;
pub mod load_balance;

pub use epidemic::Epidemic;
pub use load_balance::{balance, LoadBalance};
