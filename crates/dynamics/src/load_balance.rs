//! Discrete load balancing by pairwise floor/ceil averaging [12, 28].

use pp_engine::{Protocol, SimRng};

/// One rebalancing step: `(a, b) → (⌊(a+b)/2⌋, ⌈(a+b)/2⌉)`.
///
/// The sum is preserved exactly, which is the invariant Algorithm 4's
/// cancellation phase relies on: the signed token total
/// `L = x_defender − x_challenger` survives the phase.
#[inline]
pub fn balance(a: i64, b: i64) -> (i64, i64) {
    let sum = a + b;
    // Rust's `/` truncates toward zero; emulate floor/ceil for negatives.
    let floor = sum.div_euclid(2);
    let ceil = sum - floor;
    (floor, ceil)
}

/// Standalone load-balancing protocol over signed integer loads, used to
/// measure the convergence constant (experiment X12): after `c·n·ln n`
/// interactions the discrepancy `max − min` is at most 1 w.h.p.
#[derive(Debug, Clone, Default)]
pub struct LoadBalance;

impl Protocol for LoadBalance {
    type State = i64;

    #[inline]
    fn interact(&mut self, _t: u64, a: &mut i64, b: &mut i64, _rng: &mut SimRng) {
        let (x, y) = balance(*a, *b);
        *a = x;
        *b = y;
    }

    fn converged(&self, states: &[i64]) -> Option<u32> {
        // [12, 28] guarantee every load within ±1 of the average after
        // O(n·log n) interactions, i.e. a discrepancy of at most 2. The last
        // step down to discrepancy 1 has a slow Θ(n) tail (a lone `avg+1`
        // must meet a lone `avg−1`), so the paper — and this predicate —
        // settle for the ±1 band.
        let min = *states.iter().min().expect("non-empty");
        let max = *states.iter().max().expect("non-empty");
        (max - min <= 2).then_some(0)
    }

    fn encode(&self, state: &i64) -> u64 {
        // Loads in the paper's use are confined to [−10, 10]; widen a little
        // for the standalone experiments.
        (*state).clamp(-1 << 20, 1 << 20) as u64 ^ (1 << 63)
    }
}

/// Discrepancy (`max − min`) of a configuration; the quantity bounded by
/// [12, 28].
pub fn discrepancy(states: &[i64]) -> i64 {
    let min = *states.iter().min().expect("non-empty");
    let max = *states.iter().max().expect("non-empty");
    max - min
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};

    #[test]
    fn balance_preserves_sum_and_orders_floor_ceil() {
        for (a, b) in [
            (5, 2),
            (-5, 2),
            (-3, -4),
            (7, 7),
            (0, -1),
            (i64::from(i32::MAX), 1),
        ] {
            let (x, y) = balance(a, b);
            assert_eq!(x + y, a + b, "sum broken for ({a},{b})");
            assert!(
                y - x <= 1 && y >= x,
                "floor/ceil broken for ({a},{b}): ({x},{y})"
            );
        }
    }

    #[test]
    fn balancing_converges_to_band() {
        let mut states = vec![0i64; 1000];
        states[0] = 500; // one heavily loaded agent
        let mut sim = Simulation::new(LoadBalance, states, 3);
        let r = sim.run(&RunOptions::with_parallel_time_budget(1000, 2000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert!(discrepancy(sim.states()) <= 2);
        // Sum preserved: 500 over 1000 agents → loads near 0.5.
        let sum: i64 = sim.states().iter().sum();
        assert_eq!(sum, 500);
        assert!(sim.states().iter().all(|&s| (-1..=2).contains(&s)));
    }

    #[test]
    fn negative_loads_cancel() {
        // +1s and −1s in equal measure average to 0 everywhere.
        let mut states = vec![1i64; 512];
        states.iter_mut().skip(256).for_each(|s| *s = -1);
        let mut sim = Simulation::new(LoadBalance, states, 9);
        let r = sim.run(&RunOptions::with_parallel_time_budget(512, 2000.0));
        assert_eq!(r.status, RunStatus::Converged);
        let sum: i64 = sim.states().iter().sum();
        assert_eq!(sum, 0);
        assert!(sim.states().iter().all(|&s| (-1..=1).contains(&s)));
        assert!(discrepancy(sim.states()) <= 2);
    }

    #[test]
    fn convergence_time_is_quasilinear() {
        // c·ln n parallel time with a modest constant.
        let n = 4096;
        let mut states = vec![0i64; n];
        states[0] = n as i64;
        let mut sim = Simulation::new(LoadBalance, states, 1);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 10_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert!(
            r.parallel_time < 40.0 * (n as f64).ln(),
            "time {}",
            r.parallel_time
        );
    }
}
