//! One-way epidemic broadcast.

use pp_engine::{Protocol, SimRng};

/// The one-way epidemic: an infected agent infects its interaction partner
/// regardless of direction. Starting from a single infected agent, all `n`
/// agents are infected within `log₂ n + ln n + O(1)` parallel time w.h.p.
/// (Angluin, Aspnes, Eisenstat 2008).
///
/// The standalone protocol exists to *measure* the broadcast-time constant
/// (experiment X12), which in turn justifies the per-phase length constants
/// used by the tournament clock.
#[derive(Debug, Clone, Default)]
pub struct Epidemic;

impl Epidemic {
    /// Initial configuration: `sources` infected agents out of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is zero or exceeds `n`.
    pub fn initial_states(n: usize, sources: usize) -> Vec<bool> {
        assert!(sources >= 1 && sources <= n);
        let mut states = vec![false; n];
        for s in states.iter_mut().take(sources) {
            *s = true;
        }
        states
    }
}

impl Protocol for Epidemic {
    type State = bool;

    #[inline]
    fn interact(&mut self, _t: u64, a: &mut bool, b: &mut bool, _rng: &mut SimRng) {
        let infected = *a || *b;
        *a = infected;
        *b = infected;
    }

    fn converged(&self, states: &[bool]) -> Option<u32> {
        states.iter().all(|&s| s).then_some(1)
    }

    fn encode(&self, state: &bool) -> u64 {
        u64::from(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};

    #[test]
    fn epidemic_reaches_everyone() {
        let states = Epidemic::initial_states(4096, 1);
        let mut sim = Simulation::new(Epidemic, states, 17);
        let r = sim.run(&RunOptions::default());
        assert_eq!(r.status, RunStatus::Converged);
    }

    #[test]
    fn epidemic_time_is_logarithmic() {
        // log2(4096) + ln(4096) ≈ 20.3; allow generous slack.
        let states = Epidemic::initial_states(4096, 1);
        let mut sim = Simulation::new(Epidemic, states, 23);
        let r = sim.run(&RunOptions::default());
        assert!(
            r.parallel_time > 8.0 && r.parallel_time < 60.0,
            "parallel time {}",
            r.parallel_time
        );
    }

    #[test]
    fn more_sources_is_faster() {
        let time = |sources| {
            let states = Epidemic::initial_states(8192, sources);
            let mut sim = Simulation::new(Epidemic, states, 5);
            sim.run(&RunOptions::default()).parallel_time
        };
        assert!(time(512) < time(1));
    }

    #[test]
    #[should_panic]
    fn zero_sources_rejected() {
        let _ = Epidemic::initial_states(10, 0);
    }
}
