//! Sample summaries.

/// Mean, spread and quantiles of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Corrected (n − 1) standard deviation; 0 for singleton samples.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Summarise a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile_sorted(&sorted, 0.5),
        }
    }

    /// Quantile `q ∈ [0, 1]` with linear interpolation.
    pub fn quantile(values: &[f64], q: f64) -> f64 {
        assert!(!values.is_empty());
        assert!((0.0..=1.0).contains(&q));
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        quantile_sorted(&sorted, q)
    }

    /// Coefficient of variation (std / mean); `NaN` for zero mean.
    pub fn cov(&self) -> f64 {
        self.std / self.mean
    }

    /// Half-width of an approximate 95% normal confidence interval on the
    /// mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std / (self.n as f64).sqrt()
    }
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [0.0, 10.0];
        assert!((Summary::quantile(&v, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(Summary::quantile(&v, 0.0), 0.0);
        assert_eq!(Summary::quantile(&v, 1.0), 10.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }
}
