//! Aligned console tables with CSV export.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table. Used by every experiment binary to print
/// the rows recorded in `EXPERIMENTS.md` and to persist them as CSV under
/// `results/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers — the table's output schema, recorded verbatim
    /// in experiment run manifests.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{cell:>w$}", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// CSV rendering (headers + rows, comma-separated; cells containing
    /// commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV rendering to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Format a float with a sensible number of significant digits for tables.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "time"]);
        t.push(vec!["100".into(), "1.5".into()]);
        t.push(vec!["100000".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("100000"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows, title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("c", &["a", "b"]);
        t.push(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("c", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting_buckets() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(1.2345), "1.234");
    }
}
