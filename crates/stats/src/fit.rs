//! Least-squares scaling-law fits.
//!
//! The experiments validate statements like "parallel time = O(k·log n)" by
//! fitting the measured times against the predicted functional form and
//! reporting the constant and the coefficient of determination R². A good
//! reproduction shows R² close to 1 and a stable constant across the sweep.

/// A least-squares fit `y ≈ a·x + b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope.
    pub a: f64,
    /// Intercept (0 for through-origin fits).
    pub b: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fit `y ≈ a·x` (no intercept).
///
/// # Panics
///
/// Panics on empty or mismatched inputs, or if all `x` are zero.
pub fn fit_through_origin(x: &[f64], y: &[f64]) -> Fit {
    assert_eq!(x.len(), y.len());
    assert!(!x.is_empty());
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| xi * yi).sum();
    let sxx: f64 = x.iter().map(|xi| xi * xi).sum();
    assert!(sxx > 0.0, "cannot fit through origin with all-zero x");
    let a = sxy / sxx;
    Fit {
        a,
        b: 0.0,
        r2: r_squared(y, &x.iter().map(|xi| a * xi).collect::<Vec<_>>()),
    }
}

/// Fit `y ≈ a·x + b`.
///
/// # Panics
///
/// Panics on empty or mismatched inputs, or if `x` is constant.
pub fn fit_affine(x: &[f64], y: &[f64]) -> Fit {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2);
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|xi| (xi - mx).powi(2)).sum();
    assert!(sxx > 0.0, "cannot fit affine with constant x");
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let a = sxy / sxx;
    let b = my - a * mx;
    Fit {
        a,
        b,
        r2: r_squared(y, &x.iter().map(|xi| a * xi + b).collect::<Vec<_>>()),
    }
}

fn r_squared(y: &[f64], pred: &[f64]) -> f64 {
    let my = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|yi| (yi - my).powi(2)).sum();
    let ss_res: f64 = y.iter().zip(pred).map(|(yi, pi)| (yi - pi).powi(2)).sum();
    if ss_tot == 0.0 {
        // Constant y: perfect iff residuals vanish.
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_through_origin() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let f = fit_through_origin(&x, &y);
        assert!((f.a - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_affine_line() {
        let x = [0.0, 1.0, 2.0];
        let y = [1.0, 3.0, 5.0];
        let f = fit_affine(&x, &y);
        assert!((f.a - 2.0).abs() < 1e-12);
        assert!((f.b - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_data_has_r2_below_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.1, 3.9, 6.2, 7.8];
        let f = fit_affine(&x, &y);
        assert!(f.r2 > 0.99 && f.r2 < 1.0);
    }

    #[test]
    fn misspecified_model_scores_poorly() {
        // Quadratic data against a through-origin line.
        let x: Vec<f64> = (1..=8).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let linear = fit_through_origin(&x, &y);
        let quadratic = fit_through_origin(&x.iter().map(|v| v * v).collect::<Vec<_>>(), &y);
        assert!(quadratic.r2 > linear.r2);
        assert!((quadratic.r2 - 1.0).abs() < 1e-12);
    }
}
