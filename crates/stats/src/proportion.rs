//! Confidence intervals for success probabilities.

/// Wilson score interval for a binomial proportion at confidence `z`
/// (use `z = 1.96` for 95%). Returns `(low, high)`.
///
/// Chosen over the normal approximation because the exactness experiments
/// routinely observe 0 failures out of `t` trials, where the normal interval
/// collapses to a point and the Wilson interval stays informative.
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials`.
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson interval needs at least one trial");
    assert!(successes <= trials);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_successes_interval_excludes_low_probabilities() {
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.95, "lo = {lo}");
        // hi is exactly 1 up to floating-point rounding of
        // (centre + margin) / denom.
        assert!(hi > 1.0 - 1e-12, "hi = {hi}");
    }

    #[test]
    fn half_successes_centres_near_half() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && hi > 0.5);
        assert!((lo - 0.4038).abs() < 0.01, "lo = {lo}");
        assert!((hi - 0.5962).abs() < 0.01, "hi = {hi}");
    }

    #[test]
    fn zero_successes_includes_zero() {
        let (lo, hi) = wilson_interval(0, 20, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.25);
    }

    #[test]
    fn interval_is_ordered_and_bounded() {
        for s in 0..=10 {
            let (lo, hi) = wilson_interval(s, 10, 1.96);
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
            assert!(lo <= hi);
        }
    }
}
