//! Statistics and reporting for the experiment harness.
//!
//! Everything the benches need to turn ensembles of [`f64`] measurements
//! into the tables recorded in `EXPERIMENTS.md`:
//!
//! * [`Summary`] — mean / std / quantiles of a sample,
//! * [`wilson_interval`] — confidence intervals on success probabilities,
//! * [`fit`] — least-squares scaling-law fits (`y ≈ a·x`, `y ≈ a·x + b`)
//!   with coefficients of determination,
//! * [`Table`] — aligned console tables with CSV export.

pub mod fit;
pub mod proportion;
pub mod summary;
pub mod table;

pub use fit::{fit_affine, fit_through_origin, Fit};
pub use proportion::wilson_interval;
pub use summary::Summary;
pub use table::Table;
