//! Exact binomial and multinomial sampling for batch tallies.
//!
//! The batched engine turns a batch of `ℓ` interactions into per-state
//! participant counts in one shot: a multinomial over the configuration is
//! decomposed into conditional binomials (`X_s ~ Bin(remaining, w_s/rest)`).
//! The binomial sampler picks its algorithm by regime:
//!
//! * `n ≤ 16` — inverted geometric skips (`O(n·p + 1)` log-uniforms, never
//!   a per-trial coin flip),
//! * `n·p < 10` — BINV-style inversion from zero (`O(n·p)` expected),
//! * otherwise — inversion from the mode, walking outward (`O(√(n·p))`
//!   expected, the reason batch tallies cost `O(√ℓ)` rather than `O(ℓ)`).
//!
//! All branches invert a single uniform against exact pmf recurrences; the
//! only approximation is `f64` rounding (ln-factorials via a 16-entry exact
//! table plus a Stirling series accurate to ~1e-12 beyond it).
//!
//! # Batch forms
//!
//! The tally path often needs many draws that share one success
//! probability (the per-pair-type lie splits of a Byzantine batch, the
//! `p = ½` halves of a split forgery). [`binomial_batch`] processes those
//! as one array pass with the transcendental setup (`ln p`, `ln q`,
//! `p/q`) hoisted out of the per-lane loop; each lane then runs the same
//! branch-light pmf recurrence the scalar sampler would, consuming the
//! same uniforms in lane order, so the `scalar-samplers` fallback build
//! (`--features scalar-samplers`, one scalar call per lane) draws a
//! bit-identical stream. Exact-distribution tests pin both paths to each
//! other and to the closed-form pmf.

use rand::Rng;

use crate::protocol::SimRng;

/// `ln(k!)` — exact table for `k < 16`, Stirling series beyond.
#[inline]
fn ln_factorial(k: u64) -> f64 {
    const TABLE: [f64; 16] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
    ];
    if k < 16 {
        TABLE[k as usize]
    } else {
        let x = k as f64;
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x * x * x)
    }
}

/// `ln P[Bin(n, p) = k]`, with `ln p` / `ln q` pre-hoisted so batch
/// callers pay the transcendentals once per shared `p`.
#[inline]
fn ln_binom_pmf(n: u64, k: u64, ln_p: f64, ln_q: f64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
        + k as f64 * ln_p
        + (n - k) as f64 * ln_q
}

/// The `p`-dependent constants every binomial regime needs, computed once
/// so batch draws sharing a success probability pay the transcendentals
/// (`ln p`, `ln q`, the odds ratio) once per *batch* instead of once per
/// *draw*. Holds the half-probability (`p ≤ 0.5`); callers mirror.
struct BinomialSetup {
    p: f64,
    q: f64,
    /// Odds `p / q`.
    s: f64,
    ln_p: f64,
    ln_q: f64,
}

impl BinomialSetup {
    fn new(p: f64) -> Self {
        debug_assert!(p > 0.0 && p <= 0.5, "p = {p}");
        let q = 1.0 - p;
        Self {
            p,
            q,
            s: p / q,
            ln_p: p.ln(),
            ln_q: q.ln(),
        }
    }
}

/// Draw `X ~ Binomial(n, p)`.
pub fn binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "p = {p}");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        n - binomial_half(rng, n, &BinomialSetup::new(1.0 - p))
    } else {
        binomial_half(rng, n, &BinomialSetup::new(p))
    }
}

/// Draw `out[i] ~ Binomial(ns[i], p)` for one shared success probability —
/// the array pass over a batch's per-pair-type draws. The setup is hoisted
/// once; each lane consumes exactly the uniforms the scalar [`binomial`]
/// would, in lane order, so this is stream-identical to the
/// `scalar-samplers` fallback.
#[cfg(not(feature = "scalar-samplers"))]
pub fn binomial_batch(rng: &mut SimRng, ns: &[u64], p: f64, out: &mut Vec<u64>) {
    debug_assert!((0.0..=1.0).contains(&p), "p = {p}");
    out.clear();
    if p <= 0.0 {
        out.resize(ns.len(), 0);
        return;
    }
    if p >= 1.0 {
        out.extend_from_slice(ns);
        return;
    }
    let mirror = p > 0.5;
    let setup = BinomialSetup::new(if mirror { 1.0 - p } else { p });
    for &n in ns {
        let x = if n == 0 {
            0
        } else {
            binomial_half(rng, n, &setup)
        };
        out.push(if mirror { n - x } else { x });
    }
}

/// Scalar fallback for [`binomial_batch`]: one [`binomial`] call per lane.
/// Same regimes, same recurrences, same uniforms — only the setup
/// hoisting differs, and setup constants are pure functions of `p`, so
/// both builds draw bit-identical streams.
#[cfg(feature = "scalar-samplers")]
pub fn binomial_batch(rng: &mut SimRng, ns: &[u64], p: f64, out: &mut Vec<u64>) {
    out.clear();
    out.extend(ns.iter().map(|&n| binomial(rng, n, p)));
}

/// Binomial for `p ≤ 0.5` (pre-hoisted setup).
fn binomial_half(rng: &mut SimRng, n: u64, setup: &BinomialSetup) -> u64 {
    if n <= 16 {
        return binomial_geometric_skip(rng, n, setup);
    }
    if (n as f64) * setup.p < 10.0 {
        binomial_binv(rng, n, setup)
    } else {
        binomial_mode_inversion(rng, n, setup)
    }
}

/// Tiny-`n` binomial by inverted geometric skips: instead of one Bernoulli
/// coin per trial (`O(n)` uniforms), jump straight to the next success —
/// the failure run-length before it is `Geometric(p)`, sampled by
/// inverting one uniform as `⌊ln U / ln q⌋`. Expected `n·p + 1` uniforms,
/// and the loop body is branch-light: no per-trial accept test, just the
/// skip-exhausts-the-remaining-trials exit.
fn binomial_geometric_skip(rng: &mut SimRng, n: u64, setup: &BinomialSetup) -> u64 {
    let mut successes = 0u64;
    let mut trials = 0u64; // trials consumed so far
    loop {
        let u: f64 = rng.gen();
        // `P(skip ≥ j) = P(U < q^j) = q^j` — exactly geometric. `u = 0`
        // gives `skip = ∞` (no success in any finite tail), which the
        // float comparison below handles without a cast.
        let skip = (u.ln() / setup.ln_q).floor();
        if skip >= (n - trials) as f64 {
            return successes;
        }
        trials += skip as u64 + 1;
        successes += 1;
        if trials >= n {
            return successes;
        }
    }
}

/// BINV: invert a uniform against the pmf starting from zero. Expected
/// `O(n·p)` steps; requires `q^n` representable, guaranteed by the caller's
/// `n·p < 10`, `p ≤ 0.5` regime (`q^n ≥ e^{-20}`).
fn binomial_binv(rng: &mut SimRng, n: u64, setup: &BinomialSetup) -> u64 {
    let s = setup.s;
    let a = (n as f64 + 1.0) * s;
    let f0 = (n as f64 * setup.ln_q).exp();
    loop {
        let mut f = f0;
        let mut u: f64 = rng.gen();
        let mut k = 0u64;
        loop {
            if u < f {
                return k;
            }
            u -= f;
            k += 1;
            if k > n || f <= f64::MIN_POSITIVE {
                // Float tail rounding left `u` unserved (probability
                // ~1e-15): redraw.
                break;
            }
            f *= a / k as f64 - s;
        }
    }
}

/// Inversion from the mode, walking outward on both sides. Expected
/// `O(σ) = O(√(n·p·q))` steps; the two-sided walk is branch-light — each
/// iteration is two pmf-ratio multiplies and two compare-subtract steps.
fn binomial_mode_inversion(rng: &mut SimRng, n: u64, setup: &BinomialSetup) -> u64 {
    let (p, q) = (setup.p, setup.q);
    let mode = (((n + 1) as f64) * p).floor().min(n as f64) as u64;
    let pmf_mode = ln_binom_pmf(n, mode, setup.ln_p, setup.ln_q).exp();
    loop {
        let mut u: f64 = rng.gen();
        if u < pmf_mode {
            return mode;
        }
        u -= pmf_mode;
        let (mut lo, mut f_lo) = (mode, pmf_mode);
        let (mut hi, mut f_hi) = (mode, pmf_mode);
        loop {
            let mut moved = false;
            if hi < n {
                f_hi *= (n - hi) as f64 * p / ((hi + 1) as f64 * q);
                hi += 1;
                if u < f_hi {
                    return hi;
                }
                u -= f_hi;
                moved = true;
            }
            if lo > 0 {
                f_lo *= lo as f64 * q / ((n - lo + 1) as f64 * p);
                lo -= 1;
                if u < f_lo {
                    return lo;
                }
                u -= f_lo;
                moved = true;
            }
            if !moved {
                // Support exhausted with residual mass from rounding
                // (probability ~1e-15): redraw.
                break;
            }
        }
    }
}

/// `ln P[Poisson(mean) = k]`.
#[inline]
fn ln_poisson_pmf(mean: f64, k: u64) -> f64 {
    k as f64 * mean.ln() - mean - ln_factorial(k)
}

/// Draw `X ~ Poisson(mean)`.
///
/// Knuth's product-of-uniforms for small means (`O(mean)` uniforms),
/// inversion from the mode walking outward for large ones (`O(√mean)`
/// expected) — the same split [`binomial`] uses.
pub fn poisson(rng: &mut SimRng, mean: f64) -> u64 {
    debug_assert!(mean >= 0.0 && mean.is_finite(), "mean = {mean}");
    if mean <= 0.0 {
        return 0;
    }
    if mean < 10.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut prod: f64 = rng.gen();
        while prod > limit {
            k += 1;
            prod *= rng.gen::<f64>();
        }
        return k;
    }
    let mode = mean.floor() as u64;
    let pmf_mode = ln_poisson_pmf(mean, mode).exp();
    loop {
        let mut u: f64 = rng.gen();
        if u < pmf_mode {
            return mode;
        }
        u -= pmf_mode;
        let (mut lo, mut f_lo) = (mode, pmf_mode);
        let (mut hi, mut f_hi) = (mode, pmf_mode);
        loop {
            f_hi *= mean / (hi + 1) as f64;
            hi += 1;
            if u < f_hi {
                return hi;
            }
            u -= f_hi;
            if lo > 0 {
                f_lo *= lo as f64 / mean;
                lo -= 1;
                if u < f_lo {
                    return lo;
                }
                u -= f_lo;
            }
            if f_hi <= f64::MIN_POSITIVE && f_lo <= f64::MIN_POSITIVE {
                // Residual mass from rounding (probability ~1e-15): redraw.
                break;
            }
        }
    }
}

/// Sample `Multinomial(trials; weights/total)` by conditional binomial
/// splits, appending `(index, count)` for every non-zero cell to `out`.
///
/// `total` must equal `weights.iter().sum()` and be non-zero.
pub fn multinomial_into(
    rng: &mut SimRng,
    trials: u64,
    weights: &[u64],
    total: u64,
    out: &mut Vec<(usize, u64)>,
) {
    debug_assert_eq!(total, weights.iter().sum::<u64>());
    debug_assert!(total > 0);
    let mut remaining = trials;
    let mut rest = total;
    for (index, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            return;
        }
        if w == 0 {
            continue;
        }
        if w == rest {
            // Last non-zero cell takes everything left.
            out.push((index, remaining));
            return;
        }
        let x = binomial(rng, remaining, w as f64 / rest as f64);
        if x > 0 {
            out.push((index, x));
        }
        remaining -= x;
        rest -= w;
    }
    debug_assert_eq!(remaining, 0, "weights exhausted with trials left");
}

/// [`multinomial_into`] over real-valued weights — the scheduler-biased
/// tally path, where a cell's weight is `count · opinion_weight` and no
/// longer integral.
///
/// Same conditional-binomial decomposition; the differences are float
/// hygiene: a cell whose weight reaches the remaining total (within
/// rounding) absorbs all remaining trials, and any trials stranded by
/// cancellation in the running `rest` are dumped on the last
/// positive-weight cell, so every trial is always assigned.
///
/// `total` must equal `weights.iter().sum()` (up to rounding) and be
/// positive.
pub fn multinomial_weighted_into(
    rng: &mut SimRng,
    trials: u64,
    weights: &[f64],
    total: f64,
    out: &mut Vec<(usize, u64)>,
) {
    debug_assert!(total > 0.0, "total weight must be positive");
    let mut remaining = trials;
    let mut rest = total;
    let mut last_pos = None;
    for (index, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            return;
        }
        if w <= 0.0 {
            continue;
        }
        if w >= rest {
            out.push((index, remaining));
            return;
        }
        let x = binomial(rng, remaining, w / rest);
        if x > 0 {
            out.push((index, x));
        }
        remaining -= x;
        rest -= w;
        last_pos = Some(index);
    }
    if remaining > 0 {
        if let Some(index) = last_pos {
            match out.last_mut() {
                Some(entry) if entry.0 == index => entry.1 += remaining,
                _ => out.push((index, remaining)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_var(rng: &mut SimRng, n: u64, p: f64, draws: u64) -> (f64, f64) {
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        for _ in 0..draws {
            let x = binomial(rng, n, p) as f64;
            s1 += x;
            s2 += x * x;
        }
        let mean = s1 / draws as f64;
        (mean, s2 / draws as f64 - mean * mean)
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(binomial(&mut rng, 0, 0.3), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        for _ in 0..100 {
            assert!(binomial(&mut rng, 5, 0.5) <= 5);
        }
    }

    #[test]
    fn binomial_moments_match_in_every_regime() {
        // (n, p) hitting: Bernoulli counting, BINV, mode inversion, and the
        // p > 1/2 mirror of each.
        let cases = [
            (10u64, 0.3),
            (10, 0.8),
            (1000, 0.004),
            (1000, 0.996),
            (1000, 0.3),
            (1_000_000, 0.25),
            (50_000, 0.7),
        ];
        let mut rng = SimRng::seed_from_u64(42);
        for (n, p) in cases {
            let draws = 30_000;
            let (mean, var) = mean_var(&mut rng, n, p, draws);
            let want_mean = n as f64 * p;
            let want_var = n as f64 * p * (1.0 - p);
            let mean_tol = 5.0 * (want_var / draws as f64).sqrt() + 1e-9;
            assert!(
                (mean - want_mean).abs() < mean_tol,
                "n={n} p={p}: mean {mean} vs {want_mean} (tol {mean_tol})"
            );
            assert!(
                (var - want_var).abs() / want_var.max(1.0) < 0.1,
                "n={n} p={p}: var {var} vs {want_var}"
            );
        }
    }

    #[test]
    fn binomial_small_n_distribution_is_exact() {
        // n = 4, p = 0.5: probabilities 1/16, 4/16, 6/16, 4/16, 1/16.
        let mut rng = SimRng::seed_from_u64(9);
        let draws = 160_000u64;
        let mut hist = [0u64; 5];
        for _ in 0..draws {
            hist[binomial(&mut rng, 4, 0.5) as usize] += 1;
        }
        let want = [1.0, 4.0, 6.0, 4.0, 1.0].map(|w| w / 16.0 * draws as f64);
        for (k, (&h, w)) in hist.iter().zip(want).enumerate() {
            let dev = (h as f64 - w).abs() / w;
            assert!(dev < 0.05, "k={k}: {h} vs {w:.0}");
        }
    }

    #[test]
    fn multinomial_conserves_trials_and_tracks_weights() {
        let mut rng = SimRng::seed_from_u64(5);
        let weights = [50u64, 0, 30, 20, 0, 900];
        let total: u64 = weights.iter().sum();
        let trials = 10_000u64;
        let mut acc = vec![0u64; weights.len()];
        let reps = 200;
        let mut out = Vec::new();
        for _ in 0..reps {
            out.clear();
            multinomial_into(&mut rng, trials, &weights, total, &mut out);
            let drawn: u64 = out.iter().map(|&(_, c)| c).sum();
            assert_eq!(drawn, trials, "multinomial must use every trial");
            for &(i, c) in &out {
                assert!(weights[i] > 0, "zero-weight cell {i} drawn");
                acc[i] += c;
            }
        }
        for (i, &w) in weights.iter().enumerate() {
            let want = reps as f64 * trials as f64 * w as f64 / total as f64;
            if w == 0 {
                assert_eq!(acc[i], 0);
            } else {
                let dev = (acc[i] as f64 - want).abs() / want;
                assert!(dev < 0.05, "cell {i}: {} vs {want:.0}", acc[i]);
            }
        }
    }

    #[test]
    fn weighted_multinomial_conserves_trials_and_tracks_weights() {
        let mut rng = SimRng::seed_from_u64(11);
        let weights = [12.5f64, 0.0, 7.5, 0.25, 80.0];
        let total: f64 = weights.iter().sum();
        let trials = 10_000u64;
        let mut acc = vec![0u64; weights.len()];
        let mut out = Vec::new();
        let reps = 200;
        for _ in 0..reps {
            out.clear();
            multinomial_weighted_into(&mut rng, trials, &weights, total, &mut out);
            let drawn: u64 = out.iter().map(|&(_, c)| c).sum();
            assert_eq!(drawn, trials, "weighted multinomial must use every trial");
            for &(i, c) in &out {
                assert!(weights[i] > 0.0, "zero-weight cell {i} drawn");
                acc[i] += c;
            }
        }
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                assert_eq!(acc[i], 0);
                continue;
            }
            let want = reps as f64 * trials as f64 * w / total;
            let dev = (acc[i] as f64 - want).abs() / want;
            assert!(dev < 0.1, "cell {i}: {} vs {want:.0}", acc[i]);
        }
    }

    #[test]
    fn poisson_moments_match_in_both_regimes() {
        let mut rng = SimRng::seed_from_u64(77);
        for mean in [0.0f64, 0.2, 3.0, 9.9, 10.0, 250.0, 40_000.0] {
            let draws = 30_000u64;
            let (mut s1, mut s2) = (0.0f64, 0.0f64);
            for _ in 0..draws {
                let x = poisson(&mut rng, mean) as f64;
                s1 += x;
                s2 += x * x;
            }
            let got_mean = s1 / draws as f64;
            let got_var = s2 / draws as f64 - got_mean * got_mean;
            if mean == 0.0 {
                assert_eq!(got_mean, 0.0);
                continue;
            }
            let mean_tol = 5.0 * (mean / draws as f64).sqrt() + 1e-9;
            assert!(
                (got_mean - mean).abs() < mean_tol,
                "mean={mean}: got {got_mean} (tol {mean_tol})"
            );
            assert!(
                (got_var - mean).abs() / mean < 0.1,
                "mean={mean}: var {got_var}"
            );
        }
    }

    #[test]
    fn binomial_batch_is_bit_identical_to_scalar_lanes() {
        // The array pass must consume exactly the uniforms the scalar
        // sampler would, in lane order — outputs AND the post-call RNG
        // position must match. Mixed regimes per batch: geometric skip,
        // BINV, mode inversion, and p > 1/2 mirrors.
        let lanes: Vec<u64> = vec![0, 1, 4, 16, 17, 500, 1000, 5_000, 1_000_000, 3];
        for (seed, p) in [
            (3u64, 0.3f64),
            (7, 0.004),
            (11, 0.8),
            (13, 0.5),
            (17, 0.996),
        ] {
            let mut batch_rng = SimRng::seed_from_u64(seed);
            let mut out = Vec::new();
            binomial_batch(&mut batch_rng, &lanes, p, &mut out);

            let mut scalar_rng = SimRng::seed_from_u64(seed);
            let scalar: Vec<u64> = lanes
                .iter()
                .map(|&n| binomial(&mut scalar_rng, n, p))
                .collect();

            assert_eq!(out, scalar, "p={p}: batch and scalar lanes diverged");
            assert_eq!(
                batch_rng.gen::<u64>(),
                scalar_rng.gen::<u64>(),
                "p={p}: batch and scalar consumed different stream lengths"
            );
        }
    }

    #[test]
    fn binomial_batch_edge_probabilities() {
        let mut rng = SimRng::seed_from_u64(0);
        let lanes = [5u64, 0, 9];
        let mut out = Vec::new();
        binomial_batch(&mut rng, &lanes, 0.0, &mut out);
        assert_eq!(out, vec![0, 0, 0]);
        binomial_batch(&mut rng, &lanes, 1.0, &mut out);
        assert_eq!(out, vec![5, 0, 9]);
    }

    #[test]
    fn geometric_skip_matches_exact_pmf_at_every_small_n() {
        // The n ≤ 16 path is inverted geometric skips; pin its law against
        // the exact binomial pmf for every n in the regime at two ps.
        let mut rng = SimRng::seed_from_u64(314);
        for p in [0.2f64, 0.5] {
            for n in 1..=16u64 {
                let draws = 40_000u64;
                let mut hist = vec![0u64; n as usize + 1];
                for _ in 0..draws {
                    hist[binomial(&mut rng, n, p) as usize] += 1;
                }
                let q = 1.0 - p;
                for (k, &h) in hist.iter().enumerate() {
                    let want = ln_binom_pmf(n, k as u64, p.ln(), q.ln()).exp() * draws as f64;
                    if want < 50.0 {
                        // Too little mass for a tight relative test; just
                        // bound the tail.
                        assert!(
                            (h as f64) < want + 6.0 * want.sqrt() + 25.0,
                            "n={n} p={p} k={k}: {h} vs {want:.1}"
                        );
                        continue;
                    }
                    let dev = (h as f64 - want).abs() / want;
                    let tol = 6.0 * (1.0 / want).sqrt() + 0.01;
                    assert!(dev < tol, "n={n} p={p} k={k}: {h} vs {want:.0}");
                }
            }
        }
    }

    #[test]
    fn multinomial_with_zero_trials_is_empty() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut out = Vec::new();
        multinomial_into(&mut rng, 0, &[1, 2, 3], 6, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ln_factorial_is_accurate_across_the_table_boundary() {
        let mut exact = 0.0f64;
        for k in 1..=30u64 {
            exact += (k as f64).ln();
            let err = (ln_factorial(k) - exact).abs();
            assert!(err < 1e-9, "k={k}: err {err}");
        }
    }
}
