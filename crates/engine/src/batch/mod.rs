//! Batched configuration-space simulation for small-state protocols.
//!
//! For protocols whose state space is a small finite set, the configuration
//! (one counter per state) is a sufficient statistic: the scheduler never
//! needs to know *which* agent holds a state, only *how many* do. The
//! engines in this module exploit that in two stages.
//!
//! **Collision-free batches.** Instead of touching two agents per step, the
//! engine draws the number of consecutive interactions in which no agent
//! participates twice — the birthday process, expected length `Θ(√n)`, see
//! [`birthday`]. Within such a batch every interaction reads the pre-batch
//! configuration, so the interactions commute and can be applied in any
//! order.
//!
//! **Multinomial tallies.** Because the batch's ordered pairs are drawn
//! i.i.d. from the configuration (with replacement — see *Accuracy* below),
//! the per-state participant counts follow a multinomial law. The fast
//! engine ([`BatchSimulation`]) therefore never samples individual pairs:
//! it splits the batch length into initiator counts with `O(S)` binomial
//! draws ([`multinomial`]), splits each initiator count into responder
//! counts the same way (or, for small counts, draws responders through an
//! `O(log S)` Fenwick-tree sampler, [`fenwick`]), and applies each distinct
//! ordered state pair `(a, b)` *once* with its multiplicity. Per-interaction
//! cost is thus **sub-constant** whenever batches are long: a batch of `ℓ`
//! interactions costs `O(S·√ℓ + S log S)` RNG-and-memory work in the worst
//! case, `o(ℓ)` for `ℓ ≫ S²`.
//!
//! The older per-pair engine ([`PairwiseBatchSimulation`]) samples and
//! applies every interaction of the batch individually; it is retained as
//! the semantic reference for A/B distribution tests and benchmarks.
//!
//! # Accuracy
//!
//! Both engines sample batch participants *with replacement* from the
//! current configuration, which deviates from the exact
//! without-replacement hypergeometric law by `O(ℓ²/n)` total-variation
//! distance per batch — the standard trade-off in batched
//! population-protocol simulation. With `ℓ = Θ(√n)` the per-batch drift is
//! `O(1)` interactions' worth and the engines' observable statistics agree
//! with the sequential scheduler; the consistency tests in this module and
//! in `tests/engine_equivalence.rs` bound the divergence. A second,
//! strictly rarer effect exists only in the multinomial engine: a
//! with-replacement tally can overdraw a nearly-empty state; such
//! infeasible tallies (probability `O(ℓ²/n)` per batch) are rejected and
//! redrawn, see [`BatchSimulation::step_batch`].
//!
//! # Which protocols qualify
//!
//! Any protocol expressible as a [`TableProtocol`] — a transition function
//! over a state space small enough to enumerate (`S` up to a few thousand)
//! whose convergence predicate reads only the per-state counts. Randomized
//! transitions are supported ([`TableProtocol::delta`] receives the
//! scheduler RNG); deterministic ones additionally get the
//! once-per-distinct-pair fast path by overriding
//! [`TableProtocol::is_deterministic`] to `true`. The paper's own protocols carry
//! `Θ(k + log n)` states *per phase-clock value* and milestone bookkeeping,
//! and stay on the sequential engine; the constant-state baselines (USD,
//! 3-state/4-state majority, epidemics) all run here.

pub mod birthday;
pub mod fenwick;
pub mod multinomial;
pub mod pairwise;
mod pool;
pub(crate) mod sim;
pub(crate) mod tally;

pub use fenwick::{Fenwick, ShardedFenwick, StateSampler};
pub use pairwise::PairwiseBatchSimulation;
pub use sim::BatchSimulation;

use crate::protocol::SimRng;

/// A population protocol presented as a transition table over a small state
/// space `0..states()`, runnable on the configuration-space engines.
///
/// The `Send + Sync + 'static` supertraits let the threaded tally path
/// share the table with pool workers; every table here is a small
/// value-type (often zero-sized), so the bounds cost nothing in practice.
pub trait TableProtocol: Send + Sync + 'static {
    /// Size of the state space.
    fn states(&self) -> usize;

    /// Transition `(initiator, responder) → (initiator', responder')`.
    ///
    /// Randomized protocols (USD tie-breaking, lottery coin flips, …) draw
    /// from `rng`; deterministic ones ignore it and should keep the default
    /// [`is_deterministic`](Self::is_deterministic) so the batched engine
    /// may evaluate each distinct pair once per batch.
    fn delta(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize);

    /// Whether [`delta`](Self::delta) ignores its RNG. Deterministic tables
    /// are applied once per distinct ordered pair with multiplicity;
    /// randomized tables are evaluated once per interaction (still skipping
    /// all per-interaction *pair sampling*).
    ///
    /// Defaults to `false` — the safe choice: a randomized table routed
    /// through the deterministic fast path would silently apply one coin
    /// flip with multiplicity `m` instead of `m` flips, corrupting the
    /// dynamics with no error. Tables whose `delta` never touches `rng`
    /// should override this to `true` to unlock the fast path.
    fn is_deterministic(&self) -> bool {
        false
    }

    /// Convergence check on the configuration (`counts[s]` = agents in
    /// state `s`). Returning `Some(o)` stops the run with output `o`.
    fn output(&self, counts: &[u64]) -> Option<u32>;

    /// The opinion an agent in state `s` advocates, if any — the hook
    /// adversarial [`Scheduler`](crate::Scheduler)s bias on. `None` (the
    /// default) marks undecided/helper states, treated uniformly.
    fn opinion(&self, s: usize) -> Option<u32> {
        let _ = s;
        None
    }

    /// The state a freshly injected agent advocating `opinion` enters
    /// (the inverse of [`opinion`](Self::opinion) on fresh agents). `None`
    /// (the default) makes opinion-injection faults degrade to no-ops.
    fn opinion_state(&self, opinion: u32) -> Option<usize> {
        let _ = opinion;
        None
    }
}
