//! The multinomial-tally configuration-space engine.

use std::sync::Arc;

use rand::{Rng, SeedableRng};

use crate::batch::birthday::draw_batch_len;
use crate::batch::fenwick::ShardedFenwick;
use crate::batch::multinomial::{binomial, multinomial_into, multinomial_weighted_into};
use crate::batch::pool::{TallyJob, TallyPool};
use crate::batch::tally::{self, run_subtree, TallyCtx, TallyScratch, TallySpec};
use crate::batch::TableProtocol;
use crate::churn::ChurnProcess;
use crate::fault::{
    resolve_forgery, strike_counts, Adversary, ChurnTarget, FaultPlan, FaultRecord, LieTarget,
    OpinionCensus, Scheduler,
};
use crate::protocol::SimRng;
use crate::result::{ChurnSample, RunNote, RunOptions, RunResult, RunStatus};

/// Floor on the multiplicity below which responders are always drawn one
/// by one through the Fenwick sampler. The full rule is adaptive: a
/// conditional-binomial split scans every occupied state
/// (`O(S_occupied)` binomials), so it only pays once the multiplicity
/// exceeds the occupied-state count — at USD-like `k = 64` a multiplicity
/// of 10 is far cheaper as ten `O(log S)` tree draws.
const SPLIT_FLOOR: u64 = 8;

/// How many infeasible (overdrawn) tallies to redraw before falling back
/// to per-pair application for the batch. Overdraw probability is
/// `O(ℓ²/n)` against a near-empty state, so two misses in a row are
/// already rare; the fallback is exact and unconditionally feasible.
const MAX_TALLY_RETRIES: u32 = 8;

/// Batches shorter than this run their subtrees inline even when a
/// thread pool is available: the per-job snapshot (counts, census tree)
/// costs more than the tally itself. Purely a scheduling choice — the
/// pooled and inline paths compute identical tallies (see
/// [`crate::batch::tally`]), so this cutoff cannot affect results.
const PARALLEL_CUTOFF: u64 = 1024;

/// A configuration-space simulation advancing in collision-free batches,
/// each applied as one multinomial tally of ordered state pairs.
///
/// Per-interaction cost is sub-constant for long batches: a batch of `ℓ`
/// interactions costs `O(S·√ℓ)` binomial work plus `O(log S)` per
/// *distinct* transition applied, instead of `O(S)` per interaction in the
/// seed engine (see [`crate::batch`] module docs for the accounting, and
/// [`PairwiseBatchSimulation`](crate::batch::PairwiseBatchSimulation) for
/// the retained reference implementation).
#[derive(Debug)]
pub struct BatchSimulation<P: TableProtocol> {
    /// Shared with pool workers during threaded tallies; plain `&P`
    /// everywhere else.
    protocol: Arc<P>,
    counts: Vec<u64>,
    /// Sharded Fenwick mirror of `counts` for `O(log S)` weighted draws;
    /// frozen at the pre-batch configuration while a tally is being
    /// sampled. Full rebuilds (admit/churn/faults) parallelise over
    /// shards at `threads > 1`.
    tree: ShardedFenwick,
    n: u64,
    rng: SimRng,
    interactions: u64,
    /// Batches applied so far (a process-local throughput metric; not part
    /// of the checkpointed state).
    batches: u64,
    /// Parallel time accumulated before `interactions_base` — non-zero only
    /// after churn changed the population size.
    time_base: f64,
    /// Interactions already folded into `time_base`.
    interactions_base: u64,
    deterministic: bool,
    // Scratch buffers reused across batches.
    initiators: Vec<(usize, u64)>,
    responders: Vec<(usize, u64)>,
    delta: Vec<i64>,
    /// Gross participant count drawn from each state this batch (the
    /// collision-free feasibility bound: a batch cannot use more agents of
    /// a state than exist).
    usage: Vec<u64>,
    scheduler: Option<Arc<dyn Scheduler>>,
    /// Adversary snapshot for the current batch: `(lie probability, what
    /// liars report)`. `None` when no adversary applies (also when the
    /// forged opinion has no state in this protocol's table: adversaries
    /// degrade, never panic).
    lie: Option<(f64, LieTarget)>,
    /// Retained only for *adaptive* adversaries, whose `lie` snapshot is
    /// re-aimed at the live census before every batch; static adversaries
    /// resolve once at install and are not stored.
    adversary: Option<Arc<dyn Adversary>>,
    scheduler_saturated: bool,
    /// Worker budget for one run (tally subtrees, census rebuilds). Not
    /// part of the checkpointed state: results are identical at every
    /// value, so a resumed run may use a different thread count.
    threads: usize,
    /// Persistent tally workers, spawned lazily on the first threaded
    /// batch and dropped when `threads` returns to 1. Never cloned or
    /// checkpointed.
    pool: Option<TallyPool<P>>,
    /// Coordinator-side kernel scratch, reused across batches.
    scratch: TallyScratch,
}

impl<P: TableProtocol> Clone for BatchSimulation<P> {
    /// Clones share the protocol (`Arc`) but never the worker pool; the
    /// clone respawns its own lazily if it runs threaded.
    fn clone(&self) -> Self {
        Self {
            protocol: Arc::clone(&self.protocol),
            counts: self.counts.clone(),
            tree: self.tree.clone(),
            n: self.n,
            rng: self.rng.clone(),
            interactions: self.interactions,
            batches: self.batches,
            time_base: self.time_base,
            interactions_base: self.interactions_base,
            deterministic: self.deterministic,
            initiators: self.initiators.clone(),
            responders: self.responders.clone(),
            delta: self.delta.clone(),
            usage: self.usage.clone(),
            scheduler: self.scheduler.clone(),
            lie: self.lie,
            adversary: self.adversary.clone(),
            scheduler_saturated: self.scheduler_saturated,
            threads: self.threads,
            pool: None,
            scratch: TallyScratch::default(),
        }
    }
}

impl<P: TableProtocol> BatchSimulation<P> {
    /// Create a simulation from per-state counts.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than two agents or `counts` does
    /// not match the protocol's state space.
    pub fn new(protocol: P, counts: Vec<u64>, seed: u64) -> Self {
        assert_eq!(
            counts.len(),
            protocol.states(),
            "counts must cover the state space"
        );
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must contain at least two agents");
        let tree = ShardedFenwick::from_weights(&counts);
        let states = counts.len();
        let deterministic = protocol.is_deterministic();
        Self {
            protocol: Arc::new(protocol),
            counts,
            tree,
            n,
            rng: SimRng::seed_from_u64(seed),
            interactions: 0,
            batches: 0,
            time_base: 0.0,
            interactions_base: 0,
            deterministic,
            initiators: Vec::new(),
            responders: Vec::new(),
            delta: vec![0; states],
            usage: vec![0; states],
            scheduler: None,
            lie: None,
            adversary: None,
            scheduler_saturated: false,
            threads: 1,
            pool: None,
            scratch: TallyScratch::default(),
        }
    }

    /// Set the worker budget for this run. `1` (the default) keeps
    /// everything on the calling thread; larger values run tally subtrees
    /// and census rebuilds on up to `threads` workers (the calling thread
    /// included). **Results are byte-identical at every setting** — every
    /// parallel draw runs on a counter-based substream keyed by its place
    /// in the tally structure, never by thread (see
    /// [`crate::batch::tally`]) — so this is purely a throughput knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        if self.threads == 1 {
            self.pool = None;
        } else if self
            .pool
            .as_ref()
            .is_some_and(|p| p.workers() + 1 != self.threads)
        {
            self.pool = None; // respawned lazily at the new size
        }
    }

    /// The worker budget for this run.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Replace the uniform pair scheduler with an adversarial one. The
    /// uniform tally fast path is untouched when no scheduler is set.
    pub fn set_scheduler(&mut self, scheduler: Arc<dyn Scheduler>) {
        self.scheduler = Some(scheduler);
    }

    /// Install a Byzantine interaction adversary. The honest tally fast
    /// path (and its RNG stream) is untouched when none is set; a zero
    /// lying probability disables the adversary entirely, so `adaptive:0`
    /// stays RNG-identical to the clean run.
    pub fn set_adversary(&mut self, adversary: Arc<dyn Adversary>) {
        if adversary.lie_frac() <= 0.0 {
            return;
        }
        if adversary.adaptive() {
            self.adversary = Some(adversary);
            self.refresh_lie();
        } else {
            self.lie = Self::lie_snapshot(&*self.protocol, &*adversary);
        }
    }

    /// Resolve a static adversary to the `(frac, lie target)` snapshot. A
    /// fixed forged opinion with no state in the table, or a zero lying
    /// probability, disables the perturbation entirely.
    fn lie_snapshot(protocol: &P, adv: &dyn Adversary) -> Option<(f64, LieTarget)> {
        let frac = adv.lie_frac();
        if frac <= 0.0 {
            return None;
        }
        resolve_forgery(protocol, adv.forgery(&OpinionCensus::default())).map(|t| (frac, t))
    }

    /// The live opinion tally in `O(S)`, for adaptive forgeries and
    /// targeted churn.
    fn opinion_census(&self) -> OpinionCensus {
        OpinionCensus::from_tallies(
            self.counts
                .iter()
                .enumerate()
                .filter_map(|(s, &c)| self.protocol.opinion(s).map(|op| (op, c))),
        )
    }

    /// Re-aim an adaptive adversary's lie snapshot at the live census —
    /// `O(S)` once per batch, so the `n = 10⁸` throughput is untouched.
    /// Draws no randomness, preserving the replay contract; a no-op when
    /// no adaptive adversary is installed.
    fn refresh_lie(&mut self) {
        let Some(adv) = self.adversary.clone() else {
            return;
        };
        self.lie = resolve_forgery(&*self.protocol, adv.forgery(&self.opinion_census()))
            .map(|t| (adv.lie_frac(), t));
    }

    /// Build the configuration from per-agent states.
    pub fn from_agents(protocol: P, agents: &[usize], seed: u64) -> Self {
        let mut counts = vec![0u64; protocol.states()];
        for &s in agents {
            counts[s] += 1;
        }
        Self::new(protocol, counts, seed)
    }

    /// Current configuration.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Interactions simulated so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Batches applied so far. A process-local metric (service dashboards,
    /// throughput accounting); it is *not* checkpointed state and restarts
    /// at zero on restore.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Add `count` fresh agents in `state` to the live population — the
    /// ingest path of a long-running service. Uses the same clock-folding
    /// bookkeeping as churn joins, and draws no randomness, so the engine's
    /// RNG stream is exactly the stream of the ingest-free run.
    ///
    /// # Panics
    ///
    /// Panics if `state` is outside the protocol's state space.
    pub fn admit(&mut self, state: usize, count: u64) {
        assert!(
            state < self.counts.len(),
            "admit state {state} outside 0..{}",
            self.counts.len()
        );
        if count == 0 {
            return;
        }
        self.fold_clock();
        self.counts[state] += count;
        self.n += count;
        self.tree.rebuild(&self.counts, self.threads);
    }

    /// Parallel time elapsed: interactions divided by the population size,
    /// folded over population changes (churn) so the clock stays
    /// continuous.
    pub fn parallel_time(&self) -> f64 {
        self.time_base + (self.interactions - self.interactions_base) as f64 / self.n as f64
    }

    /// The raw RNG state, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// The clock's checkpoint triple: `(interactions, interactions_base,
    /// time_base)`.
    pub fn clock_parts(&self) -> (u64, u64, f64) {
        (self.interactions, self.interactions_base, self.time_base)
    }

    /// Restore RNG and clock from a checkpoint, making subsequent batches
    /// replay the checkpointed run's stream exactly.
    pub fn restore_clock(
        &mut self,
        interactions: u64,
        interactions_base: u64,
        time_base: f64,
        rng: [u64; 4],
    ) {
        self.interactions = interactions;
        self.interactions_base = interactions_base;
        self.time_base = time_base;
        self.rng = SimRng::from_state(rng);
    }

    /// Fold the elapsed clock into `time_base`; must be called *before*
    /// the population size changes.
    fn fold_clock(&mut self) {
        self.time_base = self.parallel_time();
        self.interactions_base = self.interactions;
    }

    /// Advance one collision-free batch; returns the number of interactions
    /// applied.
    pub fn step_batch(&mut self) -> u64 {
        let len = draw_batch_len(&mut self.rng, self.n);
        self.apply_batch(len);
        len
    }

    /// Sample a pair tally for `len` interactions from the pre-batch
    /// configuration and apply it. Infeasible tallies (a with-replacement
    /// draw overdrew a nearly-empty state) are redrawn; after
    /// [`MAX_TALLY_RETRIES`] misses the batch is applied pair by pair.
    fn apply_batch(&mut self, len: u64) {
        self.batches += 1;
        self.refresh_lie();
        match self.scheduler.clone() {
            None => {
                for _ in 0..MAX_TALLY_RETRIES {
                    if self.try_tally(len) {
                        self.interactions += len;
                        return;
                    }
                }
                self.apply_pairwise(len);
            }
            Some(sched) => {
                for _ in 0..MAX_TALLY_RETRIES {
                    if self.try_tally_scheduled(len, &*sched) {
                        self.interactions += len;
                        return;
                    }
                }
                self.apply_pairwise_scheduled(len, &*sched);
            }
        }
        self.interactions += len;
    }

    /// One tally attempt. Returns `false` (leaving the configuration
    /// untouched) if the sampled tally is infeasible — it would use more
    /// agents of some state than exist (the with-replacement draw can
    /// overdraw a small state).
    ///
    /// The attempt is structured as a split tree: the root multinomial
    /// (drawn here, from the main stream) splits the batch across
    /// initiator states, and each initiator's subtree resolves on a
    /// counter-based substream keyed by `(key, subtree index)` — inline
    /// at `threads == 1`, claimed by pool workers otherwise, with
    /// byte-identical results either way (see [`crate::batch::tally`]).
    /// Main-stream consumption per attempt (the root draw plus one key
    /// word) is therefore thread-count-invariant.
    fn try_tally(&mut self, len: u64) -> bool {
        self.delta.iter_mut().for_each(|d| *d = 0);
        self.usage.iter_mut().for_each(|u| *u = 0);

        // Root split: one multinomial over the configuration.
        self.initiators.clear();
        multinomial_into(
            &mut self.rng,
            len,
            &self.counts,
            self.n,
            &mut self.initiators,
        );

        let occupied = self.counts.iter().filter(|&&c| c > 0).count() as u64;
        let split_threshold = SPLIT_FLOOR.max(occupied);
        let key = self.rng.gen::<u64>();

        if self.threads > 1 && len >= PARALLEL_CUTOFF && self.initiators.len() > 1 {
            self.tally_pooled(split_threshold, key);
        } else {
            let initiators = std::mem::take(&mut self.initiators);
            for (subtree, &(a, multiplicity)) in initiators.iter().enumerate() {
                let spec = TallySpec {
                    ctx: TallyCtx {
                        protocol: &*self.protocol,
                        deterministic: self.deterministic,
                        lie: self.lie,
                        states: self.counts.len(),
                    },
                    counts: &self.counts,
                    n: self.n,
                    tree: &self.tree,
                    split_threshold,
                    key,
                };
                run_subtree(
                    &spec,
                    subtree,
                    a,
                    multiplicity,
                    &mut self.scratch,
                    &mut self.delta,
                    &mut self.usage,
                );
            }
            self.initiators = initiators;
        }

        // Feasibility: within a collision-free batch every participant is
        // a distinct agent, so the gross usage of a state is bounded by
        // its pre-batch count (this also implies the net delta cannot go
        // negative).
        if self.counts.iter().zip(&self.usage).any(|(&c, &u)| u > c) {
            return false;
        }
        for s in 0..self.counts.len() {
            let d = self.delta[s];
            if d != 0 {
                self.counts[s] = self.counts[s]
                    .checked_add_signed(d)
                    .expect("feasible delta");
                self.tree.add(s, d);
            }
        }
        true
    }

    /// Run the current attempt's subtrees on the worker pool: snapshot
    /// the configuration into a [`TallyJob`], let `threads` claimants
    /// (this thread included) drain it, and merge the per-subtree
    /// accumulators in subtree order. Merging is plain summation, so the
    /// result equals the inline loop exactly.
    fn tally_pooled(&mut self, split_threshold: u64, key: u64) {
        let workers = self.threads - 1;
        if self.pool.is_none() {
            self.pool = Some(TallyPool::new(workers));
        }
        let job = TallyJob::new(
            Arc::clone(&self.protocol),
            self.deterministic,
            self.lie,
            self.counts.clone(),
            self.n,
            self.tree.clone(),
            split_threshold,
            key,
            self.initiators.clone(),
        );
        let pool = self.pool.as_ref().expect("pool installed above");
        let done = pool.run(job, &mut self.scratch);
        let states = self.counts.len();
        for out in done.outs.iter().take(done.subtrees.len()) {
            let out = out.lock().expect("subtree slot poisoned");
            for s in 0..states {
                self.delta[s] += out.delta[s];
                self.usage[s] += out.usage[s];
            }
        }
    }

    /// Exact per-pair application (the seed semantics): each interaction
    /// samples from the *live* configuration, so no overdraw is possible.
    /// Only used as the rare-tally fallback.
    fn apply_pairwise(&mut self, len: u64) {
        for _ in 0..len {
            let a = self.tree.sample(&mut self.rng);
            let mut b = self.tree.sample(&mut self.rng);
            // A single-agent state cannot interact with itself: redraw the
            // responder (another state is occupied since n ≥ 2).
            while b == a && self.counts[a] < 2 {
                b = self.tree.sample(&mut self.rng);
            }
            self.apply_live_interaction(a, b);
        }
    }

    /// Resolve one live interaction of the ordered pair `(a, b)` — the
    /// per-interaction Byzantine coin flips when an adversary is active,
    /// the plain transition otherwise — and apply it to the live counts.
    fn apply_live_interaction(&mut self, a: usize, b: usize) {
        let (a2, b2) = match self.lie {
            None => self.protocol.delta(a, b, &mut self.rng),
            Some((frac, forged)) => {
                let a_lies = self.rng.gen_bool(frac);
                let b_lies = self.rng.gen_bool(frac);
                match (a_lies, b_lies) {
                    (true, true) => (a, b),
                    (true, false) => {
                        let f = self.forged_state(forged);
                        let (_, b2) = self.protocol.delta(f, b, &mut self.rng);
                        (a, b2)
                    }
                    (false, true) => {
                        let f = self.forged_state(forged);
                        let (a2, _) = self.protocol.delta(a, f, &mut self.rng);
                        (a2, b)
                    }
                    (false, false) => self.protocol.delta(a, b, &mut self.rng),
                }
            }
        };
        if (a2, b2) == (a, b) {
            return;
        }
        for (s, d) in [(a, -1i64), (b, -1), (a2, 1), (b2, 1)] {
            self.counts[s] = self.counts[s].checked_add_signed(d).expect("live sample");
            self.tree.add(s, d);
        }
    }

    /// The forged state for one lie: fixed, a fair pick from a split
    /// pair, or uniform over the table.
    fn forged_state(&mut self, forged: LieTarget) -> usize {
        match forged {
            LieTarget::Fixed(f) => f,
            LieTarget::Pair(a, b) => {
                if self.rng.gen_bool(0.5) {
                    a
                } else {
                    b
                }
            }
            LieTarget::Random => self.rng.gen_range(0..self.counts.len()),
        }
    }

    /// One tally attempt under an adversarial scheduler: participation
    /// weights become `counts[s] · opinion_weight(opinion(s))`, drawn
    /// through real-valued multinomials, and the scheduler's assortativity
    /// share of the batch forces responders into the initiator's opinion
    /// class. Feasibility checking and application are shared with
    /// [`try_tally`](Self::try_tally).
    fn try_tally_scheduled(&mut self, len: u64, sched: &dyn Scheduler) -> bool {
        self.delta.iter_mut().for_each(|d| *d = 0);
        self.usage.iter_mut().for_each(|u| *u = 0);

        let weights: Vec<f64> = self
            .counts
            .iter()
            .enumerate()
            .map(|(s, &c)| {
                c as f64
                    * sched
                        .opinion_weight(self.protocol.opinion(s))
                        .clamp(0.0, 1.0)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Every occupied state was starved to weight zero; degrade to
            // the uniform tally rather than stall, and surface it.
            self.scheduler_saturated = true;
            return self.try_tally(len);
        }

        let assort = sched.assortativity().clamp(0.0, 1.0);
        let forced = if assort > 0.0 {
            binomial(&mut self.rng, len, assort)
        } else {
            0
        };

        let mut initiators = std::mem::take(&mut self.initiators);
        let mut responders = std::mem::take(&mut self.responders);

        // Free pairs: weighted initiators, weighted responders.
        initiators.clear();
        multinomial_weighted_into(
            &mut self.rng,
            len - forced,
            &weights,
            total,
            &mut initiators,
        );
        for &(a, multiplicity) in &initiators {
            responders.clear();
            multinomial_weighted_into(
                &mut self.rng,
                multiplicity,
                &weights,
                total,
                &mut responders,
            );
            for &(b, m) in &responders {
                tally::accumulate(
                    &TallyCtx {
                        protocol: &*self.protocol,
                        deterministic: self.deterministic,
                        lie: self.lie,
                        states: self.counts.len(),
                    },
                    &mut self.rng,
                    &mut self.delta,
                    &mut self.usage,
                    a,
                    b,
                    m,
                );
            }
        }

        // Forced like-with-like pairs: the responder is drawn from the
        // initiator's opinion class, by raw counts. An empty class (the
        // initiator is its sole member) degrades to a free draw.
        if forced > 0 {
            initiators.clear();
            multinomial_weighted_into(&mut self.rng, forced, &weights, total, &mut initiators);
            for &(a, multiplicity) in &initiators {
                let want = self.protocol.opinion(a);
                let class: Vec<f64> = self
                    .counts
                    .iter()
                    .enumerate()
                    .map(|(s, &c)| {
                        if self.protocol.opinion(s) == want {
                            c as f64
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let class_total: f64 = class.iter().sum();
                responders.clear();
                if class_total > 0.0 {
                    multinomial_weighted_into(
                        &mut self.rng,
                        multiplicity,
                        &class,
                        class_total,
                        &mut responders,
                    );
                } else {
                    multinomial_weighted_into(
                        &mut self.rng,
                        multiplicity,
                        &weights,
                        total,
                        &mut responders,
                    );
                }
                for &(b, m) in &responders {
                    tally::accumulate(
                        &TallyCtx {
                            protocol: &*self.protocol,
                            deterministic: self.deterministic,
                            lie: self.lie,
                            states: self.counts.len(),
                        },
                        &mut self.rng,
                        &mut self.delta,
                        &mut self.usage,
                        a,
                        b,
                        m,
                    );
                }
            }
        }

        initiators.clear();
        responders.clear();
        self.initiators = initiators;
        self.responders = responders;

        if self.counts.iter().zip(&self.usage).any(|(&c, &u)| u > c) {
            return false;
        }
        for s in 0..self.counts.len() {
            let d = self.delta[s];
            if d != 0 {
                self.counts[s] = self.counts[s]
                    .checked_add_signed(d)
                    .expect("feasible delta");
                self.tree.add(s, d);
            }
        }
        true
    }

    /// Weighted per-pair fallback for scheduled batches (the analogue of
    /// [`apply_pairwise`](Self::apply_pairwise)): every draw samples from
    /// the live weighted configuration, so no overdraw is possible.
    fn apply_pairwise_scheduled(&mut self, len: u64, sched: &dyn Scheduler) {
        let assort = sched.assortativity().clamp(0.0, 1.0);
        for _ in 0..len {
            let a = self.sample_state_weighted(sched);
            let mut b = if assort > 0.0 && self.rng.gen_bool(assort) {
                let want = self.protocol.opinion(a);
                self.sample_state_in_class(want)
                    .unwrap_or_else(|| self.sample_state_weighted(sched))
            } else {
                self.sample_state_weighted(sched)
            };
            while b == a && self.counts[a] < 2 {
                b = self.sample_state_weighted(sched);
            }
            self.apply_live_interaction(a, b);
        }
    }

    /// One weighted state draw (linear scan over `counts · weight`); falls
    /// back to the uniform Fenwick draw if every weight is zero.
    fn sample_state_weighted(&mut self, sched: &dyn Scheduler) -> usize {
        let total: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(s, &c)| {
                c as f64
                    * sched
                        .opinion_weight(self.protocol.opinion(s))
                        .clamp(0.0, 1.0)
            })
            .sum();
        if total <= 0.0 {
            self.scheduler_saturated = true;
            return self.tree.sample(&mut self.rng);
        }
        let mut target = self.rng.gen::<f64>() * total;
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .expect("population is non-empty");
        for s in 0..self.counts.len() {
            let w = self.counts[s] as f64
                * sched
                    .opinion_weight(self.protocol.opinion(s))
                    .clamp(0.0, 1.0);
            target -= w;
            if target < 0.0 && self.counts[s] > 0 {
                return s;
            }
        }
        last // float residue: land on the last occupied state
    }

    /// One draw from the opinion class `want`, by raw counts; `None` when
    /// the class is empty.
    fn sample_state_in_class(&mut self, want: Option<u32>) -> Option<usize> {
        let total: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.protocol.opinion(s) == want)
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            return None;
        }
        let mut target = self.rng.gen_range(0..total);
        for s in 0..self.counts.len() {
            if self.protocol.opinion(s) != want {
                continue;
            }
            if target < self.counts[s] {
                return Some(s);
            }
            target -= self.counts[s];
        }
        unreachable!("class counts sum to total")
    }

    /// Run until convergence or budget exhaustion. Convergence is checked
    /// between batches (a batch is `Θ(√n)` interactions, finer than the
    /// sequential engine's default `n`-interaction stride);
    /// `opts.check_every` is not used. The final batch is truncated to the
    /// interaction budget.
    pub fn run(&mut self, opts: &RunOptions) -> RunResult {
        loop {
            if let Some(output) = self.protocol.output(&self.counts) {
                return self.finish(RunStatus::Converged, Some(output));
            }
            if self.interactions >= opts.max_interactions {
                return self.finish(RunStatus::Exhausted, None);
            }
            let len = draw_batch_len(&mut self.rng, self.n)
                .min(opts.max_interactions - self.interactions);
            self.apply_batch(len);
        }
    }

    /// Run under a fault plan: batches are split at each hook's parallel
    /// time (the batch straddling an epoch is truncated to land exactly on
    /// it), the strike is applied to the census between batches — `O(S)`
    /// binomial thinning, so the `n = 10⁸` fast path stays fast — and the
    /// Fenwick mirror is rebuilt. Recovery bookkeeping matches
    /// [`Simulation::run_faulted`](crate::Simulation::run_faulted); an
    /// empty plan replays [`run`](Self::run) exactly.
    pub fn run_faulted(&mut self, opts: &RunOptions, plan: &FaultPlan) -> RunResult {
        if plan.is_empty() {
            return self.run(opts);
        }
        let initial = self.counts.clone();
        let mut records: Vec<FaultRecord> = Vec::new();
        let mut open: Option<usize> = None;

        for (at, action, label) in plan.schedule() {
            let target = (at.max(0.0) * self.n as f64).ceil() as u64;
            if target > opts.max_interactions {
                break; // scheduled beyond the budget: never fires
            }
            while self.interactions < target {
                if let (Some(k), Some(output)) = (open, self.protocol.output(&self.counts)) {
                    records[k].recovery_time = self.parallel_time() - records[k].at;
                    records[k].output_after = Some(output);
                    open = None;
                }
                let len = draw_batch_len(&mut self.rng, self.n).min(target - self.interactions);
                self.apply_batch(len);
            }
            let output_before = self.protocol.output(&self.counts);
            if let (Some(k), Some(output)) = (open, output_before) {
                records[k].recovery_time = self.parallel_time() - records[k].at;
                records[k].output_after = Some(output);
            }
            strike_counts(
                &*self.protocol,
                &mut self.counts,
                &initial,
                &action,
                &mut self.rng,
            );
            self.tree.rebuild(&self.counts, self.threads);
            records.push(FaultRecord {
                at: self.parallel_time(),
                hook: label,
                output_before,
                output_after: None,
                recovery_time: f64::NAN,
            });
            open = Some(records.len() - 1);
        }

        loop {
            if let Some(output) = self.protocol.output(&self.counts) {
                if let Some(k) = open.take() {
                    records[k].recovery_time = self.parallel_time() - records[k].at;
                    records[k].output_after = Some(output);
                }
                let mut r = self.finish(RunStatus::Converged, Some(output));
                r.faults = records;
                return r;
            }
            if self.interactions >= opts.max_interactions {
                let mut r = self.finish(RunStatus::Exhausted, None);
                r.faults = records;
                return r;
            }
            let len = draw_batch_len(&mut self.rng, self.n)
                .min(opts.max_interactions - self.interactions);
            self.apply_batch(len);
        }
    }

    /// Run under a steady-state churn process until `stop_at` parallel
    /// time: after every batch, `Poisson`-distributed joins (drawn from the
    /// `initial` distribution) and leaves (multinomial thinning of the live
    /// counts, never below two agents) are applied and the Fenwick mirror
    /// rebuilt; a [`ChurnSample`] is recorded each time the clock crosses a
    /// multiple of the process's sampling period.
    ///
    /// Convergence does not stop a churned run; the status is
    /// [`RunStatus::Converged`] iff the output predicate fires at
    /// `stop_at`, and the series carries the history. Batches are never
    /// truncated at `stop_at` (the run halts at the first batch boundary
    /// past it), which keeps checkpointed and uninterrupted runs on the
    /// same RNG trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or does not cover the state space.
    pub fn run_churned(
        &mut self,
        opts: &RunOptions,
        churn: &ChurnProcess,
        initial: &[u64],
        stop_at: f64,
    ) -> RunResult {
        assert_eq!(
            initial.len(),
            self.counts.len(),
            "join distribution must cover the state space"
        );
        let initial_total: u64 = initial.iter().sum();
        assert!(initial_total > 0, "churn needs a join distribution");
        let mut next_mark = churn.next_mark(self.parallel_time());
        let mut series: Vec<ChurnSample> = Vec::new();
        while self.parallel_time() < stop_at && self.interactions < opts.max_interactions {
            let len = draw_batch_len(&mut self.rng, self.n)
                .min(opts.max_interactions - self.interactions);
            self.apply_batch(len);
            self.apply_churn_events(churn, initial, initial_total, len);
            let clock = self.parallel_time();
            if clock >= next_mark {
                series.push(self.churn_sample());
                next_mark = churn.next_mark(clock);
            }
        }
        let output = self.protocol.output(&self.counts);
        let status = if output.is_some() {
            RunStatus::Converged
        } else {
            RunStatus::Exhausted
        };
        let mut r = self.finish(status, output);
        r.series = series;
        r
    }

    /// Poisson join/leave events covering a batch of `len` interactions,
    /// applied to the counts vector in `O(S)`. The clock folds before the
    /// population changes; leaves are per-cell capped so counts never go
    /// negative (the multinomial thinning samples with replacement).
    ///
    /// Uniform-target departures keep the exact RNG draw sequence from
    /// before targeting existed; targeted departures thin the
    /// census-chosen opinion class first (a class-masked multinomial) and
    /// any remainder falls back to the uniform thinning.
    fn apply_churn_events(
        &mut self,
        churn: &ChurnProcess,
        initial: &[u64],
        initial_total: u64,
        len: u64,
    ) {
        let (joins, leaves) = churn.draw_events(&mut self.rng, len);
        let leaves = leaves.min(self.n - 2);
        if joins == 0 && leaves == 0 {
            return;
        }
        self.fold_clock();
        let mut out = Vec::new();
        let mut remaining = leaves;
        if remaining > 0 && churn.target() != ChurnTarget::Uniform {
            let census = self.opinion_census();
            let want = match churn.target() {
                ChurnTarget::Uniform => None,
                ChurnTarget::Plurality => census.leader(),
                ChurnTarget::Minority => census.weakest(),
            };
            // An opinion-free census degrades to uniform departures.
            if let Some(want) = want {
                let class: Vec<u64> = self
                    .counts
                    .iter()
                    .enumerate()
                    .map(|(s, &c)| {
                        if self.protocol.opinion(s) == Some(want) {
                            c
                        } else {
                            0
                        }
                    })
                    .collect();
                let class_total: u64 = class.iter().sum();
                let k = remaining.min(class_total);
                if k > 0 {
                    multinomial_into(&mut self.rng, k, &class, class_total, &mut out);
                    for (s, c) in out.drain(..) {
                        let c = c.min(self.counts[s]);
                        self.counts[s] -= c;
                        self.n -= c;
                        remaining -= c;
                    }
                }
            }
        }
        if remaining > 0 {
            multinomial_into(&mut self.rng, remaining, &self.counts, self.n, &mut out);
            for (s, c) in out.drain(..) {
                let c = c.min(self.counts[s]);
                self.counts[s] -= c;
                self.n -= c;
            }
        }
        if joins > 0 {
            multinomial_into(&mut self.rng, joins, initial, initial_total, &mut out);
            for (s, c) in out {
                self.counts[s] += c;
            }
            self.n += joins;
        }
        self.tree.rebuild(&self.counts, self.threads);
    }

    /// The health sample `run_churned` records at each sampling mark.
    fn churn_sample(&self) -> ChurnSample {
        let mut tally: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (s, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if let Some(op) = self.protocol.opinion(s) {
                    *tally.entry(op).or_insert(0) += c;
                }
            }
        }
        let top = tally.values().copied().max().unwrap_or(0);
        ChurnSample {
            t: self.parallel_time(),
            population: self.n,
            plurality_frac: top as f64 / self.n as f64,
            output: self.protocol.output(&self.counts),
        }
    }

    fn finish(&self, status: RunStatus, output: Option<u32>) -> RunResult {
        RunResult {
            status,
            output,
            interactions: self.interactions,
            parallel_time: self.parallel_time(),
            faults: Vec::new(),
            series: Vec::new(),
            notes: if self.scheduler_saturated {
                vec![RunNote::SchedulerSaturated]
            } else {
                Vec::new()
            },
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// One-way epidemic as a table protocol: state 1 infects state 0.
    pub(crate) struct Epi;
    impl TableProtocol for Epi {
        fn states(&self) -> usize {
            2
        }

        fn is_deterministic(&self) -> bool {
            true
        }
        fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
            if a == 1 || b == 1 {
                (1, 1)
            } else {
                (0, 0)
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            (counts[0] == 0).then_some(1)
        }
    }

    /// 3-state approximate majority (blank 0, A 1, B 2).
    pub(crate) struct Am3;
    impl TableProtocol for Am3 {
        fn states(&self) -> usize {
            3
        }

        fn is_deterministic(&self) -> bool {
            true
        }
        fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
            match (a, b) {
                (1, 2) | (2, 1) => (a, 0),
                (1, 0) => (1, 1),
                (2, 0) => (2, 2),
                _ => (a, b),
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            if counts[0] == 0 && counts[2] == 0 {
                Some(1)
            } else if counts[0] == 0 && counts[1] == 0 {
                Some(2)
            } else {
                None
            }
        }
    }

    /// A randomized table: on an (A, B) clash the *pair* flips one fair
    /// coin and both adopt the winner — drifts nowhere, but exercises the
    /// per-interaction RNG path.
    struct CoinClash;
    impl TableProtocol for CoinClash {
        fn states(&self) -> usize {
            2
        }
        fn delta(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
            use rand::Rng;
            if a != b {
                let w = usize::from(rng.gen::<bool>());
                (w, w)
            } else {
                (a, b)
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            counts
                .iter()
                .position(|&c| c == 0)
                .map(|loser| 1 - loser as u32)
        }
    }

    #[test]
    fn population_is_conserved() {
        let mut sim = BatchSimulation::new(Am3, vec![0, 600, 400], 3);
        for _ in 0..100 {
            sim.step_batch();
            assert_eq!(sim.counts().iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn epidemic_completes_in_logarithmic_time() {
        let n = 1 << 16;
        let mut sim = BatchSimulation::new(Epi, vec![n - 1, 1], 9);
        let r = sim.run(&RunOptions::default());
        assert_eq!(r.status, RunStatus::Converged);
        let model = (n as f64).log2() + (n as f64).ln();
        assert!(
            (r.parallel_time - model).abs() < model,
            "epidemic time {} vs model {model}",
            r.parallel_time
        );
    }

    #[test]
    fn batch_matches_sequential_epidemic_distribution() {
        // Compare median completion times of the batched and sequential
        // engines on the same protocol: they must agree within ~15%.
        use crate::protocol::Protocol;
        use crate::sim::Simulation;

        struct SeqEpi;
        impl Protocol for SeqEpi {
            type State = u8;
            fn interact(&mut self, _t: u64, a: &mut u8, b: &mut u8, _rng: &mut SimRng) {
                let i = *a | *b;
                *a = i;
                *b = i;
            }
            fn converged(&self, states: &[u8]) -> Option<u32> {
                states.iter().all(|&s| s == 1).then_some(1)
            }
        }

        let n = 4096usize;
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[v.len() / 2]
        };
        // The sequential engine checks convergence every 64 interactions so
        // its reported times are not quantised to whole parallel-time units
        // (the batched engine checks every Θ(√n)-interaction batch).
        let seq_opts = RunOptions {
            max_interactions: u64::MAX,
            check_every: 64,
        };
        let seq: Vec<f64> = (0..25)
            .map(|seed| {
                let mut states = vec![0u8; n];
                states[0] = 1;
                let mut sim = Simulation::new(SeqEpi, states, seed);
                sim.run(&seq_opts).parallel_time
            })
            .collect();
        let bat: Vec<f64> = (0..25)
            .map(|seed| {
                let mut sim = BatchSimulation::new(Epi, vec![n as u64 - 1, 1], 1000 + seed);
                sim.run(&RunOptions::default()).parallel_time
            })
            .collect();
        let (ms, mb) = (median(seq), median(bat));
        assert!(
            (ms - mb).abs() / ms < 0.15,
            "sequential {ms} vs batched {mb} diverge"
        );
    }

    #[test]
    fn batched_majority_picks_large_bias_winner() {
        let n = 1_000_000u64;
        let mut sim = BatchSimulation::new(Am3, vec![0, n * 3 / 5, n * 2 / 5], 11);
        let r = sim.run(&RunOptions {
            max_interactions: 200 * n,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    fn hundred_million_agents_converge_quickly() {
        // The point of the multinomial engine: n = 10⁸ is interactive.
        let n = 100_000_000u64;
        let mut sim = BatchSimulation::new(Am3, vec![0, n / 2 + n / 10, n / 2 - n / 10], 5);
        let r = sim.run(&RunOptions {
            max_interactions: 100 * n,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
        assert!(
            r.parallel_time < 15.0 * (n as f64).ln(),
            "time {}",
            r.parallel_time
        );
    }

    #[test]
    fn randomized_tables_converge_and_conserve() {
        let n = 10_000u64;
        let mut sim = BatchSimulation::new(CoinClash, vec![n / 2, n / 2], 13);
        let r = sim.run(&RunOptions {
            max_interactions: 20_000 * n,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Converged);
        assert!(r.output == Some(0) || r.output == Some(1));
        assert_eq!(sim.counts().iter().sum::<u64>(), n);
    }

    #[test]
    fn randomized_coin_is_fair_across_runs() {
        // At a 50/50 start the coin-clash walk is symmetric: either side
        // should win a healthy share of runs.
        let n = 2_000u64;
        let wins0 = (0..40)
            .filter(|&seed| {
                let mut sim = BatchSimulation::new(CoinClash, vec![n / 2, n / 2], seed);
                let r = sim.run(&RunOptions {
                    max_interactions: 100_000 * n,
                    check_every: 0,
                });
                r.output == Some(0)
            })
            .count();
        assert!((5..=35).contains(&wins0), "state 0 won {wins0}/40 runs");
    }

    #[test]
    fn budget_is_respected_and_batches_truncated() {
        let n = 100_000u64;
        let mut sim = BatchSimulation::new(Am3, vec![n, 0, 0], 2);
        let r = sim.run(&RunOptions {
            max_interactions: 1000,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Exhausted);
        assert_eq!(
            r.interactions, 1000,
            "final batch must truncate to the budget"
        );
    }

    #[test]
    fn overdraw_prone_configurations_stay_consistent() {
        // One agent of state 1 in a sea of state 0: every batch risks
        // overdrawing state 1, exercising the retry/fallback path.
        struct Swap;
        impl TableProtocol for Swap {
            fn states(&self) -> usize {
                2
            }

            fn is_deterministic(&self) -> bool {
                true
            }
            fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
                (b, a)
            }
            fn output(&self, _counts: &[u64]) -> Option<u32> {
                None
            }
        }
        let mut sim = BatchSimulation::new(Swap, vec![999, 1], 7);
        for _ in 0..2000 {
            sim.step_batch();
            assert_eq!(sim.counts().iter().sum::<u64>(), 1000);
            assert_eq!(sim.counts()[1], 1, "swap conserves the single token");
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_counts_rejected() {
        let _ = BatchSimulation::new(Epi, vec![1, 1, 1], 0);
    }

    #[test]
    fn admit_grows_the_population_without_touching_the_rng() {
        let mut sim = BatchSimulation::new(Am3, vec![0, 600, 400], 17);
        for _ in 0..10 {
            sim.step_batch();
        }
        let rng_before = sim.rng_state();
        let t_before = sim.parallel_time();
        sim.admit(2, 250);
        assert_eq!(sim.rng_state(), rng_before, "admit must draw no randomness");
        assert_eq!(sim.counts().iter().sum::<u64>(), 1250);
        assert_eq!(sim.n(), 1250);
        // The clock folds: parallel time is continuous across the admit.
        assert_eq!(sim.parallel_time(), t_before);
        // Admitting zero agents is a true no-op.
        let snap = sim.counts().to_vec();
        sim.admit(0, 0);
        assert_eq!(sim.counts(), &snap[..]);
        // The admitted agents participate: the clock advances at the new
        // population's rate and counts keep summing to the grown total.
        sim.step_batch();
        assert_eq!(sim.counts().iter().sum::<u64>(), 1250);
        assert!(sim.parallel_time() > t_before);
    }

    #[test]
    #[should_panic]
    fn admit_rejects_out_of_range_states() {
        let mut sim = BatchSimulation::new(Am3, vec![0, 600, 400], 17);
        sim.admit(3, 1);
    }

    #[test]
    fn batches_counter_tracks_applied_batches() {
        let mut sim = BatchSimulation::new(Am3, vec![0, 600, 400], 17);
        assert_eq!(sim.batches(), 0);
        for _ in 0..5 {
            sim.step_batch();
        }
        assert_eq!(sim.batches(), 5);
    }

    /// Step `batches` batches at the given thread count and return the
    /// observable trajectory endpoint: counts, RNG state, clock, batches.
    fn trajectory<P: TableProtocol>(
        protocol: P,
        counts: Vec<u64>,
        seed: u64,
        threads: usize,
        batches: u64,
    ) -> (Vec<u64>, [u64; 4], f64, u64) {
        let mut sim = BatchSimulation::new(protocol, counts, seed);
        sim.set_threads(threads);
        for _ in 0..batches {
            sim.step_batch();
        }
        (
            sim.counts().to_vec(),
            sim.rng_state(),
            sim.parallel_time(),
            sim.batches(),
        )
    }

    #[test]
    fn thread_count_never_changes_the_trajectory() {
        // n large enough that batch lengths (ℓ ≈ 0.627·√n ≈ 1250) cross
        // PARALLEL_CUTOFF, so threads > 1 actually takes the pooled path.
        let n = 4_000_000u64;
        let counts = vec![0u64, n / 2 + 120_000, n / 2 - 120_000];
        let want = trajectory(Am3, counts.clone(), 23, 1, 60);
        for threads in [2usize, 8] {
            let got = trajectory(Am3, counts.clone(), 23, threads, 60);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn thread_count_invariance_holds_for_randomized_tables() {
        // CoinClash consumes per-interaction randomness inside the
        // subtree kernels — the stress case for substream assignment.
        let n = 4_000_000u64;
        let counts = vec![n / 2 + 40_000, n / 2 - 40_000];
        let want = trajectory(CoinClash, counts.clone(), 31, 1, 40);
        for threads in [2usize, 8] {
            let got = trajectory(CoinClash, counts.clone(), 31, threads, 40);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn thread_count_invariance_holds_under_an_adversary() {
        // The Byzantine split runs as array passes inside each subtree;
        // the forged-opinion resolution happens once per batch on the
        // main stream, so it too must be thread-invariant.
        let n = 4_000_000u64;
        let counts = vec![0u64, n / 2 + 80_000, n / 2 - 80_000];
        let run = |threads: usize| {
            let mut sim = BatchSimulation::new(Am3, counts.clone(), 41);
            sim.set_adversary(Arc::new(crate::fault::ByzantineAdversary {
                frac: 0.05,
                opinion: Some(2),
            }));
            sim.set_threads(threads);
            for _ in 0..40 {
                sim.step_batch();
            }
            (sim.counts().to_vec(), sim.rng_state())
        };
        let want = run(1);
        for threads in [2usize, 8] {
            assert_eq!(run(threads), want, "threads = {threads}");
        }
    }

    #[test]
    fn changing_threads_mid_run_does_not_disturb_the_stream() {
        // set_threads is pure scheduling: flipping it between batches
        // must leave the trajectory on the single-thread rail.
        let n = 4_000_000u64;
        let counts = vec![0u64, n / 2 + 50_000, n / 2 - 50_000];
        let want = trajectory(Am3, counts.clone(), 53, 1, 30);
        let mut sim = BatchSimulation::new(Am3, counts, 53);
        for i in 0..30u64 {
            sim.set_threads(if i % 3 == 0 { 1 } else { 4 } as usize);
            sim.step_batch();
        }
        assert_eq!(
            (
                sim.counts().to_vec(),
                sim.rng_state(),
                sim.parallel_time(),
                sim.batches()
            ),
            want
        );
    }

    #[test]
    fn ten_billion_agents_conserve_population() {
        // n = 10^10 exceeds u32 and any dense-agent representation; the
        // configuration-space engine must hold it in O(S) memory with no
        // intermediate overflow. Batch lengths run ≈ 62 670 here.
        let n = 10_000_000_000u64;
        let mut sim = BatchSimulation::new(Am3, vec![0, 5_500_000_000, 4_500_000_000], 71);
        sim.set_threads(2); // exercise the pooled path at scale too
        for _ in 0..50 {
            sim.step_batch();
            assert_eq!(sim.counts().iter().sum::<u64>(), n);
        }
        assert!(
            sim.interactions() > 1_000_000,
            "3-state clash makes progress"
        );
        // The majority dynamics pull mass toward opinion 1's blank state
        // path; verify both opinions still hold u32-overflowing counts.
        assert!(sim.counts()[1] > u32::MAX as u64);
        assert!(sim.counts()[2] > u32::MAX as u64);
    }
}
