//! The per-pair configuration-space engine (the seed's `BatchSimulation`).
//!
//! Draws a collision-free batch length, then samples and applies every
//! interaction of the batch individually: two linear-scan state draws and
//! one transition per interaction — `Θ(S)` work per interaction. Retained
//! as the semantic reference implementation: the multinomial engine
//! ([`crate::batch::BatchSimulation`]) must match its observable
//! distributions (see `tests/engine_equivalence.rs`), and the criterion
//! benches report the speedup against it.

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;

use crate::batch::birthday::draw_batch_len_walk;
use crate::batch::multinomial::poisson;
use crate::batch::TableProtocol;
use crate::churn::ChurnProcess;
use crate::fault::{
    resolve_forgery, strike_counts, Adversary, ChurnTarget, FaultPlan, FaultRecord, LieTarget,
    OpinionCensus, Scheduler,
};
use crate::protocol::SimRng;
use crate::result::{ChurnSample, RunNote, RunOptions, RunResult, RunStatus};

/// A configuration-space simulation applying batch interactions one pair at
/// a time.
#[derive(Debug, Clone)]
pub struct PairwiseBatchSimulation<P: TableProtocol> {
    protocol: P,
    counts: Vec<u64>,
    n: u64,
    rng: SimRng,
    interactions: u64,
    /// Parallel time accumulated before `interactions_base` — non-zero only
    /// after churn changed the population size.
    time_base: f64,
    /// Interactions already folded into `time_base`.
    interactions_base: u64,
    scheduler: Option<Arc<dyn Scheduler>>,
    /// Adversary snapshot: `(lie probability, what liars report)`.
    lie: Option<(f64, LieTarget)>,
    /// Retained only for *adaptive* adversaries, whose `lie` snapshot is
    /// re-aimed at the live census before every batch.
    adversary: Option<Arc<dyn Adversary>>,
    scheduler_saturated: bool,
}

impl<P: TableProtocol> PairwiseBatchSimulation<P> {
    /// Create a simulation from per-state counts.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than two agents or `counts` does
    /// not match the protocol's state space.
    pub fn new(protocol: P, counts: Vec<u64>, seed: u64) -> Self {
        assert_eq!(
            counts.len(),
            protocol.states(),
            "counts must cover the state space"
        );
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must contain at least two agents");
        Self {
            protocol,
            counts,
            n,
            rng: SimRng::seed_from_u64(seed),
            interactions: 0,
            time_base: 0.0,
            interactions_base: 0,
            scheduler: None,
            lie: None,
            adversary: None,
            scheduler_saturated: false,
        }
    }

    /// Replace the uniform pair scheduler with an adversarial one.
    pub fn set_scheduler(&mut self, scheduler: Arc<dyn Scheduler>) {
        self.scheduler = Some(scheduler);
    }

    /// Accepted for API parity with
    /// [`BatchSimulation::set_threads`](crate::BatchSimulation::set_threads)
    /// and ignored: the pairwise reference engine applies every
    /// interaction against the *live* configuration, so its batches are
    /// inherently sequential. Results are unaffected (as they are, by
    /// design, on the threaded engine too).
    pub fn set_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Install a Byzantine interaction adversary. The honest path (and its
    /// RNG stream) is untouched when none is set. A fixed forged opinion
    /// with no state in this protocol's table degrades to honesty.
    pub fn set_adversary(&mut self, adversary: Arc<dyn Adversary>) {
        let frac = adversary.lie_frac();
        if frac <= 0.0 {
            return;
        }
        if adversary.adaptive() {
            self.adversary = Some(adversary);
            self.refresh_lie();
        } else {
            self.lie =
                resolve_forgery(&self.protocol, adversary.forgery(&OpinionCensus::default()))
                    .map(|t| (frac, t));
        }
    }

    /// The live opinion tally in `O(S)`, for adaptive forgeries and
    /// targeted churn.
    fn opinion_census(&self) -> OpinionCensus {
        OpinionCensus::from_tallies(
            self.counts
                .iter()
                .enumerate()
                .filter_map(|(s, &c)| self.protocol.opinion(s).map(|op| (op, c))),
        )
    }

    /// Re-aim an adaptive adversary's lie snapshot at the live census once
    /// per batch. Draws no randomness; a no-op when no adaptive adversary
    /// is installed.
    fn refresh_lie(&mut self) {
        let Some(adv) = self.adversary.clone() else {
            return;
        };
        self.lie = resolve_forgery(&self.protocol, adv.forgery(&self.opinion_census()))
            .map(|t| (adv.lie_frac(), t));
    }

    /// Build the configuration from per-agent states.
    pub fn from_agents(protocol: P, agents: &[usize], seed: u64) -> Self {
        let mut counts = vec![0u64; protocol.states()];
        for &s in agents {
            counts[s] += 1;
        }
        Self::new(protocol, counts, seed)
    }

    /// Current configuration.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Interactions simulated so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Parallel time elapsed: interactions divided by the population size,
    /// folded over population changes (churn) so the clock stays
    /// continuous.
    pub fn parallel_time(&self) -> f64 {
        self.time_base + (self.interactions - self.interactions_base) as f64 / self.n as f64
    }

    /// The raw RNG state, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// The clock's checkpoint triple: `(interactions, interactions_base,
    /// time_base)`.
    pub fn clock_parts(&self) -> (u64, u64, f64) {
        (self.interactions, self.interactions_base, self.time_base)
    }

    /// Restore RNG and clock from a checkpoint, making subsequent batches
    /// replay the checkpointed run's stream exactly.
    pub fn restore_clock(
        &mut self,
        interactions: u64,
        interactions_base: u64,
        time_base: f64,
        rng: [u64; 4],
    ) {
        self.interactions = interactions;
        self.interactions_base = interactions_base;
        self.time_base = time_base;
        self.rng = SimRng::from_state(rng);
    }

    /// Fold the elapsed clock into `time_base`; must be called *before*
    /// the population size changes.
    fn fold_clock(&mut self) {
        self.time_base = self.parallel_time();
        self.interactions_base = self.interactions;
    }

    /// Sample one state weighted by the current counts (linear scan — the
    /// seed behaviour this engine preserves).
    fn sample_state(&mut self) -> usize {
        let mut target = self.rng.gen_range(0..self.n);
        for (s, &c) in self.counts.iter().enumerate() {
            if target < c {
                return s;
            }
            target -= c;
        }
        unreachable!("counts sum to n")
    }

    /// One weighted state draw under a scheduler (linear scan over
    /// `counts · opinion_weight`); degrades to the uniform draw when every
    /// weight is zero.
    fn sample_state_weighted(&mut self, sched: &dyn Scheduler) -> usize {
        let weight = |protocol: &P, s: usize, c: u64| {
            c as f64 * sched.opinion_weight(protocol.opinion(s)).clamp(0.0, 1.0)
        };
        let total: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(s, &c)| weight(&self.protocol, s, c))
            .sum();
        if total <= 0.0 {
            self.scheduler_saturated = true;
            return self.sample_state();
        }
        let mut target = self.rng.gen::<f64>() * total;
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .expect("population is non-empty");
        for s in 0..self.counts.len() {
            target -= weight(&self.protocol, s, self.counts[s]);
            if target < 0.0 {
                return s;
            }
        }
        last // float residue: land on the last occupied state
    }

    /// One draw from the opinion class `want`, by raw counts; `None` when
    /// the class is empty.
    fn sample_state_in_class(&mut self, want: Option<u32>) -> Option<usize> {
        let total: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.protocol.opinion(s) == want)
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            return None;
        }
        let mut target = self.rng.gen_range(0..total);
        for s in 0..self.counts.len() {
            if self.protocol.opinion(s) != want {
                continue;
            }
            if target < self.counts[s] {
                return Some(s);
            }
            target -= self.counts[s];
        }
        unreachable!("class counts sum to total")
    }

    /// Apply `len` interactions one pair at a time, honoring the scheduler
    /// if one is set.
    fn apply_len(&mut self, len: u64) {
        self.refresh_lie();
        let sched = self.scheduler.clone();
        let assort = sched
            .as_deref()
            .map_or(0.0, |s| s.assortativity().clamp(0.0, 1.0));
        for _ in 0..len {
            let (a, mut b) = match sched.as_deref() {
                None => (self.sample_state(), self.sample_state()),
                Some(s) => {
                    let a = self.sample_state_weighted(s);
                    let b = if assort > 0.0 && self.rng.gen_bool(assort) {
                        let want = self.protocol.opinion(a);
                        self.sample_state_in_class(want)
                            .unwrap_or_else(|| self.sample_state_weighted(s))
                    } else {
                        self.sample_state_weighted(s)
                    };
                    (a, b)
                }
            };
            // A same-state draw is fine (two distinct agents can share a
            // state) unless the state holds a single agent: then `a` and
            // `b` would be the *same* agent, which the sequential model
            // never pairs. Redraw — some other state is occupied (n ≥ 2).
            while b == a && self.counts[a] < 2 {
                b = self.sample_state();
            }
            let (a2, b2) = match self.lie {
                None => self.protocol.delta(a, b, &mut self.rng),
                Some((frac, forged)) => self.byzantine_delta(a, b, frac, forged),
            };
            if (a2, b2) == (a, b) {
                continue;
            }
            self.counts[a] -= 1;
            self.counts[b] -= 1;
            self.counts[a2] += 1;
            self.counts[b2] += 1;
        }
        self.interactions += len;
    }

    /// One interaction under the Byzantine adversary snapshot: each
    /// participant independently lies with probability `frac`; a liar
    /// shows the forged state and keeps its own, the honest partner
    /// transitions against the forgery, and both lying is a no-op.
    fn byzantine_delta(
        &mut self,
        a: usize,
        b: usize,
        frac: f64,
        forged: LieTarget,
    ) -> (usize, usize) {
        let a_lies = self.rng.gen_bool(frac);
        let b_lies = self.rng.gen_bool(frac);
        let forge = |rng: &mut SimRng, states: usize| match forged {
            LieTarget::Fixed(f) => f,
            LieTarget::Pair(x, y) => {
                if rng.gen_bool(0.5) {
                    x
                } else {
                    y
                }
            }
            LieTarget::Random => rng.gen_range(0..states),
        };
        let states = self.counts.len();
        match (a_lies, b_lies) {
            (true, true) => (a, b),
            (true, false) => {
                let f = forge(&mut self.rng, states);
                let (_, b2) = self.protocol.delta(f, b, &mut self.rng);
                (a, b2)
            }
            (false, true) => {
                let f = forge(&mut self.rng, states);
                let (a2, _) = self.protocol.delta(a, f, &mut self.rng);
                (a2, b)
            }
            (false, false) => self.protocol.delta(a, b, &mut self.rng),
        }
    }

    /// Advance one collision-free batch; returns the number of interactions
    /// applied.
    pub fn step_batch(&mut self) -> u64 {
        let len = draw_batch_len_walk(&mut self.rng, self.n);
        self.apply_len(len);
        len
    }

    /// Run until convergence or budget exhaustion.
    pub fn run(&mut self, opts: &RunOptions) -> RunResult {
        loop {
            if let Some(output) = self.protocol.output(&self.counts) {
                return self.finish(RunStatus::Converged, Some(output));
            }
            if self.interactions >= opts.max_interactions {
                return self.finish(RunStatus::Exhausted, None);
            }
            self.step_batch();
        }
    }

    /// Run under a fault plan — the per-pair analogue of
    /// [`BatchSimulation::run_faulted`](crate::BatchSimulation::run_faulted):
    /// batches are truncated to land exactly on each fault epoch and
    /// strikes apply to the census between batches. An empty plan replays
    /// [`run`](Self::run) exactly.
    pub fn run_faulted(&mut self, opts: &RunOptions, plan: &FaultPlan) -> RunResult {
        if plan.is_empty() {
            return self.run(opts);
        }
        let initial = self.counts.clone();
        let mut records: Vec<FaultRecord> = Vec::new();
        let mut open: Option<usize> = None;

        for (at, action, label) in plan.schedule() {
            let target = (at.max(0.0) * self.n as f64).ceil() as u64;
            if target > opts.max_interactions {
                break; // scheduled beyond the budget: never fires
            }
            while self.interactions < target {
                if let (Some(k), Some(output)) = (open, self.protocol.output(&self.counts)) {
                    records[k].recovery_time = self.parallel_time() - records[k].at;
                    records[k].output_after = Some(output);
                    open = None;
                }
                let len =
                    draw_batch_len_walk(&mut self.rng, self.n).min(target - self.interactions);
                self.apply_len(len);
            }
            let output_before = self.protocol.output(&self.counts);
            if let (Some(k), Some(output)) = (open, output_before) {
                records[k].recovery_time = self.parallel_time() - records[k].at;
                records[k].output_after = Some(output);
            }
            strike_counts(
                &self.protocol,
                &mut self.counts,
                &initial,
                &action,
                &mut self.rng,
            );
            records.push(FaultRecord {
                at: self.parallel_time(),
                hook: label,
                output_before,
                output_after: None,
                recovery_time: f64::NAN,
            });
            open = Some(records.len() - 1);
        }

        loop {
            if let Some(output) = self.protocol.output(&self.counts) {
                if let Some(k) = open.take() {
                    records[k].recovery_time = self.parallel_time() - records[k].at;
                    records[k].output_after = Some(output);
                }
                let mut r = self.finish(RunStatus::Converged, Some(output));
                r.faults = records;
                return r;
            }
            if self.interactions >= opts.max_interactions {
                let mut r = self.finish(RunStatus::Exhausted, None);
                r.faults = records;
                return r;
            }
            self.step_batch();
        }
    }

    /// Run under a steady-state churn process until `stop_at` parallel
    /// time — the per-pair analogue of
    /// [`BatchSimulation::run_churned`](crate::BatchSimulation::run_churned):
    /// Poisson joins (from the `initial` distribution) and leaves (one
    /// live-count draw each, never below two agents) after every batch,
    /// with a [`ChurnSample`] at each crossing of the sampling period.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or does not cover the state space.
    pub fn run_churned(
        &mut self,
        opts: &RunOptions,
        churn: &ChurnProcess,
        initial: &[u64],
        stop_at: f64,
    ) -> RunResult {
        assert_eq!(
            initial.len(),
            self.counts.len(),
            "join distribution must cover the state space"
        );
        let initial_total: u64 = initial.iter().sum();
        assert!(initial_total > 0, "churn needs a join distribution");
        let mut next_mark = churn.next_mark(self.parallel_time());
        let mut series: Vec<ChurnSample> = Vec::new();
        while self.parallel_time() < stop_at && self.interactions < opts.max_interactions {
            let len = draw_batch_len_walk(&mut self.rng, self.n)
                .min(opts.max_interactions - self.interactions);
            self.apply_len(len);
            self.apply_churn_events(churn, initial, initial_total, len);
            let clock = self.parallel_time();
            if clock >= next_mark {
                series.push(self.churn_sample());
                next_mark = churn.next_mark(clock);
            }
        }
        let output = self.protocol.output(&self.counts);
        let status = if output.is_some() {
            RunStatus::Converged
        } else {
            RunStatus::Exhausted
        };
        let mut r = self.finish(status, output);
        r.series = series;
        r
    }

    /// Poisson join/leave events covering a batch of `len` interactions,
    /// applied one draw at a time against the live counts (the per-pair
    /// idiom of this engine). The clock folds before the population
    /// changes; leaves keep at least two agents.
    fn apply_churn_events(
        &mut self,
        churn: &ChurnProcess,
        initial: &[u64],
        initial_total: u64,
        len: u64,
    ) {
        let spec = churn.spec();
        let joins = poisson(&mut self.rng, spec.join * len as f64);
        let leaves = poisson(&mut self.rng, spec.leave * len as f64).min(self.n - 2);
        if joins == 0 && leaves == 0 {
            return;
        }
        self.fold_clock();
        // Uniform-target departures keep the exact per-draw RNG sequence
        // from before targeting existed; targeted departures draw from the
        // census-chosen opinion class, falling back to a uniform draw when
        // the class runs dry.
        let want = match spec.target {
            ChurnTarget::Uniform => None,
            ChurnTarget::Plurality => self.opinion_census().leader(),
            ChurnTarget::Minority => self.opinion_census().weakest(),
        };
        for _ in 0..leaves {
            let victim = match want {
                None => self.sample_state(),
                Some(op) => self
                    .sample_state_in_class(Some(op))
                    .unwrap_or_else(|| self.sample_state()),
            };
            self.counts[victim] -= 1;
            self.n -= 1;
        }
        for _ in 0..joins {
            let mut target = self.rng.gen_range(0..initial_total);
            for (s, &c) in initial.iter().enumerate() {
                if target < c {
                    self.counts[s] += 1;
                    break;
                }
                target -= c;
            }
            self.n += 1;
        }
    }

    /// The health sample `run_churned` records at each sampling mark.
    fn churn_sample(&self) -> ChurnSample {
        let mut tally: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (s, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if let Some(op) = self.protocol.opinion(s) {
                    *tally.entry(op).or_insert(0) += c;
                }
            }
        }
        let top = tally.values().copied().max().unwrap_or(0);
        ChurnSample {
            t: self.parallel_time(),
            population: self.n,
            plurality_frac: top as f64 / self.n as f64,
            output: self.protocol.output(&self.counts),
        }
    }

    fn finish(&self, status: RunStatus, output: Option<u32>) -> RunResult {
        RunResult {
            status,
            output,
            interactions: self.interactions,
            parallel_time: self.parallel_time(),
            faults: Vec::new(),
            series: Vec::new(),
            notes: if self.scheduler_saturated {
                vec![RunNote::SchedulerSaturated]
            } else {
                Vec::new()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::sim::tests::{Am3, Epi};

    #[test]
    fn population_is_conserved() {
        let mut sim = PairwiseBatchSimulation::new(Am3, vec![0, 600, 400], 3);
        for _ in 0..100 {
            sim.step_batch();
            assert_eq!(sim.counts().iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn epidemic_completes_in_logarithmic_time() {
        let n = 1 << 16;
        let mut sim = PairwiseBatchSimulation::new(Epi, vec![n - 1, 1], 9);
        let r = sim.run(&RunOptions::default());
        assert_eq!(r.status, RunStatus::Converged);
        let model = (n as f64).log2() + (n as f64).ln();
        assert!(
            (r.parallel_time - model).abs() < model,
            "epidemic time {} vs model {model}",
            r.parallel_time
        );
    }

    #[test]
    fn majority_picks_large_bias_winner() {
        let n = 100_000u64;
        let mut sim = PairwiseBatchSimulation::new(Am3, vec![0, n * 3 / 5, n * 2 / 5], 11);
        let r = sim.run(&RunOptions {
            max_interactions: 200 * n,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    #[should_panic]
    fn mismatched_counts_rejected() {
        let _ = PairwiseBatchSimulation::new(Epi, vec![1, 1, 1], 0);
    }
}
