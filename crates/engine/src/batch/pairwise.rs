//! The per-pair configuration-space engine (the seed's `BatchSimulation`).
//!
//! Draws a collision-free batch length, then samples and applies every
//! interaction of the batch individually: two linear-scan state draws and
//! one transition per interaction — `Θ(S)` work per interaction. Retained
//! as the semantic reference implementation: the multinomial engine
//! ([`crate::batch::BatchSimulation`]) must match its observable
//! distributions (see `tests/engine_equivalence.rs`), and the criterion
//! benches report the speedup against it.

use rand::Rng;
use rand::SeedableRng;

use crate::batch::birthday::draw_batch_len_walk;
use crate::batch::TableProtocol;
use crate::protocol::SimRng;
use crate::result::{RunOptions, RunResult, RunStatus};

/// A configuration-space simulation applying batch interactions one pair at
/// a time.
#[derive(Debug, Clone)]
pub struct PairwiseBatchSimulation<P: TableProtocol> {
    protocol: P,
    counts: Vec<u64>,
    n: u64,
    rng: SimRng,
    interactions: u64,
}

impl<P: TableProtocol> PairwiseBatchSimulation<P> {
    /// Create a simulation from per-state counts.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than two agents or `counts` does
    /// not match the protocol's state space.
    pub fn new(protocol: P, counts: Vec<u64>, seed: u64) -> Self {
        assert_eq!(
            counts.len(),
            protocol.states(),
            "counts must cover the state space"
        );
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must contain at least two agents");
        Self {
            protocol,
            counts,
            n,
            rng: SimRng::seed_from_u64(seed),
            interactions: 0,
        }
    }

    /// Build the configuration from per-agent states.
    pub fn from_agents(protocol: P, agents: &[usize], seed: u64) -> Self {
        let mut counts = vec![0u64; protocol.states()];
        for &s in agents {
            counts[s] += 1;
        }
        Self::new(protocol, counts, seed)
    }

    /// Current configuration.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Interactions simulated so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Parallel time elapsed.
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.n as f64
    }

    /// Sample one state weighted by the current counts (linear scan — the
    /// seed behaviour this engine preserves).
    fn sample_state(&mut self) -> usize {
        let mut target = self.rng.gen_range(0..self.n);
        for (s, &c) in self.counts.iter().enumerate() {
            if target < c {
                return s;
            }
            target -= c;
        }
        unreachable!("counts sum to n")
    }

    /// Advance one collision-free batch; returns the number of interactions
    /// applied.
    pub fn step_batch(&mut self) -> u64 {
        let len = draw_batch_len_walk(&mut self.rng, self.n);
        for _ in 0..len {
            let a = self.sample_state();
            let mut b = self.sample_state();
            // A same-state draw is fine (two distinct agents can share a
            // state) unless the state holds a single agent: then `a` and
            // `b` would be the *same* agent, which the sequential model
            // never pairs. Redraw — some other state is occupied (n ≥ 2).
            while b == a && self.counts[a] < 2 {
                b = self.sample_state();
            }
            let (a2, b2) = self.protocol.delta(a, b, &mut self.rng);
            if (a2, b2) == (a, b) {
                continue;
            }
            self.counts[a] -= 1;
            self.counts[b] -= 1;
            self.counts[a2] += 1;
            self.counts[b2] += 1;
        }
        self.interactions += len;
        len
    }

    /// Run until convergence or budget exhaustion.
    pub fn run(&mut self, opts: &RunOptions) -> RunResult {
        loop {
            if let Some(output) = self.protocol.output(&self.counts) {
                return self.finish(RunStatus::Converged, Some(output));
            }
            if self.interactions >= opts.max_interactions {
                return self.finish(RunStatus::Exhausted, None);
            }
            self.step_batch();
        }
    }

    fn finish(&self, status: RunStatus, output: Option<u32>) -> RunResult {
        RunResult {
            status,
            output,
            interactions: self.interactions,
            parallel_time: self.parallel_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::sim::tests::{Am3, Epi};

    #[test]
    fn population_is_conserved() {
        let mut sim = PairwiseBatchSimulation::new(Am3, vec![0, 600, 400], 3);
        for _ in 0..100 {
            sim.step_batch();
            assert_eq!(sim.counts().iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn epidemic_completes_in_logarithmic_time() {
        let n = 1 << 16;
        let mut sim = PairwiseBatchSimulation::new(Epi, vec![n - 1, 1], 9);
        let r = sim.run(&RunOptions::default());
        assert_eq!(r.status, RunStatus::Converged);
        let model = (n as f64).log2() + (n as f64).ln();
        assert!(
            (r.parallel_time - model).abs() < model,
            "epidemic time {} vs model {model}",
            r.parallel_time
        );
    }

    #[test]
    fn majority_picks_large_bias_winner() {
        let n = 100_000u64;
        let mut sim = PairwiseBatchSimulation::new(Am3, vec![0, n * 3 / 5, n * 2 / 5], 11);
        let r = sim.run(&RunOptions {
            max_interactions: 200 * n,
            check_every: 0,
        });
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    #[should_panic]
    fn mismatched_counts_rejected() {
        let _ = PairwiseBatchSimulation::new(Epi, vec![1, 1, 1], 0);
    }
}
