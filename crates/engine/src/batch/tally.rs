//! The per-initiator tally kernel shared by the serial and threaded
//! batch paths.
//!
//! A uniform batch tally is a two-level conditional-binomial split tree:
//! the root multinomial splits the batch's `ℓ` interactions over
//! initiator states, and each initiator state's subtree resolves its
//! responders (a responder multinomial above the split threshold, one
//! Fenwick draw per interaction below it) and folds the resulting
//! transitions into per-state `delta`/`usage` accumulators.
//!
//! **Determinism model.** The root split is drawn on the coordinating
//! thread from the main simulation stream; each subtree then runs on a
//! *counter-based* substream seeded `derive(key, subtree_index)`, where
//! `key` is one word drawn from the main stream per tally attempt. A
//! subtree's output is therefore a pure function of
//! `(key, subtree_index, configuration)` — it does not matter which
//! worker runs it, in what order, or how many workers exist — and the
//! merged tally is a pure function of the attempt's inputs. That is the
//! whole thread-count-invariance argument: 1, 2, or 64 threads claim the
//! same subtrees with the same substreams and sum the same integers.
//!
//! The accumulation helpers ([`accumulate`] and friends) are free
//! functions so the adversarial-scheduler path in
//! [`sim`](crate::batch::BatchSimulation), which stays serial (its
//! real-valued class weighting is inherently sequential), shares the
//! exact transition semantics.

use rand::SeedableRng;

use crate::batch::fenwick::StateSampler;
use crate::batch::multinomial::{binomial, binomial_batch, multinomial_into};
use crate::batch::TableProtocol;
use crate::fault::LieTarget;
use crate::protocol::SimRng;
use crate::rng;

/// The batch-invariant context a tally needs: protocol semantics plus the
/// adversary snapshot.
pub(crate) struct TallyCtx<'a, P: TableProtocol> {
    pub protocol: &'a P,
    pub deterministic: bool,
    /// `(lie probability, what liars report)` for the current batch.
    pub lie: Option<(f64, LieTarget)>,
    pub states: usize,
}

/// Everything a subtree kernel reads but never writes, bundled so the
/// serial loop and the pool workers call the same entry point.
pub(crate) struct TallySpec<'a, P: TableProtocol, T: StateSampler> {
    pub ctx: TallyCtx<'a, P>,
    /// Pre-batch configuration (frozen while the tally is sampled).
    pub counts: &'a [u64],
    pub n: u64,
    /// Weighted sampler over `counts` for the per-draw responder path.
    pub tree: &'a T,
    /// Multiplicities at or below this resolve responders one Fenwick
    /// draw at a time; above it, through a responder multinomial.
    pub split_threshold: u64,
    /// The attempt key: one main-stream word, combined with the subtree
    /// index to seed each subtree's substream.
    pub key: u64,
}

/// Worker-local scratch reused across subtrees and batches.
#[derive(Debug, Default)]
pub(crate) struct TallyScratch {
    responders: Vec<(usize, u64)>,
    /// Responder cells `(b, multiplicity)` of the current subtree.
    pairs: Vec<(usize, u64)>,
    // Lanes for the Byzantine array passes.
    ms: Vec<u64>,
    a_lies: Vec<u64>,
    both: Vec<u64>,
    rest: Vec<u64>,
    b_lies: Vec<u64>,
}

/// Run one initiator subtree: initiator state `a` with `multiplicity`
/// interactions, substream index `subtree`. Adds (never overwrites) into
/// `delta`/`usage`, so per-subtree outputs merge by plain summation.
pub(crate) fn run_subtree<P: TableProtocol, T: StateSampler>(
    spec: &TallySpec<'_, P, T>,
    subtree: usize,
    a: usize,
    multiplicity: u64,
    scratch: &mut TallyScratch,
    delta: &mut [i64],
    usage: &mut [u64],
) {
    let mut rng = SimRng::seed_from_u64(rng::derive(spec.key, subtree as u64));
    let TallyScratch {
        responders,
        pairs,
        ms,
        a_lies,
        both,
        rest,
        b_lies,
    } = scratch;

    // Resolve responders into `(b, m)` cells.
    pairs.clear();
    if multiplicity <= spec.split_threshold {
        for _ in 0..multiplicity {
            let b = spec.tree.draw(&mut rng);
            pairs.push((b, 1));
        }
    } else {
        responders.clear();
        multinomial_into(&mut rng, multiplicity, spec.counts, spec.n, responders);
        pairs.extend_from_slice(responders);
    }

    match spec.ctx.lie {
        None => {
            for &(b, m) in pairs.iter() {
                usage[a] += m;
                usage[b] += m;
                honest_delta(&spec.ctx, &mut rng, delta, a, b, m);
            }
        }
        Some((frac, forged)) => {
            // Byzantine split as array passes: every cell's liar shares
            // come from three batch binomials over the cell
            // multiplicities (each participant lies independently with
            // probability `frac`), then the per-cell transitions apply.
            ms.clear();
            ms.extend(pairs.iter().map(|&(_, m)| m));
            binomial_batch(&mut rng, ms, frac, a_lies);
            binomial_batch(&mut rng, a_lies, frac, both);
            rest.clear();
            rest.extend(ms.iter().zip(a_lies.iter()).map(|(&m, &l)| m - l));
            binomial_batch(&mut rng, rest, frac, b_lies);
            for (i, &(b, m)) in pairs.iter().enumerate() {
                usage[a] += m;
                usage[b] += m;
                let m_honest = m - a_lies[i] - b_lies[i];
                if m_honest > 0 {
                    honest_delta(&spec.ctx, &mut rng, delta, a, b, m_honest);
                }
                one_sided(
                    &spec.ctx,
                    &mut rng,
                    delta,
                    a,
                    b,
                    a_lies[i] - both[i],
                    forged,
                    true,
                );
                one_sided(&spec.ctx, &mut rng, delta, a, b, b_lies[i], forged, false);
            }
        }
    }
}

/// Fold one ordered pair `(a, b)` with multiplicity `m` into the
/// accumulators, resolving the Byzantine split per pair (interleaved
/// binomials) — the semantics the adversarial-scheduler path keeps.
pub(crate) fn accumulate<P: TableProtocol>(
    ctx: &TallyCtx<'_, P>,
    rng: &mut SimRng,
    delta: &mut [i64],
    usage: &mut [u64],
    a: usize,
    b: usize,
    m: u64,
) {
    usage[a] += m;
    usage[b] += m;
    match ctx.lie {
        None => honest_delta(ctx, rng, delta, a, b, m),
        Some((frac, forged)) => {
            let m_a_lies = binomial(rng, m, frac);
            let m_both = binomial(rng, m_a_lies, frac);
            let m_b_lies = binomial(rng, m - m_a_lies, frac);
            let m_honest = m - m_a_lies - m_b_lies;
            if m_honest > 0 {
                honest_delta(ctx, rng, delta, a, b, m_honest);
            }
            one_sided(ctx, rng, delta, a, b, m_a_lies - m_both, forged, true);
            one_sided(ctx, rng, delta, a, b, m_b_lies, forged, false);
        }
    }
}

/// The honest two-sided transition for `m` interactions of `(a, b)`:
/// one delta evaluation for deterministic protocols, one coin-consuming
/// evaluation per interaction otherwise. Usage is charged by the caller.
pub(crate) fn honest_delta<P: TableProtocol>(
    ctx: &TallyCtx<'_, P>,
    rng: &mut SimRng,
    delta: &mut [i64],
    a: usize,
    b: usize,
    m: u64,
) {
    if ctx.deterministic {
        let (a2, b2) = ctx.protocol.delta(a, b, rng);
        if (a2, b2) == (a, b) {
            return;
        }
        let m = m as i64;
        delta[a] -= m;
        delta[b] -= m;
        delta[a2] += m;
        delta[b2] += m;
    } else {
        for _ in 0..m {
            let (a2, b2) = ctx.protocol.delta(a, b, rng);
            if (a2, b2) == (a, b) {
                continue;
            }
            delta[a] -= 1;
            delta[b] -= 1;
            delta[a2] += 1;
            delta[b2] += 1;
        }
    }
}

/// `m` interactions where exactly one participant of the ordered pair
/// `(a, b)` lies: `a` when `a_lies`, else `b`. Random forgeries spread
/// the mass multinomially over the `S` uniform forged states; a
/// [`LieTarget::Pair`] (the polarizing split forgery) halves the mass
/// binomially between its two states.
#[allow(clippy::too_many_arguments)]
pub(crate) fn one_sided<P: TableProtocol>(
    ctx: &TallyCtx<'_, P>,
    rng: &mut SimRng,
    delta: &mut [i64],
    a: usize,
    b: usize,
    m: u64,
    forged: LieTarget,
    a_lies: bool,
) {
    if m == 0 {
        return;
    }
    match forged {
        LieTarget::Fixed(f) => one_sided_fixed(ctx, rng, delta, a, b, m, f, a_lies),
        LieTarget::Random => {
            let uniform = vec![1u64; ctx.states];
            let mut shares = Vec::new();
            multinomial_into(rng, m, &uniform, ctx.states as u64, &mut shares);
            for (f, mf) in shares {
                one_sided_fixed(ctx, rng, delta, a, b, mf, f, a_lies);
            }
        }
        LieTarget::Pair(x, y) => {
            let mx = binomial(rng, m, 0.5);
            if mx > 0 {
                one_sided_fixed(ctx, rng, delta, a, b, mx, x, a_lies);
            }
            if m - mx > 0 {
                one_sided_fixed(ctx, rng, delta, a, b, m - mx, y, a_lies);
            }
        }
    }
}

/// One-sided share with a fixed forged state `f`: only the honest
/// partner's half of the transition is applied.
#[allow(clippy::too_many_arguments)]
fn one_sided_fixed<P: TableProtocol>(
    ctx: &TallyCtx<'_, P>,
    rng: &mut SimRng,
    delta: &mut [i64],
    a: usize,
    b: usize,
    m: u64,
    f: usize,
    a_lies: bool,
) {
    if ctx.deterministic {
        if a_lies {
            let (_, b2) = ctx.protocol.delta(f, b, rng);
            if b2 != b {
                delta[b] -= m as i64;
                delta[b2] += m as i64;
            }
        } else {
            let (a2, _) = ctx.protocol.delta(a, f, rng);
            if a2 != a {
                delta[a] -= m as i64;
                delta[a2] += m as i64;
            }
        }
    } else {
        for _ in 0..m {
            if a_lies {
                let (_, b2) = ctx.protocol.delta(f, b, rng);
                if b2 != b {
                    delta[b] -= 1;
                    delta[b2] += 1;
                }
            } else {
                let (a2, _) = ctx.protocol.delta(a, f, rng);
                if a2 != a {
                    delta[a] -= 1;
                    delta[a2] += 1;
                }
            }
        }
    }
}
