//! The collision-free batch length: the birthday process.
//!
//! Participants of consecutive interactions are drawn one at a time; the
//! batch closes just before the first draw that repeats an agent already in
//! the batch (approximated with replacement: the `j`-th draw collides with
//! probability `(j − 1)/n`). The expected batch length is `Θ(√n)`
//! (`≈ √(π·n/8)` interactions), which is what makes batching pay: one
//! tally covers `Θ(√n)` interactions.
//!
//! The seed implementation clamped the result with `len.max(1)`, which
//! silently *promoted a colliding draw into an interaction*: when the very
//! first pair's responder collided with its initiator, the engine reported
//! a batch of one interaction without ever consuming a valid pair — a
//! self-interaction that the sequential model (distinct ordered pairs)
//! never performs. [`draw_batch_len`] instead consumes that first pair
//! (the sequential scheduler redraws the responder until distinct) and
//! only then reports length 1; all later collisions close the batch before
//! the colliding draw, exactly as before.

use rand::Rng;

use crate::protocol::SimRng;

/// Populations below this size draw the batch length by the literal
/// participant walk; above it, one uniform is inverted through the
/// birthday survival function. The walk is exact but costs two RNG words
/// per interaction — `Θ(1)` per interaction, precisely what the batched
/// engine must not pay.
const WALK_CUTOFF: u64 = 1024;

/// Draw the number of interactions in a collision-free batch for a
/// population of `n` agents.
///
/// Always returns at least 1 (the first interaction is consumed even when
/// its responder draw collides — the pair is redrawn distinct, not
/// discarded) and at most `⌊n/2⌋` (no agent participates twice).
///
/// For `n ≥ 1024` the length is sampled by inverting a single uniform
/// against the birthday survival function (`O(1)` work per batch, the key
/// to sub-constant per-interaction cost); smaller populations run the
/// exact participant walk. The inversion's series truncation error in the
/// log-survival is `O(d⁴/n³)` — orders of magnitude below the engine's
/// inherent `O(ℓ²/n)` with-replacement drift.
///
/// # Panics
///
/// Debug-panics if `n < 2`.
pub fn draw_batch_len(rng: &mut SimRng, n: u64) -> u64 {
    if n < WALK_CUTOFF {
        draw_batch_len_walk(rng, n)
    } else {
        draw_batch_len_inversion(rng, n)
    }
}

/// The literal draw-by-draw birthday process (the seed implementation,
/// minus its `len.max(1)` bias — see the module docs). Two RNG words per
/// interaction; used by [`PairwiseBatchSimulation`]
/// (`crate::batch::PairwiseBatchSimulation`) and as the small-`n` path of
/// [`draw_batch_len`].
pub fn draw_batch_len_walk(rng: &mut SimRng, n: u64) -> u64 {
    debug_assert!(n >= 2, "population must contain at least two agents");
    let mut used = 0u64;
    let mut len = 0u64;
    loop {
        // Two fresh participants are needed for the next interaction.
        for _ in 0..2 {
            if rng.gen_range(0..n) < used {
                if len == 0 {
                    // Collision on the responder draw of the very first
                    // interaction (`used == 1`). The interaction still
                    // happens — between two *distinct* agents, the
                    // scheduler redraws — so consume the pair and close
                    // the batch after it.
                    debug_assert_eq!(used, 1);
                    return 1;
                }
                return len;
            }
            used += 1;
        }
        len += 1;
        if used + 2 > n {
            return len;
        }
    }
}

/// Log-survival of the birthday walk: `ln P(first d draws all distinct)`,
/// by the truncated series `Σ_{i<d} ln(1 − i/n) ≈ −Σ (i/n + i²/2n² +
/// i³/3n³)` in closed form.
#[inline]
fn ln_survival(d: f64, n: f64) -> f64 {
    let t1 = d * (d - 1.0) / (2.0 * n);
    let t2 = (d - 1.0) * d * (2.0 * d - 1.0) / (12.0 * n * n);
    let t3 = d * d * (d - 1.0) * (d - 1.0) / (12.0 * n * n * n);
    -(t1 + t2 + t3)
}

/// Derivative of [`ln_survival`] in `d`.
#[inline]
fn ln_survival_deriv(d: f64, n: f64) -> f64 {
    let t1 = (2.0 * d - 1.0) / (2.0 * n);
    let t2 = (6.0 * d * d - 6.0 * d + 1.0) / (12.0 * n * n);
    let t3 = 2.0 * d * (d - 1.0) * (2.0 * d - 1.0) / (12.0 * n * n * n);
    -(t1 + t2 + t3)
}

/// Invert one uniform against the birthday survival function: the first
/// repeated participant occurs at draw `D = min{d : S(d) < u}`, and the
/// batch closes after `max(⌊(D−1)/2⌋, 1)` interactions (capped at the
/// `⌊n/2⌋` participant capacity).
fn draw_batch_len_inversion(rng: &mut SimRng, n: u64) -> u64 {
    let cap = n / 2;
    let u: f64 = rng.gen();
    if u <= f64::MIN_POSITIVE {
        return cap;
    }
    let ln_u = u.ln();
    let nf = n as f64;
    // Quadratic seed: x(x−1)/2n = −ln u, then two Newton steps on the full
    // series (cubic convergence: the root is correct to ~1e-9 draws).
    let mut x = 0.5 + (0.25 - 2.0 * nf * ln_u).sqrt();
    for _ in 0..2 {
        x -= (ln_survival(x, nf) - ln_u) / ln_survival_deriv(x, nf);
    }
    let d = x.ceil().max(2.0);
    if d >= 2.0 * cap as f64 + 2.0 {
        return cap;
    }
    (((d as u64) - 1) / 2).clamp(1, cap)
}

/// Exact expectation of [`draw_batch_len`] under its own model (`j`-th
/// draw collides with probability `(j − 1)/n`), by direct dynamic
/// programming over the draw sequence. Used by tests to pin the sampler
/// against the birthday law without Monte-Carlo-vs-Monte-Carlo slack.
pub fn expected_batch_len(n: u64) -> f64 {
    assert!(n >= 2);
    let nf = n as f64;
    let mut expect = 0.0f64;
    let mut survive = 1.0f64; // P(no collision among first `drawn` draws)
    let mut drawn = 0u64;
    loop {
        // Draw 2 participants for interaction number `len + 1`.
        for step in 0..2u64 {
            let collide = (drawn as f64) / nf;
            let len_now = drawn / 2; // completed interactions so far
                                     // A collision here ends the batch at max(len_now, 1) — the
                                     // first interaction is consumed even on a responder collision.
            let reported = if step == 1 && len_now == 0 {
                1
            } else {
                len_now.max(1)
            };
            expect += survive * collide * reported as f64;
            survive *= 1.0 - collide;
            drawn += 1;
        }
        let len = drawn / 2;
        if drawn + 2 > n {
            // Capacity exhausted: the batch closes at `len`.
            expect += survive * len as f64;
            return expect;
        }
        if survive < 1e-15 {
            // Remaining mass is negligible; close it at the current length
            // to terminate (adds < 1e-12 to the expectation).
            expect += survive * len as f64;
            return expect;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_are_positive_and_capacity_bounded() {
        let mut rng = SimRng::seed_from_u64(1);
        for n in [2u64, 3, 4, 10, 1000] {
            for _ in 0..200 {
                let len = draw_batch_len(&mut rng, n);
                assert!(len >= 1, "n={n}");
                assert!(len <= n / 2, "n={n}, len={len}");
            }
        }
    }

    #[test]
    fn tiny_population_always_yields_one() {
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(draw_batch_len(&mut rng, 2), 1);
            assert_eq!(draw_batch_len(&mut rng, 3), 1);
        }
    }

    #[test]
    fn mean_matches_the_birthday_model() {
        // The satellite test for the `len.max(1)` bias fix: the empirical
        // mean must match the *exact* expectation of the birthday draw
        // process, not just an order of magnitude.
        let n = 10_000u64;
        let model = expected_batch_len(n);
        // Sanity: the model itself sits at the birthday scale √(π·n/8)
        // (±15% covers the discretisation of pairs).
        let birthday = (std::f64::consts::PI * n as f64 / 8.0).sqrt();
        assert!(
            (model - birthday).abs() / birthday < 0.15,
            "DP model {model} vs birthday {birthday}"
        );

        let mut rng = SimRng::seed_from_u64(77);
        let batches = 40_000u64;
        let mut total = 0u64;
        let mut total_sq = 0f64;
        for _ in 0..batches {
            let len = draw_batch_len(&mut rng, n);
            total += len;
            total_sq += (len * len) as f64;
        }
        let mean = total as f64 / batches as f64;
        let var = total_sq / batches as f64 - mean * mean;
        let se = (var / batches as f64).sqrt();
        assert!(
            (mean - model).abs() < 4.0 * se,
            "empirical mean {mean} vs model {model} (se {se:.4})"
        );
    }

    #[test]
    fn inversion_and_walk_agree_in_distribution() {
        // Just above the cutoff the analytic inversion must reproduce the
        // walk's law; compare means against each other and the DP model.
        let n = 2048u64;
        let model = expected_batch_len(n);
        let batches = 30_000u64;
        let mut rng = SimRng::seed_from_u64(3);
        let walk_mean = (0..batches)
            .map(|_| draw_batch_len_walk(&mut rng, n))
            .sum::<u64>() as f64
            / batches as f64;
        let inv_mean = (0..batches)
            .map(|_| draw_batch_len_inversion(&mut rng, n))
            .sum::<u64>() as f64
            / batches as f64;
        // sd(len) ≈ 0.52·√n ⇒ se ≈ 0.14 at these sizes; 4σ gates.
        let se = 0.52 * (n as f64).sqrt() / (batches as f64).sqrt();
        assert!(
            (walk_mean - model).abs() < 4.0 * se,
            "walk {walk_mean} vs model {model}"
        );
        assert!(
            (inv_mean - model).abs() < 4.0 * se,
            "inversion {inv_mean} vs model {model}"
        );
    }

    #[test]
    fn expected_batch_len_is_monotone_in_n() {
        let mut prev = 0.0;
        for n in [4u64, 16, 64, 256, 1024, 4096] {
            let e = expected_batch_len(n);
            assert!(e > prev, "E[len] should grow with n: {e} after {prev}");
            prev = e;
        }
    }
}
