//! A Fenwick (binary indexed) tree over state weights, used as an
//! `O(log S)` weighted sampler with `O(log S)` incremental updates.
//!
//! The seed engine drew states by linearly scanning the count vector —
//! `O(S)` per draw, painful once state spaces reach hundreds of states
//! (USD at large `k`, future `Θ(k + log n)` tables). The tree stores
//! prefix-sum fragments in the classic 1-indexed layout; sampling descends
//! power-of-two strides, so a draw costs one bounded RNG word plus
//! `⌈log₂ S⌉` adds.
//!
//! [`ShardedFenwick`] layers a two-level variant on top for the parallel
//! engine: states are partitioned into fixed shards, each its own
//! [`Fenwick`], with a top-level tree over shard totals. Full rebuilds
//! (admit, churn, fault strikes) then parallelise over shards — each
//! worker rebuilds the shards it owns and the `O(S log S)` serial rebuild
//! leaves the hot path — while `add`/`index_of` keep the exact cumulative
//! semantics of a flat tree: **for any `target`, a sharded tree and a flat
//! tree over the same weights return the same index**, because both
//! resolve the cumulative interval containing `target` in index order.
//! That equivalence is what lets the chunked tally kernel use either view
//! interchangeably without perturbing sampled streams.

use rand::Rng;

use crate::protocol::SimRng;

/// States per shard in a [`ShardedFenwick`]. Small state spaces (the
/// 3–4-state majority protocols) collapse to a single shard and behave
/// exactly like a flat tree; only wide tables (USD at large `k`) fan out.
const SHARD_STATES: usize = 256;

/// Anything that maps a cumulative-weight target to a state index — the
/// read-only interface the batch tally kernel samples through, satisfied
/// by both [`Fenwick`] and [`ShardedFenwick`] with identical semantics.
pub trait StateSampler {
    /// Sum of all weights.
    fn total_weight(&self) -> u64;

    /// The index whose cumulative weight interval contains `target`
    /// (`0 ≤ target < total`).
    fn locate(&self, target: u64) -> usize;

    /// Draw an index with probability proportional to its weight,
    /// consuming exactly one bounded RNG word.
    #[inline]
    fn draw(&self, rng: &mut SimRng) -> usize {
        let total = self.total_weight();
        assert!(total > 0, "cannot sample from an empty distribution");
        self.locate(rng.gen_range(0..total))
    }
}

/// Fenwick tree over `u64` weights for weighted index sampling.
#[derive(Debug, Clone)]
pub struct Fenwick {
    /// 1-indexed partial sums: `tree[i]` covers `(i - lowbit(i), i]`.
    tree: Vec<u64>,
    /// Number of weights.
    len: usize,
    /// Largest power of two `≤ len`, the first descent stride.
    top: usize,
    /// Sum of all weights (cached).
    total: u64,
}

impl Fenwick {
    /// Build from per-index weights in `O(len)`.
    pub fn from_weights(weights: &[u64]) -> Self {
        let len = weights.len();
        assert!(len > 0, "Fenwick tree needs at least one weight");
        let mut tree = vec![0u64; len + 1];
        tree[1..].copy_from_slice(weights);
        for i in 1..=len {
            let parent = i + (i & i.wrapping_neg());
            if parent <= len {
                tree[parent] += tree[i];
            }
        }
        let total = weights.iter().sum();
        let top = if len.is_power_of_two() {
            len
        } else {
            len.next_power_of_two() >> 1
        };
        Self {
            tree,
            len,
            top,
            total,
        }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree covers no weights (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add `delta` to the weight at `index`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the weight would underflow.
    pub fn add(&mut self, index: usize, delta: i64) {
        debug_assert!(index < self.len);
        self.total = self
            .total
            .checked_add_signed(delta)
            .expect("total weight underflow");
        let mut i = index + 1;
        while i <= self.len {
            self.tree[i] = self.tree[i].wrapping_add_signed(delta);
            i += i & i.wrapping_neg();
        }
    }

    /// Weight currently stored at `index` (`O(log len)`).
    pub fn get(&self, index: usize) -> u64 {
        self.prefix(index + 1) - self.prefix(index)
    }

    /// Sum of weights at indices `< count`.
    pub fn prefix(&self, count: usize) -> u64 {
        debug_assert!(count <= self.len);
        let mut sum = 0;
        let mut i = count;
        while i > 0 {
            sum += self.tree[i];
            i &= i - 1;
        }
        sum
    }

    /// Draw an index with probability proportional to its weight.
    ///
    /// # Panics
    ///
    /// Panics if the total weight is zero.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        assert!(self.total > 0, "cannot sample from an empty distribution");
        self.index_of(rng.gen_range(0..self.total))
    }

    /// The index whose cumulative weight interval contains `target`
    /// (`0 ≤ target < total`): the smallest `i` with `prefix(i + 1) > target`.
    #[inline]
    pub fn index_of(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total);
        let mut pos = 0usize;
        let mut stride = self.top;
        while stride > 0 {
            let next = pos + stride;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            stride >>= 1;
        }
        // `pos` indices have cumulative weight ≤ original target, so the
        // target falls in index `pos` (0-based).
        pos
    }
}

impl StateSampler for Fenwick {
    #[inline]
    fn total_weight(&self) -> u64 {
        self.total
    }

    #[inline]
    fn locate(&self, target: u64) -> usize {
        self.index_of(target)
    }
}

/// Two-level Fenwick census: states partitioned into [`SHARD_STATES`]-wide
/// shards, each an independent [`Fenwick`], plus a top tree over shard
/// totals. Point updates touch one shard and the top (`O(log S)` as
/// before); full rebuilds fan shards out over scoped threads and merge the
/// shard totals serially at the end.
#[derive(Debug, Clone)]
pub struct ShardedFenwick {
    /// Per-shard trees; all but the last cover exactly `shard_len` states.
    shards: Vec<Fenwick>,
    /// States per shard.
    shard_len: usize,
    /// Tree over shard totals, merged after every rebuild.
    top: Fenwick,
    /// Number of states.
    len: usize,
}

impl ShardedFenwick {
    /// Build from per-index weights (serial; use [`Self::rebuild`] with a
    /// thread count to parallelise subsequent rebuilds).
    pub fn from_weights(weights: &[u64]) -> Self {
        let len = weights.len();
        assert!(len > 0, "Fenwick tree needs at least one weight");
        let shard_len = SHARD_STATES;
        let shards: Vec<Fenwick> = weights
            .chunks(shard_len)
            .map(Fenwick::from_weights)
            .collect();
        let totals: Vec<u64> = shards.iter().map(Fenwick::total).collect();
        let top = Fenwick::from_weights(&totals);
        Self {
            shards,
            shard_len,
            top,
            len,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree covers no weights (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.top.total()
    }

    /// Rebuild every shard from `weights`, fanning shards out over up to
    /// `threads` scoped workers; shard totals merge serially at the end.
    /// The result is a pure function of `weights` — identical at any
    /// thread count — because each shard is rebuilt from the same slice
    /// regardless of which worker owns it.
    pub fn rebuild(&mut self, weights: &[u64], threads: usize) {
        assert_eq!(weights.len(), self.len, "weight count changed");
        let shard_len = self.shard_len;
        let group = if threads > 1 && self.shards.len() > 1 {
            self.shards.len().div_ceil(threads.min(self.shards.len()))
        } else {
            self.shards.len()
        };
        if group < self.shards.len() {
            std::thread::scope(|scope| {
                for (shard_group, weight_group) in self
                    .shards
                    .chunks_mut(group)
                    .zip(weights.chunks(group * shard_len))
                {
                    scope.spawn(move || {
                        for (shard, w) in shard_group.iter_mut().zip(weight_group.chunks(shard_len))
                        {
                            *shard = Fenwick::from_weights(w);
                        }
                    });
                }
            });
        } else {
            for (shard, w) in self.shards.iter_mut().zip(weights.chunks(shard_len)) {
                *shard = Fenwick::from_weights(w);
            }
        }
        let totals: Vec<u64> = self.shards.iter().map(Fenwick::total).collect();
        self.top = Fenwick::from_weights(&totals);
    }

    /// Add `delta` to the weight at `index`: one shard update plus one
    /// top update.
    pub fn add(&mut self, index: usize, delta: i64) {
        debug_assert!(index < self.len);
        let shard = index / self.shard_len;
        self.shards[shard].add(index % self.shard_len, delta);
        self.top.add(shard, delta);
    }

    /// Weight currently stored at `index`.
    pub fn get(&self, index: usize) -> u64 {
        self.shards[index / self.shard_len].get(index % self.shard_len)
    }

    /// Sum of weights at indices `< count`.
    pub fn prefix(&self, count: usize) -> u64 {
        debug_assert!(count <= self.len);
        let shard = count / self.shard_len;
        if shard == self.shards.len() {
            return self.top.total();
        }
        self.top.prefix(shard) + self.shards[shard].prefix(count % self.shard_len)
    }

    /// Draw an index with probability proportional to its weight.
    ///
    /// # Panics
    ///
    /// Panics if the total weight is zero.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        assert!(self.total() > 0, "cannot sample from an empty distribution");
        self.index_of(rng.gen_range(0..self.total()))
    }

    /// The index whose cumulative weight interval contains `target` —
    /// descends the top tree to pick the shard, then the shard tree.
    /// Agrees with a flat [`Fenwick`] over the same weights for every
    /// target.
    #[inline]
    pub fn index_of(&self, target: u64) -> usize {
        debug_assert!(target < self.total());
        let shard = self.top.index_of(target);
        let rem = target - self.top.prefix(shard);
        shard * self.shard_len + self.shards[shard].index_of(rem)
    }
}

impl StateSampler for ShardedFenwick {
    #[inline]
    fn total_weight(&self) -> u64 {
        self.total()
    }

    #[inline]
    fn locate(&self, target: u64) -> usize {
        self.index_of(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn prefix_sums_match_naive() {
        let w = [3u64, 0, 7, 1, 0, 0, 5, 2, 9];
        let t = Fenwick::from_weights(&w);
        assert_eq!(t.total(), w.iter().sum::<u64>());
        let mut acc = 0;
        for (i, &wi) in w.iter().enumerate() {
            assert_eq!(t.prefix(i), acc, "prefix({i})");
            assert_eq!(t.get(i), wi, "get({i})");
            acc += wi;
        }
        assert_eq!(t.prefix(w.len()), acc);
    }

    #[test]
    fn index_of_maps_every_unit_of_weight() {
        let w = [2u64, 0, 3, 1];
        let t = Fenwick::from_weights(&w);
        let expect = [0, 0, 2, 2, 2, 3];
        for (target, &idx) in expect.iter().enumerate() {
            assert_eq!(t.index_of(target as u64), idx, "target {target}");
        }
    }

    #[test]
    fn add_updates_prefixes_and_total() {
        let mut t = Fenwick::from_weights(&[5, 5, 5, 5, 5]);
        t.add(2, -5);
        t.add(0, 3);
        t.add(4, 10);
        let want = [8u64, 5, 0, 5, 15];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(t.get(i), w, "get({i})");
        }
        assert_eq!(t.total(), want.iter().sum::<u64>());
        // Zero-weight index is never sampled.
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..2000 {
            assert_ne!(t.sample(&mut rng), 2);
        }
    }

    #[test]
    fn sampling_is_proportional_to_weight() {
        let w = [10u64, 0, 30, 60];
        let t = Fenwick::from_weights(&w);
        let mut rng = SimRng::seed_from_u64(7);
        let trials = 100_000;
        let mut hist = [0u64; 4];
        for _ in 0..trials {
            hist[t.sample(&mut rng)] += 1;
        }
        assert_eq!(hist[1], 0);
        for (i, &h) in hist.iter().enumerate() {
            let want = trials as f64 * w[i] as f64 / t.total() as f64;
            if want > 0.0 {
                let dev = (h as f64 - want).abs() / want;
                assert!(dev < 0.05, "index {i}: {h} vs {want} ({dev:.3})");
            }
        }
    }

    #[test]
    fn single_weight_always_sampled() {
        let t = Fenwick::from_weights(&[42]);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    /// Deterministic pseudo-random weights without an RNG dependency.
    fn mixed_weights(len: usize, salt: u64) -> Vec<u64> {
        (0..len as u64)
            .map(|i| {
                let h = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 57) * u64::from(!h.is_multiple_of(5))
            })
            .collect()
    }

    #[test]
    fn sharded_agrees_with_flat_for_every_target() {
        // Straddle shard boundaries: 1 shard, exactly 2, and a ragged tail.
        for len in [3usize, 255, 256, 257, 700] {
            let w = mixed_weights(len, 12);
            let flat = Fenwick::from_weights(&w);
            let sharded = ShardedFenwick::from_weights(&w);
            assert_eq!(sharded.total(), flat.total());
            assert_eq!(sharded.len(), flat.len());
            let total = flat.total();
            let step = (total / 4096).max(1);
            let mut target = 0;
            while target < total {
                assert_eq!(
                    sharded.index_of(target),
                    flat.index_of(target),
                    "len {len}, target {target}"
                );
                target += step;
            }
            for i in 0..len {
                assert_eq!(sharded.get(i), flat.get(i), "get({i})");
                assert_eq!(sharded.prefix(i), flat.prefix(i), "prefix({i})");
            }
            assert_eq!(sharded.prefix(len), flat.prefix(len));
        }
    }

    #[test]
    fn sharded_add_tracks_flat() {
        let w = mixed_weights(600, 5);
        let mut flat = Fenwick::from_weights(&w);
        let mut sharded = ShardedFenwick::from_weights(&w);
        // Deltas spread across shards, including one that zeroes a state.
        for (i, d) in [(0usize, 7i64), (255, -(w[255] as i64)), (256, 3), (599, 11)] {
            flat.add(i, d);
            sharded.add(i, d);
        }
        assert_eq!(sharded.total(), flat.total());
        for target in 0..flat.total() {
            assert_eq!(sharded.index_of(target), flat.index_of(target));
        }
    }

    #[test]
    fn sharded_rebuild_is_thread_count_invariant() {
        let w0 = mixed_weights(700, 1);
        let w1 = mixed_weights(700, 2);
        let mut serial = ShardedFenwick::from_weights(&w0);
        let mut threaded = ShardedFenwick::from_weights(&w0);
        serial.rebuild(&w1, 1);
        threaded.rebuild(&w1, 4);
        assert_eq!(serial.total(), threaded.total());
        for (i, &want) in w1.iter().enumerate() {
            assert_eq!(serial.get(i), want, "serial rebuild get({i})");
            assert_eq!(threaded.get(i), want, "threaded rebuild get({i})");
        }
        for target in (0..serial.total()).step_by(97) {
            assert_eq!(serial.index_of(target), threaded.index_of(target));
        }
    }

    #[test]
    fn sharded_sampling_consumes_the_same_stream_as_flat() {
        let w = mixed_weights(300, 9);
        let flat = Fenwick::from_weights(&w);
        let sharded = ShardedFenwick::from_weights(&w);
        let mut rng_a = SimRng::seed_from_u64(21);
        let mut rng_b = SimRng::seed_from_u64(21);
        for _ in 0..5000 {
            assert_eq!(flat.sample(&mut rng_a), sharded.sample(&mut rng_b));
        }
    }

    #[test]
    fn non_power_of_two_lengths_descend_correctly() {
        for len in 1..40usize {
            let w: Vec<u64> = (0..len as u64).map(|i| i % 3).collect();
            if w.iter().sum::<u64>() == 0 {
                continue;
            }
            let t = Fenwick::from_weights(&w);
            let mut acc = 0u64;
            for (i, &wi) in w.iter().enumerate() {
                for u in acc..acc + wi {
                    assert_eq!(t.index_of(u), i, "len {len}, target {u}");
                }
                acc += wi;
            }
        }
    }
}
