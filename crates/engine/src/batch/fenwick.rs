//! A Fenwick (binary indexed) tree over state weights, used as an
//! `O(log S)` weighted sampler with `O(log S)` incremental updates.
//!
//! The seed engine drew states by linearly scanning the count vector —
//! `O(S)` per draw, painful once state spaces reach hundreds of states
//! (USD at large `k`, future `Θ(k + log n)` tables). The tree stores
//! prefix-sum fragments in the classic 1-indexed layout; sampling descends
//! power-of-two strides, so a draw costs one bounded RNG word plus
//! `⌈log₂ S⌉` adds.

use rand::Rng;

use crate::protocol::SimRng;

/// Fenwick tree over `u64` weights for weighted index sampling.
#[derive(Debug, Clone)]
pub struct Fenwick {
    /// 1-indexed partial sums: `tree[i]` covers `(i - lowbit(i), i]`.
    tree: Vec<u64>,
    /// Number of weights.
    len: usize,
    /// Largest power of two `≤ len`, the first descent stride.
    top: usize,
    /// Sum of all weights (cached).
    total: u64,
}

impl Fenwick {
    /// Build from per-index weights in `O(len)`.
    pub fn from_weights(weights: &[u64]) -> Self {
        let len = weights.len();
        assert!(len > 0, "Fenwick tree needs at least one weight");
        let mut tree = vec![0u64; len + 1];
        tree[1..].copy_from_slice(weights);
        for i in 1..=len {
            let parent = i + (i & i.wrapping_neg());
            if parent <= len {
                tree[parent] += tree[i];
            }
        }
        let total = weights.iter().sum();
        let top = if len.is_power_of_two() {
            len
        } else {
            len.next_power_of_two() >> 1
        };
        Self {
            tree,
            len,
            top,
            total,
        }
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree covers no weights (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add `delta` to the weight at `index`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the weight would underflow.
    pub fn add(&mut self, index: usize, delta: i64) {
        debug_assert!(index < self.len);
        self.total = self
            .total
            .checked_add_signed(delta)
            .expect("total weight underflow");
        let mut i = index + 1;
        while i <= self.len {
            self.tree[i] = self.tree[i].wrapping_add_signed(delta);
            i += i & i.wrapping_neg();
        }
    }

    /// Weight currently stored at `index` (`O(log len)`).
    pub fn get(&self, index: usize) -> u64 {
        self.prefix(index + 1) - self.prefix(index)
    }

    /// Sum of weights at indices `< count`.
    pub fn prefix(&self, count: usize) -> u64 {
        debug_assert!(count <= self.len);
        let mut sum = 0;
        let mut i = count;
        while i > 0 {
            sum += self.tree[i];
            i &= i - 1;
        }
        sum
    }

    /// Draw an index with probability proportional to its weight.
    ///
    /// # Panics
    ///
    /// Panics if the total weight is zero.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        assert!(self.total > 0, "cannot sample from an empty distribution");
        self.index_of(rng.gen_range(0..self.total))
    }

    /// The index whose cumulative weight interval contains `target`
    /// (`0 ≤ target < total`): the smallest `i` with `prefix(i + 1) > target`.
    #[inline]
    pub fn index_of(&self, mut target: u64) -> usize {
        debug_assert!(target < self.total);
        let mut pos = 0usize;
        let mut stride = self.top;
        while stride > 0 {
            let next = pos + stride;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            stride >>= 1;
        }
        // `pos` indices have cumulative weight ≤ original target, so the
        // target falls in index `pos` (0-based).
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn prefix_sums_match_naive() {
        let w = [3u64, 0, 7, 1, 0, 0, 5, 2, 9];
        let t = Fenwick::from_weights(&w);
        assert_eq!(t.total(), w.iter().sum::<u64>());
        let mut acc = 0;
        for (i, &wi) in w.iter().enumerate() {
            assert_eq!(t.prefix(i), acc, "prefix({i})");
            assert_eq!(t.get(i), wi, "get({i})");
            acc += wi;
        }
        assert_eq!(t.prefix(w.len()), acc);
    }

    #[test]
    fn index_of_maps_every_unit_of_weight() {
        let w = [2u64, 0, 3, 1];
        let t = Fenwick::from_weights(&w);
        let expect = [0, 0, 2, 2, 2, 3];
        for (target, &idx) in expect.iter().enumerate() {
            assert_eq!(t.index_of(target as u64), idx, "target {target}");
        }
    }

    #[test]
    fn add_updates_prefixes_and_total() {
        let mut t = Fenwick::from_weights(&[5, 5, 5, 5, 5]);
        t.add(2, -5);
        t.add(0, 3);
        t.add(4, 10);
        let want = [8u64, 5, 0, 5, 15];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(t.get(i), w, "get({i})");
        }
        assert_eq!(t.total(), want.iter().sum::<u64>());
        // Zero-weight index is never sampled.
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..2000 {
            assert_ne!(t.sample(&mut rng), 2);
        }
    }

    #[test]
    fn sampling_is_proportional_to_weight() {
        let w = [10u64, 0, 30, 60];
        let t = Fenwick::from_weights(&w);
        let mut rng = SimRng::seed_from_u64(7);
        let trials = 100_000;
        let mut hist = [0u64; 4];
        for _ in 0..trials {
            hist[t.sample(&mut rng)] += 1;
        }
        assert_eq!(hist[1], 0);
        for (i, &h) in hist.iter().enumerate() {
            let want = trials as f64 * w[i] as f64 / t.total() as f64;
            if want > 0.0 {
                let dev = (h as f64 - want).abs() / want;
                assert!(dev < 0.05, "index {i}: {h} vs {want} ({dev:.3})");
            }
        }
    }

    #[test]
    fn single_weight_always_sampled() {
        let t = Fenwick::from_weights(&[42]);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn non_power_of_two_lengths_descend_correctly() {
        for len in 1..40usize {
            let w: Vec<u64> = (0..len as u64).map(|i| i % 3).collect();
            if w.iter().sum::<u64>() == 0 {
                continue;
            }
            let t = Fenwick::from_weights(&w);
            let mut acc = 0u64;
            for (i, &wi) in w.iter().enumerate() {
                for u in acc..acc + wi {
                    assert_eq!(t.index_of(u), i, "len {len}, target {u}");
                }
                acc += wi;
            }
        }
    }
}
