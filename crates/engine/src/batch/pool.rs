//! A persistent, `unsafe`-free worker pool for threaded batch tallies.
//!
//! Batches arrive every few microseconds on the hot path, so spawning
//! scoped threads per batch would cost more than the work itself. The
//! pool keeps `threads − 1` plain `std::thread` workers parked between
//! batches; the coordinating thread publishes one [`TallyJob`] per
//! threaded tally attempt, participates in claiming subtrees itself, and
//! waits for the last subtree before merging. Workers spin briefly on the
//! generation counter (covering back-to-back batches) and then park on a
//! condvar, so an idle or single-core host never busy-burns a core.
//!
//! Everything crossing the thread boundary is owned by an
//! `Arc<TallyJob>` — a snapshot of the pre-batch configuration, the
//! census tree, and the protocol — so no borrows escape and no `unsafe`
//! is needed. Because every subtree's substream is counter-based (see
//! [`tally`](crate::batch::tally)), *which* worker claims a subtree never
//! affects the result; the pool is pure scheduling.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::batch::fenwick::ShardedFenwick;
use crate::batch::tally::{run_subtree, TallyCtx, TallyScratch, TallySpec};
use crate::batch::TableProtocol;
use crate::fault::LieTarget;

/// Spins on the generation counter before a worker parks. Short: parked
/// workers cost nothing, and the publish path notifies them anyway.
const SPIN_ROUNDS: u32 = 128;

/// One threaded tally attempt: a frozen snapshot of everything the
/// subtree kernels read, plus the claim/completion counters.
pub(crate) struct TallyJob<P: TableProtocol> {
    pub protocol: Arc<P>,
    pub deterministic: bool,
    pub lie: Option<(f64, LieTarget)>,
    /// Pre-batch configuration snapshot.
    pub counts: Vec<u64>,
    pub n: u64,
    /// Census snapshot for the per-draw responder path.
    pub tree: ShardedFenwick,
    pub split_threshold: u64,
    /// The attempt key (one main-stream word).
    pub key: u64,
    /// Initiator cells `(state, multiplicity)` — one subtree each.
    pub subtrees: Vec<(usize, u64)>,
    /// Monotone publish counter (workers detect new jobs by it).
    generation: u64,
    /// Next unclaimed subtree.
    next: AtomicUsize,
    /// Completed subtrees.
    done: AtomicUsize,
    /// Per-subtree output slots, merged by the coordinator in index
    /// order once `done` reaches `subtrees.len()`.
    pub outs: Vec<Mutex<SubtreeOut>>,
}

/// A subtree's accumulator pair.
#[derive(Debug, Default)]
pub(crate) struct SubtreeOut {
    pub delta: Vec<i64>,
    pub usage: Vec<u64>,
}

impl<P: TableProtocol> TallyJob<P> {
    /// Package one tally attempt. Output slots start empty; claimants
    /// size and zero them before running their subtree.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        protocol: Arc<P>,
        deterministic: bool,
        lie: Option<(f64, LieTarget)>,
        counts: Vec<u64>,
        n: u64,
        tree: ShardedFenwick,
        split_threshold: u64,
        key: u64,
        subtrees: Vec<(usize, u64)>,
    ) -> Self {
        let outs = (0..subtrees.len())
            .map(|_| Mutex::new(SubtreeOut::default()))
            .collect();
        Self {
            protocol,
            deterministic,
            lie,
            counts,
            n,
            tree,
            split_threshold,
            key,
            subtrees,
            generation: 0,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            outs,
        }
    }
}

/// Claim and run subtrees until the job is drained. Shared verbatim by
/// workers and the coordinating thread.
fn run_claims<P: TableProtocol>(job: &TallyJob<P>, scratch: &mut TallyScratch) {
    let states = job.counts.len();
    loop {
        let j = job.next.fetch_add(1, Ordering::Relaxed);
        if j >= job.subtrees.len() {
            return;
        }
        let (a, multiplicity) = job.subtrees[j];
        let spec = TallySpec {
            ctx: TallyCtx {
                protocol: &*job.protocol,
                deterministic: job.deterministic,
                lie: job.lie,
                states,
            },
            counts: &job.counts,
            n: job.n,
            tree: &job.tree,
            split_threshold: job.split_threshold,
            key: job.key,
        };
        let mut guard = job.outs[j].lock().expect("subtree slot poisoned");
        let out = &mut *guard;
        out.delta.clear();
        out.delta.resize(states, 0);
        out.usage.clear();
        out.usage.resize(states, 0);
        run_subtree(
            &spec,
            j,
            a,
            multiplicity,
            scratch,
            &mut out.delta,
            &mut out.usage,
        );
        drop(guard);
        job.done.fetch_add(1, Ordering::Release);
    }
}

struct PoolShared<P: TableProtocol> {
    /// The published job slot, replaced wholesale each batch.
    slot: Mutex<Option<Arc<TallyJob<P>>>>,
    /// Bumped (under the slot lock) on every publish; workers spin on it.
    generation: AtomicU64,
    shutdown: AtomicBool,
    cv: Condvar,
}

/// The persistent pool. Owned by one `BatchSimulation`; dropped (workers
/// joined) when the thread count returns to 1 or the simulation goes
/// away. Deliberately *not* part of the simulation's cloned or
/// checkpointed state.
pub(crate) struct TallyPool<P: TableProtocol> {
    shared: Arc<PoolShared<P>>,
    workers: Vec<JoinHandle<()>>,
}

impl<P: TableProtocol> std::fmt::Debug for TallyPool<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TallyPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<P: TableProtocol> TallyPool<P> {
    /// Spawn `workers` parked worker threads (the coordinator makes it
    /// `workers + 1` claimants per job).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(None),
            generation: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cv: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of pool workers (excluding the coordinator).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Publish `job`, claim subtrees alongside the workers, and return
    /// once every subtree is complete. The caller merges `outs` in
    /// index order.
    pub fn run(&self, job: TallyJob<P>, scratch: &mut TallyScratch) -> Arc<TallyJob<P>> {
        let total = job.subtrees.len();
        let job = {
            let mut slot = self.shared.slot.lock().expect("pool slot poisoned");
            let generation = self.shared.generation.load(Ordering::Relaxed) + 1;
            let job = Arc::new(TallyJob { generation, ..job });
            *slot = Some(Arc::clone(&job));
            // Publish the generation under the lock so a worker that
            // checked it and went to wait cannot miss the notify.
            self.shared.generation.store(generation, Ordering::Release);
            self.shared.cv.notify_all();
            job
        };
        run_claims(&job, scratch);
        // All subtrees are claimed; wait for stragglers on other workers.
        let mut spins = 0u32;
        while job.done.load(Ordering::Acquire) < total {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        job
    }
}

impl<P: TableProtocol> Drop for TallyPool<P> {
    fn drop(&mut self) {
        {
            let _slot = self.shared.slot.lock().expect("pool slot poisoned");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<P: TableProtocol>(shared: Arc<PoolShared<P>>) {
    let mut scratch = TallyScratch::default();
    let mut seen = 0u64;
    loop {
        // Fast path: spin briefly on the generation counter so
        // back-to-back batches never pay a park/unpark round trip.
        let mut spins = 0u32;
        let job = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if shared.generation.load(Ordering::Acquire) != seen {
                let slot = shared.slot.lock().expect("pool slot poisoned");
                if let Some(job) = slot.as_ref() {
                    if job.generation != seen {
                        break Arc::clone(job);
                    }
                }
                drop(slot);
                continue;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
                continue;
            }
            // Park until the next publish (or shutdown).
            let mut slot = shared.slot.lock().expect("pool slot poisoned");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = slot.as_ref() {
                    if job.generation != seen {
                        break;
                    }
                }
                slot = shared.cv.wait(slot).expect("pool slot poisoned");
            }
            let job = slot.as_ref().expect("checked above");
            break Arc::clone(job);
        };
        seen = job.generation;
        run_claims(&job, &mut scratch);
        drop(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::sim::tests::Am3;

    fn job(key: u64, counts: Vec<u64>, subtrees: Vec<(usize, u64)>) -> TallyJob<Am3> {
        let n = counts.iter().sum();
        let tree = ShardedFenwick::from_weights(&counts);
        TallyJob::new(Arc::new(Am3), true, None, counts, n, tree, 8, key, subtrees)
    }

    /// Merge a completed job's outs.
    fn merged(job: &TallyJob<Am3>) -> (Vec<i64>, Vec<u64>) {
        let states = job.counts.len();
        let mut delta = vec![0i64; states];
        let mut usage = vec![0u64; states];
        for out in job.outs.iter().take(job.subtrees.len()) {
            let out = out.lock().unwrap();
            for s in 0..states {
                delta[s] += out.delta[s];
                usage[s] += out.usage[s];
            }
        }
        (delta, usage)
    }

    #[test]
    fn pool_matches_inline_claims_for_any_worker_count() {
        let counts = vec![700u64, 250, 50];
        let subtrees = vec![(0usize, 70u64), (1, 25), (2, 5)];

        // Reference: run the claims inline on this thread.
        let reference = job(99, counts.clone(), subtrees.clone());
        let mut scratch = TallyScratch::default();
        run_claims(&reference, &mut scratch);
        let want = merged(&reference);

        for workers in [0usize, 1, 3] {
            let pool: TallyPool<Am3> = TallyPool::new(workers);
            let mut scratch = TallyScratch::default();
            let done = pool.run(job(99, counts.clone(), subtrees.clone()), &mut scratch);
            assert_eq!(merged(&done), want, "workers = {workers}");
            // Reuse the same pool for a second generation.
            let done = pool.run(job(7, counts.clone(), subtrees.clone()), &mut scratch);
            let reference = job(7, counts.clone(), subtrees.clone());
            let mut scratch2 = TallyScratch::default();
            run_claims(&reference, &mut scratch2);
            assert_eq!(merged(&done), merged(&reference), "workers = {workers}");
        }
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool: TallyPool<Am3> = TallyPool::new(2);
        drop(pool); // must not hang
    }
}
