//! Resumable segment-stepping over a churned batch run.
//!
//! The checkpointable soak loop (scenario x22, the `ppd` service) always
//! has the same shape: advance a [`BatchSimulation`] under a
//! [`ChurnProcess`] in parallel-time segments, accumulate the
//! [`ChurnSample`] series across segments, snapshot at absolute
//! checkpoint boundaries, and — on resume — restore the engine *and* the
//! series prefix so the stitched run is byte-identical to an
//! uninterrupted one. [`SegmentRunner`] owns exactly that state, so
//! callers only decide *when* to cut a segment and what to do between
//! segments (write a checkpoint file, drain an ingest queue, answer
//! queries).
//!
//! Two entry points cover the two callers:
//!
//! * [`SegmentRunner::drive`] is the x22 soak loop verbatim — run to a
//!   horizon, cutting at absolute multiples of the checkpoint interval
//!   and invoking a boundary callback at each interior cut.
//! * [`SegmentRunner::advance_to`] is one segment — the `ppd` simulation
//!   thread calls it in small slices, interleaving ingest admissions and
//!   query snapshots between slices.
//!
//! Segment boundaries are derived from the live clock alone (absolute
//! multiples of the interval, never "current time + interval"), so a
//! resumed run recomputes exactly the boundaries the uninterrupted run
//! used — the invariant behind the byte-identical kill–resume contract.

use std::io;
use std::path::Path;

use crate::batch::{BatchSimulation, TableProtocol};
use crate::checkpoint::Checkpoint;
use crate::churn::ChurnProcess;
use crate::result::{ChurnSample, RunOptions, RunStatus};

/// A churned batch run advancing in resumable parallel-time segments.
#[derive(Debug, Clone)]
pub struct SegmentRunner<P: TableProtocol> {
    sim: BatchSimulation<P>,
    churn: ChurnProcess,
    initial: Vec<u64>,
    series: Vec<ChurnSample>,
    opts: RunOptions,
}

impl<P: TableProtocol> SegmentRunner<P> {
    /// A runner over a fresh simulation. `initial` is the distribution
    /// churn joins draw from (usually the starting configuration).
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not cover the protocol's state space or is
    /// all zero (`run_churned` needs a join distribution).
    pub fn new(sim: BatchSimulation<P>, churn: ChurnProcess, initial: Vec<u64>) -> Self {
        assert_eq!(
            initial.len(),
            sim.counts().len(),
            "join distribution must cover the state space"
        );
        assert!(
            initial.iter().sum::<u64>() > 0,
            "join distribution must be non-empty"
        );
        Self {
            sim,
            churn,
            initial,
            series: Vec::new(),
            opts: RunOptions {
                max_interactions: u64::MAX,
                check_every: 0,
            },
        }
    }

    /// Rebuild a runner at a snapshot: the engine restores byte-identically
    /// and the series prefix carries over, so subsequent segments stitch
    /// onto exactly the trajectory the checkpointed run would have taken.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the snapshot is not a `batch` one or disagrees with
    /// the protocol's state space (see [`Checkpoint::restore_batch`]).
    pub fn from_checkpoint(ck: &Checkpoint, protocol: P, churn: ChurnProcess) -> io::Result<Self> {
        let sim = ck.restore_batch(protocol)?;
        Ok(Self {
            sim,
            churn,
            initial: ck.initial.clone(),
            series: ck.series.clone(),
            opts: RunOptions {
                max_interactions: u64::MAX,
                check_every: 0,
            },
        })
    }

    /// Read a checkpoint file and rebuild a runner at it.
    ///
    /// # Errors
    ///
    /// I/O errors from the read, `InvalidData` for a malformed or
    /// mismatched snapshot.
    pub fn resume(path: &Path, protocol: P, churn: ChurnProcess) -> io::Result<Self> {
        Self::from_checkpoint(&Checkpoint::read(path)?, protocol, churn)
    }

    /// Advance one segment: run churned until the parallel clock passes
    /// `stop`, folding the segment's samples into the accumulated series.
    /// Returns whether the output predicate fired at the segment's end.
    ///
    /// A `stop` at or before the current clock is a no-op (batches are
    /// never truncated mid-segment; see
    /// [`BatchSimulation::run_churned`]).
    pub fn advance_to(&mut self, stop: f64) -> RunStatus {
        let r = self
            .sim
            .run_churned(&self.opts, &self.churn, &self.initial, stop);
        self.series.extend(r.series);
        r.status
    }

    /// The soak loop: run to `horizon`, cutting segments at absolute
    /// multiples of `every` and calling `on_boundary(self, boundary)` at
    /// each interior cut — the hook writes `self.checkpoint()` wherever it
    /// wants it. An infinite `every` runs a single segment with no cuts;
    /// boundaries at or past the horizon get no callback.
    ///
    /// # Errors
    ///
    /// Propagates the callback's error, aborting the loop.
    pub fn drive(
        &mut self,
        horizon: f64,
        every: f64,
        mut on_boundary: impl FnMut(&Self, f64) -> io::Result<()>,
    ) -> io::Result<()> {
        while self.sim.parallel_time() < horizon {
            let clock = self.sim.parallel_time();
            let stop = if every.is_finite() {
                (((clock / every).floor() + 1.0) * every).min(horizon)
            } else {
                horizon
            };
            self.advance_to(stop);
            if every.is_finite() && stop < horizon {
                on_boundary(self, stop)?;
            }
        }
        Ok(())
    }

    /// Snapshot the run — engine state plus the accumulated series.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::of_batch(&self.sim, &self.initial, &self.series)
    }

    /// The underlying engine.
    pub fn sim(&self) -> &BatchSimulation<P> {
        &self.sim
    }

    /// Mutable access to the engine — the ingest path (`admit`) between
    /// segments.
    pub fn sim_mut(&mut self) -> &mut BatchSimulation<P> {
        &mut self.sim
    }

    /// Set the engine's worker budget (see
    /// [`BatchSimulation::set_threads`]). Purely a throughput knob: the
    /// driven run, its series, and its checkpoints are byte-identical at
    /// every value, so a service may resume a checkpoint with a different
    /// thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.sim.set_threads(threads);
    }

    /// The churn process driving the segments.
    pub fn churn(&self) -> &ChurnProcess {
        &self.churn
    }

    /// The join distribution.
    pub fn initial(&self) -> &[u64] {
        &self.initial
    }

    /// The accumulated sample series.
    pub fn series(&self) -> &[ChurnSample] {
        &self.series
    }

    /// The engine's parallel clock.
    pub fn parallel_time(&self) -> f64 {
        self.sim.parallel_time()
    }

    /// Drop the oldest samples so at most `cap` remain, returning how many
    /// were dropped. Long-running services call this to bound memory; note
    /// that checkpoints written afterwards carry only the retained tail.
    pub fn trim_series(&mut self, cap: usize) -> usize {
        if self.series.len() <= cap {
            return 0;
        }
        let drop = self.series.len() - cap;
        self.series.drain(..drop);
        drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChurnSpec, ChurnTarget};
    use crate::result::RunOptions;

    /// 3-state approximate majority (blank 0, A 1, B 2).
    struct Am3;
    impl TableProtocol for Am3 {
        fn states(&self) -> usize {
            3
        }
        fn is_deterministic(&self) -> bool {
            true
        }
        fn delta(&self, a: usize, b: usize, _rng: &mut crate::SimRng) -> (usize, usize) {
            match (a, b) {
                (1, 2) | (2, 1) => (a, 0),
                (1, 0) => (1, 1),
                (2, 0) => (2, 2),
                _ => (a, b),
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            if counts[0] == 0 && counts[2] == 0 {
                Some(1)
            } else if counts[0] == 0 && counts[1] == 0 {
                Some(2)
            } else {
                None
            }
        }
        fn opinion(&self, s: usize) -> Option<u32> {
            (s > 0).then_some(s as u32)
        }
        fn opinion_state(&self, opinion: u32) -> Option<usize> {
            matches!(opinion, 1 | 2).then_some(opinion as usize)
        }
    }

    fn churn() -> ChurnProcess {
        ChurnProcess::new(ChurnSpec {
            join: 0.005,
            leave: 0.005,
            target: ChurnTarget::Uniform,
        })
    }

    /// The runner's drive loop must replay the bespoke x22 loop exactly:
    /// same RNG trajectory, same series, same final configuration.
    #[test]
    fn drive_matches_the_bespoke_soak_loop() {
        let init = vec![0u64, 2_000, 1_000];
        let horizon = 60.0;
        let every = 25.0;
        let opts = RunOptions {
            max_interactions: u64::MAX,
            check_every: 0,
        };

        // Bespoke loop, as x22 wrote it before the extraction.
        let mut sim = BatchSimulation::new(Am3, init.clone(), 99);
        let p = churn();
        let mut series = Vec::new();
        while sim.parallel_time() < horizon {
            let clock = sim.parallel_time();
            let stop = (((clock / every).floor() + 1.0) * every).min(horizon);
            let r = sim.run_churned(&opts, &p, &init, stop);
            series.extend(r.series);
        }

        let mut runner =
            SegmentRunner::new(BatchSimulation::new(Am3, init.clone(), 99), churn(), init);
        let mut boundaries = Vec::new();
        runner
            .drive(horizon, every, |_, b| {
                boundaries.push(b);
                Ok(())
            })
            .expect("drive");
        assert_eq!(boundaries, vec![25.0, 50.0]);
        assert_eq!(runner.series(), &series[..]);
        assert_eq!(runner.sim().counts(), sim.counts());
        assert_eq!(runner.sim().rng_state(), sim.rng_state());
    }

    /// Resuming from a mid-drive checkpoint stitches onto the identical
    /// trajectory — the engine-level form of the CI kill–resume diff.
    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let init = vec![0u64, 2_000, 1_000];
        let horizon = 80.0;
        let every = 30.0;

        let mut full = SegmentRunner::new(
            BatchSimulation::new(Am3, init.clone(), 7),
            churn(),
            init.clone(),
        );
        let mut first_ck: Option<Checkpoint> = None;
        full.drive(horizon, every, |r, _| {
            if first_ck.is_none() {
                first_ck = Some(r.checkpoint());
            }
            Ok(())
        })
        .expect("drive");
        let ck = first_ck.expect("at least one boundary");

        // Round-trip the snapshot through its text form, like a file would.
        let ck = Checkpoint::from_text(&ck.to_text()).expect("parse");
        let mut resumed = SegmentRunner::from_checkpoint(&ck, Am3, churn()).expect("restore");
        resumed
            .drive(horizon, every, |_, _| Ok(()))
            .expect("drive resumed");

        assert_eq!(resumed.series(), full.series());
        assert_eq!(resumed.sim().counts(), full.sim().counts());
        assert_eq!(resumed.sim().rng_state(), full.sim().rng_state());
    }

    #[test]
    fn infinite_interval_runs_one_uncut_segment() {
        let init = vec![0u64, 700, 300];
        let mut runner =
            SegmentRunner::new(BatchSimulation::new(Am3, init.clone(), 3), churn(), init);
        let mut cuts = 0;
        runner
            .drive(40.0, f64::INFINITY, |_, _| {
                cuts += 1;
                Ok(())
            })
            .expect("drive");
        assert_eq!(cuts, 0);
        assert!(runner.parallel_time() >= 40.0);
    }

    #[test]
    fn trim_series_drops_the_oldest_samples() {
        let init = vec![0u64, 700, 300];
        let mut runner =
            SegmentRunner::new(BatchSimulation::new(Am3, init.clone(), 3), churn(), init);
        runner.advance_to(30.0);
        let full = runner.series().to_vec();
        assert!(full.len() >= 10, "soak should sample ≥ 10 marks");
        let dropped = runner.trim_series(5);
        assert_eq!(dropped, full.len() - 5);
        assert_eq!(runner.series(), &full[full.len() - 5..]);
        assert_eq!(runner.trim_series(5), 0);
    }

    #[test]
    fn ingest_between_segments_keeps_the_soak_consistent() {
        let init = vec![0u64, 700, 300];
        let mut runner =
            SegmentRunner::new(BatchSimulation::new(Am3, init.clone(), 11), churn(), init);
        runner.advance_to(10.0);
        let before = runner.sim().counts().iter().sum::<u64>();
        runner.sim_mut().admit(2, 400);
        assert_eq!(runner.sim().counts().iter().sum::<u64>(), before + 400);
        let t = runner.parallel_time();
        runner.advance_to(t + 10.0);
        assert!(runner.parallel_time() >= t + 10.0);
        // Samples keep arriving after the admit, with the grown population.
        assert!(runner.series().iter().any(|s| s.population >= before + 300));
    }
}
