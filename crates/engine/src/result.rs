//! Run outcomes and options.

use crate::fault::FaultRecord;

/// How a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunStatus {
    /// The convergence predicate fired.
    Converged,
    /// The interaction budget was exhausted first.
    Exhausted,
}

/// The outcome of a [`crate::Simulation::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Whether the run converged or ran out of budget.
    pub status: RunStatus,
    /// Output reported by the convergence predicate, if any.
    pub output: Option<u32>,
    /// Total interactions executed.
    pub interactions: u64,
    /// Interactions divided by the population size.
    pub parallel_time: f64,
    /// Recovery bookkeeping for every fault hook that fired, in firing
    /// order. Empty for clean (`run`) and empty-plan `run_faulted` runs.
    pub faults: Vec<FaultRecord>,
}

impl RunResult {
    /// `true` iff the run converged to `expected`.
    pub fn is_correct(&self, expected: u32) -> bool {
        self.status == RunStatus::Converged && self.output == Some(expected)
    }
}

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Hard cap on interactions. Defaults to `u64::MAX` scaled down by the
    /// caller; experiments always set an explicit budget.
    pub max_interactions: u64,
    /// How often (in interactions) the convergence predicate is evaluated.
    /// `0` means "every n interactions" (one parallel time unit).
    pub check_every: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_interactions: u64::MAX,
            check_every: 0,
        }
    }
}

impl RunOptions {
    /// Budget expressed in parallel time for a population of `n` agents.
    pub fn with_parallel_time_budget(n: usize, parallel_time: f64) -> Self {
        Self {
            max_interactions: (n as f64 * parallel_time).ceil() as u64,
            check_every: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_in_parallel_time() {
        let opts = RunOptions::with_parallel_time_budget(100, 2.5);
        assert_eq!(opts.max_interactions, 250);
    }

    #[test]
    fn correctness_requires_convergence() {
        let r = RunResult {
            status: RunStatus::Exhausted,
            output: Some(1),
            interactions: 10,
            parallel_time: 1.0,
            faults: Vec::new(),
        };
        assert!(!r.is_correct(1));
        let r = RunResult {
            status: RunStatus::Converged,
            ..r
        };
        assert!(r.is_correct(1));
        assert!(!r.is_correct(2));
    }
}
