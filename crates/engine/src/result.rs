//! Run outcomes and options.

use crate::fault::FaultRecord;

/// How a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunStatus {
    /// The convergence predicate fired.
    Converged,
    /// The interaction budget was exhausted first.
    Exhausted,
}

/// One sample of a run's health under steady-state churn, taken every
/// [`ChurnProcess::sample_every`](crate::ChurnProcess) units of parallel
/// time by the engines' `run_churned` methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSample {
    /// Parallel time of the sample.
    pub t: f64,
    /// Population size at the sample (churn makes it drift).
    pub population: u64,
    /// Fraction of agents currently advocating the true plurality opinion.
    pub plurality_frac: f64,
    /// Converged output at the sample, if the predicate currently fires.
    pub output: Option<u32>,
}

/// An out-of-band observation attached to a run — conditions worth
/// surfacing that are neither a status nor a fault record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunNote {
    /// A biased scheduler saturated: every candidate was vetoed (e.g. the
    /// starved opinion was the only one left at weight 0), so pair
    /// selection degraded to uniform instead of spinning the retry bound.
    SchedulerSaturated,
}

/// The outcome of a [`crate::Simulation::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Whether the run converged or ran out of budget.
    pub status: RunStatus,
    /// Output reported by the convergence predicate, if any.
    pub output: Option<u32>,
    /// Total interactions executed.
    pub interactions: u64,
    /// Interactions divided by the population size.
    pub parallel_time: f64,
    /// Recovery bookkeeping for every fault hook that fired, in firing
    /// order. Empty for clean (`run`) and empty-plan `run_faulted` runs.
    pub faults: Vec<FaultRecord>,
    /// Time series sampled by `run_churned`, in time order. Empty for
    /// non-churned runs.
    pub series: Vec<ChurnSample>,
    /// Out-of-band observations (e.g. scheduler saturation). Empty for
    /// clean runs.
    pub notes: Vec<RunNote>,
}

impl RunResult {
    /// `true` iff the run converged to `expected`.
    pub fn is_correct(&self, expected: u32) -> bool {
        self.status == RunStatus::Converged && self.output == Some(expected)
    }

    /// Fraction of churn samples at which the convergence predicate fired
    /// — the "time in consensus" a soak run reports. `NaN` when the run
    /// has no series.
    pub fn time_in_consensus(&self) -> f64 {
        time_in_consensus(&self.series)
    }
}

/// Fraction of churn samples at which the convergence predicate fired —
/// the series-level form of [`RunResult::time_in_consensus`], for soaks
/// that stitch series across checkpoint segments. `NaN` on an empty
/// series.
pub fn time_in_consensus(series: &[ChurnSample]) -> f64 {
    let hits = series.iter().filter(|s| s.output.is_some()).count();
    hits as f64 / series.len() as f64
}

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Hard cap on interactions. Defaults to `u64::MAX` scaled down by the
    /// caller; experiments always set an explicit budget.
    pub max_interactions: u64,
    /// How often (in interactions) the convergence predicate is evaluated.
    /// `0` means "every n interactions" (one parallel time unit).
    pub check_every: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_interactions: u64::MAX,
            check_every: 0,
        }
    }
}

impl RunOptions {
    /// Budget expressed in parallel time for a population of `n` agents.
    pub fn with_parallel_time_budget(n: usize, parallel_time: f64) -> Self {
        Self {
            max_interactions: (n as f64 * parallel_time).ceil() as u64,
            check_every: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_in_parallel_time() {
        let opts = RunOptions::with_parallel_time_budget(100, 2.5);
        assert_eq!(opts.max_interactions, 250);
    }

    #[test]
    fn correctness_requires_convergence() {
        let r = RunResult {
            status: RunStatus::Exhausted,
            output: Some(1),
            interactions: 10,
            parallel_time: 1.0,
            faults: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        };
        assert!(!r.is_correct(1));
        let r = RunResult {
            status: RunStatus::Converged,
            ..r
        };
        assert!(r.is_correct(1));
        assert!(!r.is_correct(2));
    }

    #[test]
    fn time_in_consensus_counts_converged_samples() {
        let sample = |t: f64, output: Option<u32>| ChurnSample {
            t,
            population: 100,
            plurality_frac: 0.5,
            output,
        };
        let r = RunResult {
            status: RunStatus::Exhausted,
            output: None,
            interactions: 400,
            parallel_time: 4.0,
            faults: Vec::new(),
            series: vec![
                sample(1.0, None),
                sample(2.0, Some(1)),
                sample(3.0, Some(1)),
                sample(4.0, None),
            ],
            notes: Vec::new(),
        };
        assert_eq!(r.time_in_consensus(), 0.5);
        let empty = RunResult {
            series: Vec::new(),
            ..r
        };
        assert!(empty.time_in_consensus().is_nan());
    }
}
