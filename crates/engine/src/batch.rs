//! Batched configuration-space simulation for small-state protocols.
//!
//! For protocols whose state space is a small finite set and whose
//! transition function is deterministic, the configuration (one counter per
//! state) is a sufficient statistic. Instead of touching two agents per
//! step, a [`BatchSimulation`] advances in *collision-free batches*: it
//! draws the number of consecutive interactions in which no agent
//! participates twice (the birthday process, expected length `Θ(√n)`), and
//! within such a batch all interactions commute, so they can be applied as
//! a tally of ordered state pairs.
//!
//! The pair tally is sampled with replacement from the current
//! configuration, which deviates from the exact (without-replacement)
//! hypergeometric law by `O(ℓ²/n)` per batch — the standard trade-off in
//! batched population-protocol simulation. The consistency tests below
//! bound the observable drift against the sequential engine.
//!
//! This simulator covers the baselines with constant state spaces (USD,
//! 3-state and 4-state majority, epidemics); the paper's own protocols have
//! `Θ(k + log n)`-sized state spaces and richer transitions and stay on the
//! sequential engine.

use rand::Rng;
use rand::SeedableRng;

use crate::protocol::SimRng;
use crate::result::{RunOptions, RunResult, RunStatus};

/// A population protocol presented as a deterministic transition table over
/// a small state space `0..states()`.
pub trait TableProtocol {
    /// Size of the state space.
    fn states(&self) -> usize;

    /// Deterministic transition `(initiator, responder) → (initiator',
    /// responder')`.
    fn delta(&self, a: usize, b: usize) -> (usize, usize);

    /// Convergence check on the configuration (`counts[s]` = agents in
    /// state `s`).
    fn output(&self, counts: &[u64]) -> Option<u32>;
}

/// A configuration-space simulation advancing in collision-free batches.
#[derive(Debug, Clone)]
pub struct BatchSimulation<P: TableProtocol> {
    protocol: P,
    counts: Vec<u64>,
    n: u64,
    rng: SimRng,
    interactions: u64,
}

impl<P: TableProtocol> BatchSimulation<P> {
    /// Create a simulation from per-state counts.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than two agents or `counts` does
    /// not match the protocol's state space.
    pub fn new(protocol: P, counts: Vec<u64>, seed: u64) -> Self {
        assert_eq!(counts.len(), protocol.states(), "counts must cover the state space");
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must contain at least two agents");
        Self { protocol, counts, n, rng: SimRng::seed_from_u64(seed), interactions: 0 }
    }

    /// Build the configuration from per-agent states.
    pub fn from_agents(protocol: P, agents: &[usize], seed: u64) -> Self {
        let mut counts = vec![0u64; protocol.states()];
        for &s in agents {
            counts[s] += 1;
        }
        Self::new(protocol, counts, seed)
    }

    /// Current configuration.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Interactions simulated so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Parallel time elapsed.
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.n as f64
    }

    /// Draw the collision-free batch length: interactions are added while
    /// every participant is fresh; the batch closes just before the first
    /// repeat (birthday process).
    fn draw_batch_len(&mut self) -> u64 {
        let mut used = 0u64;
        let mut len = 0u64;
        loop {
            // Two fresh participants are needed for the next interaction.
            for _ in 0..2 {
                if self.rng.gen_range(0..self.n) < used {
                    return len.max(1);
                }
                used += 1;
            }
            len += 1;
            if used + 2 > self.n {
                return len.max(1);
            }
        }
    }

    /// Sample one state weighted by the current counts.
    fn sample_state(&mut self) -> usize {
        let mut target = self.rng.gen_range(0..self.n);
        for (s, &c) in self.counts.iter().enumerate() {
            if target < c {
                return s;
            }
            target -= c;
        }
        unreachable!("counts sum to n")
    }

    /// Advance one collision-free batch; returns the number of interactions
    /// applied.
    pub fn step_batch(&mut self) -> u64 {
        let len = self.draw_batch_len();
        // Tally ordered state pairs for the batch (with replacement).
        for _ in 0..len {
            let a = self.sample_state();
            let b = self.sample_state();
            let (a2, b2) = self.protocol.delta(a, b);
            // Within a collision-free batch each interaction reads the
            // *pre-batch* configuration; applying transitions immediately
            // is equivalent because the tally was drawn up front per pair.
            self.counts[a] -= 1;
            self.counts[b] -= 1;
            self.counts[a2] += 1;
            self.counts[b2] += 1;
        }
        self.interactions += len;
        len
    }

    /// Run until convergence or budget exhaustion.
    pub fn run(&mut self, opts: &RunOptions) -> RunResult {
        loop {
            if let Some(output) = self.protocol.output(&self.counts) {
                return self.finish(RunStatus::Converged, Some(output));
            }
            if self.interactions >= opts.max_interactions {
                return self.finish(RunStatus::Exhausted, None);
            }
            self.step_batch();
        }
    }

    fn finish(&self, status: RunStatus, output: Option<u32>) -> RunResult {
        RunResult {
            status,
            output,
            interactions: self.interactions,
            parallel_time: self.parallel_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-way epidemic as a table protocol: state 1 infects state 0.
    struct Epi;
    impl TableProtocol for Epi {
        fn states(&self) -> usize {
            2
        }
        fn delta(&self, a: usize, b: usize) -> (usize, usize) {
            if a == 1 || b == 1 {
                (1, 1)
            } else {
                (0, 0)
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            (counts[0] == 0).then_some(1)
        }
    }

    /// 3-state approximate majority (blank 0, A 1, B 2).
    struct Am3;
    impl TableProtocol for Am3 {
        fn states(&self) -> usize {
            3
        }
        fn delta(&self, a: usize, b: usize) -> (usize, usize) {
            match (a, b) {
                (1, 2) | (2, 1) => (a, 0),
                (1, 0) => (1, 1),
                (2, 0) => (2, 2),
                _ => (a, b),
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            if counts[0] == 0 && counts[2] == 0 {
                Some(1)
            } else if counts[0] == 0 && counts[1] == 0 {
                Some(2)
            } else {
                None
            }
        }
    }

    #[test]
    fn population_is_conserved() {
        let mut sim = BatchSimulation::new(Am3, vec![0, 600, 400], 3);
        for _ in 0..100 {
            sim.step_batch();
            assert_eq!(sim.counts().iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn epidemic_completes_in_logarithmic_time() {
        let n = 1 << 16;
        let mut sim = BatchSimulation::new(Epi, vec![n - 1, 1], 9);
        let r = sim.run(&RunOptions::default());
        assert_eq!(r.status, RunStatus::Converged);
        let model = (n as f64).log2() + (n as f64).ln();
        assert!(
            (r.parallel_time - model).abs() < model,
            "epidemic time {} vs model {model}",
            r.parallel_time
        );
    }

    #[test]
    fn batch_matches_sequential_epidemic_distribution() {
        // Compare median completion times of the batched and sequential
        // engines on the same protocol: they must agree within ~15%.
        use crate::protocol::Protocol;
        use crate::sim::Simulation;

        struct SeqEpi;
        impl Protocol for SeqEpi {
            type State = u8;
            fn interact(&mut self, _t: u64, a: &mut u8, b: &mut u8, _rng: &mut SimRng) {
                let i = *a | *b;
                *a = i;
                *b = i;
            }
            fn converged(&self, states: &[u8]) -> Option<u32> {
                states.iter().all(|&s| s == 1).then_some(1)
            }
        }

        let n = 4096usize;
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[v.len() / 2]
        };
        let seq: Vec<f64> = (0..9)
            .map(|seed| {
                let mut states = vec![0u8; n];
                states[0] = 1;
                let mut sim = Simulation::new(SeqEpi, states, seed);
                sim.run(&RunOptions::default()).parallel_time
            })
            .collect();
        let bat: Vec<f64> = (0..9)
            .map(|seed| {
                let mut sim = BatchSimulation::new(Epi, vec![n as u64 - 1, 1], 1000 + seed);
                sim.run(&RunOptions::default()).parallel_time
            })
            .collect();
        let (ms, mb) = (median(seq), median(bat));
        assert!(
            (ms - mb).abs() / ms < 0.15,
            "sequential {ms} vs batched {mb} diverge"
        );
    }

    #[test]
    fn batched_majority_picks_large_bias_winner() {
        let n = 1_000_000u64;
        let mut sim = BatchSimulation::new(Am3, vec![0, n * 3 / 5, n * 2 / 5], 11);
        let r = sim.run(&RunOptions { max_interactions: 200 * n, check_every: 0 });
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    fn batch_lengths_are_birthday_scale() {
        let n = 10_000u64;
        let mut sim = BatchSimulation::new(Epi, vec![n - 1, 1], 5);
        let mut total = 0u64;
        let batches = 200;
        for _ in 0..batches {
            total += sim.draw_batch_len();
        }
        let mean = total as f64 / batches as f64;
        // Birthday bound: E[collision-free pairs] ≈ √(π·n/4)/… ~ tens for
        // n = 10⁴; assert the right order of magnitude.
        assert!(mean > 10.0 && mean < 400.0, "mean batch length {mean}");
    }

    #[test]
    #[should_panic]
    fn mismatched_counts_rejected() {
        let _ = BatchSimulation::new(Epi, vec![1, 1, 1], 0);
    }
}
