//! The sequential scheduler.

use std::sync::Arc;

use rand::{Rng, SeedableRng};

use crate::census::Census;
use crate::churn::ChurnProcess;
use crate::fault::{
    Adversary, ChurnTarget, FaultAction, FaultPlan, FaultRecord, Forgery, OpinionCensus,
    Replacement, Scheduler, SCHEDULER_RETRIES, SCHEDULER_SATURATION_STREAK,
};
use crate::pair::{pair_mut, sample_pair};
use crate::protocol::{Protocol, SimRng};
use crate::result::{ChurnSample, RunNote, RunOptions, RunResult, RunStatus};

/// A single simulation instance: a protocol, a configuration (one state per
/// agent) and a scheduler RNG.
#[derive(Debug)]
pub struct Simulation<P: Protocol> {
    protocol: P,
    states: Vec<P::State>,
    rng: SimRng,
    interactions: u64,
    /// Parallel time accumulated before `interactions_base` — non-zero only
    /// after churn changed the population size (the clock is then no longer
    /// `interactions / n`).
    time_base: f64,
    /// Interactions already folded into `time_base`.
    interactions_base: u64,
    scheduler: Option<Arc<dyn Scheduler>>,
    adversary: Option<Arc<dyn Adversary>>,
    /// The adversary's current forgery, cached so the hot loop never
    /// recomputes it. Static adversaries set it once at install; adaptive
    /// ones are refreshed against the live census at every stride
    /// boundary (see [`refresh_forgery`](Self::refresh_forgery)).
    forgery: Forgery,
    /// Consecutive fully-exhausted scheduler rejection loops.
    starve_streak: u32,
    scheduler_saturated: bool,
}

impl<P: Protocol> Simulation<P> {
    /// Create a simulation over the given initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents are supplied.
    pub fn new(protocol: P, states: Vec<P::State>, seed: u64) -> Self {
        assert!(
            states.len() >= 2,
            "population must contain at least two agents"
        );
        Self {
            protocol,
            states,
            rng: SimRng::seed_from_u64(seed),
            interactions: 0,
            time_base: 0.0,
            interactions_base: 0,
            scheduler: None,
            adversary: None,
            forgery: Forgery::Random,
            starve_streak: 0,
            scheduler_saturated: false,
        }
    }

    /// Replace the uniform pair scheduler with an adversarial one. The
    /// uniform hot path is untouched when no scheduler is set.
    pub fn set_scheduler(&mut self, scheduler: Arc<dyn Scheduler>) {
        self.scheduler = Some(scheduler);
    }

    /// Install a Byzantine interaction adversary. The honest hot path is
    /// untouched (same RNG stream as [`run`](Self::run)) when none is set;
    /// a zero lying probability is treated as no adversary, so `byz:0`
    /// keeps RNG-identity on every engine.
    pub fn set_adversary(&mut self, adversary: Arc<dyn Adversary>) {
        if adversary.lie_frac() > 0.0 {
            // Static adversaries ignore the census (trait default), so
            // this one call covers both kinds; adaptive forgeries are then
            // re-aimed at every stride boundary.
            self.forgery = adversary.forgery(&self.opinion_census());
            self.adversary = Some(adversary);
        }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// Interactions executed so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Parallel time: interactions divided by the population size, folded
    /// over population changes (churn) so the clock stays continuous.
    pub fn parallel_time(&self) -> f64 {
        self.time_base + (self.interactions - self.interactions_base) as f64 / self.n() as f64
    }

    /// The raw RNG state, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// The clock's checkpoint triple: `(interactions, interactions_base,
    /// time_base)`.
    pub fn clock_parts(&self) -> (u64, u64, f64) {
        (self.interactions, self.interactions_base, self.time_base)
    }

    /// Restore RNG and clock from a checkpoint, making subsequent steps
    /// replay the checkpointed run's stream exactly.
    pub fn restore_clock(
        &mut self,
        interactions: u64,
        interactions_base: u64,
        time_base: f64,
        rng: [u64; 4],
    ) {
        self.interactions = interactions;
        self.interactions_base = interactions_base;
        self.time_base = time_base;
        self.rng = SimRng::from_state(rng);
    }

    /// Fold the elapsed clock into `time_base`; must be called *before*
    /// the population size changes.
    fn fold_clock(&mut self) {
        self.time_base = self.parallel_time();
        self.interactions_base = self.interactions;
    }

    /// The current configuration.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The protocol instance (e.g. to read recorded milestones).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Execute a single interaction, returning the chosen (initiator,
    /// responder) indices.
    #[inline]
    pub fn step(&mut self) -> (usize, usize) {
        let (i, j) = match self.scheduler.clone() {
            None => sample_pair(&mut self.rng, self.states.len()),
            Some(sched) => self.sample_pair_scheduled(&*sched),
        };
        match self.adversary.clone() {
            None => {
                let t = self.interactions;
                let (a, b) = pair_mut(&mut self.states, i, j);
                self.protocol.interact(t, a, b, &mut self.rng);
            }
            Some(adv) => self.interact_byzantine(i, j, &*adv),
        }
        self.interactions += 1;
        (i, j)
    }

    /// One interaction under a Byzantine adversary: each participant
    /// independently lies with the adversary's probability. A liar shows a
    /// forged state to its partner and keeps its own state; the honest
    /// partner transitions against the forgery. Both lying makes the
    /// interaction a no-op (neither learns anything real). A protocol that
    /// cannot materialize the forgery (`fault_state` returns `None`)
    /// degrades that lie to honesty — adversaries degrade, never panic.
    fn interact_byzantine(&mut self, i: usize, j: usize, adv: &dyn Adversary) {
        let frac = adv.lie_frac();
        let forgery = self.forgery;
        let lie = |protocol: &P, rng: &mut SimRng| -> Option<P::State> {
            rng.gen_bool(frac)
                .then(|| {
                    let forged = match forgery {
                        Forgery::Random => Replacement::Random,
                        Forgery::Opinion(op) => Replacement::Opinion(op),
                        // The polarizing forgery: each lie picks a side.
                        Forgery::Split(a, b) => {
                            Replacement::Opinion(if rng.gen_bool(0.5) { a } else { b })
                        }
                    };
                    protocol.fault_state(&forged, rng)
                })
                .flatten()
        };
        let a_forgery = lie(&self.protocol, &mut self.rng);
        let b_forgery = lie(&self.protocol, &mut self.rng);
        let t = self.interactions;
        match (a_forgery, b_forgery) {
            (None, None) => {
                let (a, b) = pair_mut(&mut self.states, i, j);
                self.protocol.interact(t, a, b, &mut self.rng);
            }
            (Some(mut fake_a), None) => {
                // Initiator lies: only the responder's transition is real.
                self.protocol
                    .interact(t, &mut fake_a, &mut self.states[j], &mut self.rng);
            }
            (None, Some(mut fake_b)) => {
                self.protocol
                    .interact(t, &mut self.states[i], &mut fake_b, &mut self.rng);
            }
            (Some(_), Some(_)) => {}
        }
    }

    /// The live opinion tally, for adaptive forgeries and targeted churn.
    fn opinion_census(&self) -> OpinionCensus {
        let mut tally: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for s in &self.states {
            if let Some(op) = self.protocol.opinion_of(s) {
                *tally.entry(op).or_insert(0) += 1;
            }
        }
        OpinionCensus::from_tallies(tally)
    }

    /// Re-aim an adaptive adversary's forgery at the live census. Called
    /// at every stride boundary — `O(n)` per `O(n)` interactions, so the
    /// hot loop is untouched. Draws no randomness, preserving the replay
    /// contract; a no-op for static adversaries.
    fn refresh_forgery(&mut self) {
        if !self.adversary.as_ref().is_some_and(|a| a.adaptive()) {
            return;
        }
        let adv = self.adversary.clone().expect("adaptive adversary present");
        self.forgery = adv.forgery(&self.opinion_census());
    }

    /// Biased pair draw: bounded rejection sampling against the
    /// scheduler's per-opinion participation weights, then (with the
    /// scheduler's assortativity probability) a bounded redraw forcing the
    /// responder to share the initiator's opinion. All retry loops cap at
    /// [`SCHEDULER_RETRIES`] and then accept whatever is in hand —
    /// adversarial weights degrade the bias, never livelock the engine.
    ///
    /// A weight-0 scheduler can veto *every* candidate (the starved
    /// opinion is the only one left). [`SCHEDULER_SATURATION_STREAK`]
    /// consecutive fully-exhausted retry loops flip the engine into
    /// saturated mode: pair selection degrades to uniform for the rest of
    /// the run and the result carries
    /// [`RunNote::SchedulerSaturated`].
    fn sample_pair_scheduled(&mut self, sched: &dyn Scheduler) -> (usize, usize) {
        let n = self.states.len();
        if self.scheduler_saturated {
            return sample_pair(&mut self.rng, n);
        }
        let weight_of = |protocol: &P, state: &P::State| {
            sched
                .opinion_weight(protocol.opinion_of(state))
                .clamp(0.0, 1.0)
        };
        let (mut i, mut j) = sample_pair(&mut self.rng, n);
        let mut exhausted = true;
        for _ in 0..SCHEDULER_RETRIES {
            let w = weight_of(&self.protocol, &self.states[i]);
            if w >= 1.0 || (w > 0.0 && self.rng.gen_bool(w)) {
                exhausted = false;
                break;
            }
            (i, j) = sample_pair(&mut self.rng, n);
        }
        if exhausted {
            self.starve_streak += 1;
            if self.starve_streak >= SCHEDULER_SATURATION_STREAK {
                self.scheduler_saturated = true;
            }
        } else {
            self.starve_streak = 0;
        }
        let assort = sched.assortativity().clamp(0.0, 1.0);
        if assort > 0.0 && self.rng.gen_bool(assort) {
            // Like-with-like pairing: redraw the responder until it shares
            // the initiator's opinion (bounded).
            let want = self.protocol.opinion_of(&self.states[i]);
            for _ in 0..SCHEDULER_RETRIES {
                if j != i && self.protocol.opinion_of(&self.states[j]) == want {
                    break;
                }
                j = self.rng.gen_range(0..n);
            }
        } else {
            for _ in 0..SCHEDULER_RETRIES {
                let w = weight_of(&self.protocol, &self.states[j]);
                if w >= 1.0 || self.rng.gen_bool(w) {
                    break;
                }
                j = self.rng.gen_range(0..n);
            }
        }
        // The redraws above may have landed on the initiator; restore the
        // model's distinct-pair invariant unconditionally.
        while j == i {
            j = self.rng.gen_range(0..n);
        }
        (i, j)
    }

    /// Run until the protocol converges or the budget is exhausted.
    pub fn run(&mut self, opts: &RunOptions) -> RunResult {
        self.run_inner(opts, |_, _| {})
    }

    /// Like [`run`](Self::run), but additionally records every visited state
    /// (initial configuration plus both participants after each interaction)
    /// into `census`. Substantially slower; used by state-space experiments.
    pub fn run_with_census(&mut self, opts: &RunOptions, census: &mut Census) -> RunResult {
        for s in &self.states {
            census.record(self.protocol.encode(s));
        }
        // Split the borrow: the closure needs `census` while `run_inner`
        // borrows `self` mutably, so the recording happens on indices.
        let opts = *opts;
        let stride = self.check_stride(&opts);
        loop {
            if let Some(output) = self.check(&opts) {
                return self.finish(RunStatus::Converged, Some(output));
            }
            if self.interactions >= opts.max_interactions {
                return self.finish(RunStatus::Exhausted, None);
            }
            let steps = stride.min(opts.max_interactions - self.interactions);
            self.refresh_forgery();
            for _ in 0..steps {
                let (i, j) = self.step();
                census.record(self.protocol.encode(&self.states[i]));
                census.record(self.protocol.encode(&self.states[j]));
            }
        }
    }

    /// Like [`run`](Self::run), with a sampling hook invoked after every
    /// convergence check; used to record time series.
    pub fn run_observed(
        &mut self,
        opts: &RunOptions,
        mut observe: impl FnMut(u64, &[P::State]),
    ) -> RunResult {
        self.run_inner(opts, |t, states| observe(t, states))
    }

    fn run_inner(
        &mut self,
        opts: &RunOptions,
        mut observe: impl FnMut(u64, &[P::State]),
    ) -> RunResult {
        let stride = self.check_stride(opts);
        loop {
            observe(self.interactions, &self.states);
            if let Some(output) = self.check(opts) {
                return self.finish(RunStatus::Converged, Some(output));
            }
            if self.interactions >= opts.max_interactions {
                return self.finish(RunStatus::Exhausted, None);
            }
            let steps = stride.min(opts.max_interactions - self.interactions);
            self.refresh_forgery();
            for _ in 0..steps {
                self.step();
            }
        }
    }

    /// Run under a fault plan: advance to each hook's parallel time, apply
    /// its strike to the live configuration, and keep running; after the
    /// last hook, run to convergence or budget as usual. Each strike opens
    /// a [`FaultRecord`] that is closed (recovery time + output) at the
    /// first convergence observed afterwards; a record still open when the
    /// next hook fires or the budget ends keeps a `NaN` recovery time.
    ///
    /// An empty plan replays [`run`](Self::run) exactly — same RNG
    /// trajectory, same result.
    pub fn run_faulted(&mut self, opts: &RunOptions, plan: &FaultPlan) -> RunResult {
        if plan.is_empty() {
            return self.run(opts);
        }
        let n = self.n() as f64;
        let initial = self.states.clone();
        let stride = self.check_stride(opts);
        let mut records: Vec<FaultRecord> = Vec::new();
        let mut open: Option<usize> = None;

        for (at, action, label) in plan.schedule() {
            let target = (at.max(0.0) * n).ceil() as u64;
            if target > opts.max_interactions {
                break; // scheduled beyond the budget: never fires
            }
            while self.interactions < target {
                if let (Some(k), Some(output)) = (open, self.check(opts)) {
                    records[k].recovery_time = self.parallel_time() - records[k].at;
                    records[k].output_after = Some(output);
                    open = None;
                }
                let steps = stride.min(target - self.interactions);
                self.refresh_forgery();
                for _ in 0..steps {
                    self.step();
                }
            }
            let output_before = self.check(opts);
            if let (Some(k), Some(output)) = (open.take(), output_before) {
                records[k].recovery_time = self.parallel_time() - records[k].at;
                records[k].output_after = Some(output);
            }
            self.strike(&initial, &action);
            records.push(FaultRecord {
                at: self.parallel_time(),
                hook: label,
                output_before,
                output_after: None,
                recovery_time: f64::NAN,
            });
            open = Some(records.len() - 1);
        }

        loop {
            if let Some(output) = self.check(opts) {
                if let Some(k) = open.take() {
                    records[k].recovery_time = self.parallel_time() - records[k].at;
                    records[k].output_after = Some(output);
                }
                let mut r = self.finish(RunStatus::Converged, Some(output));
                r.faults = records;
                return r;
            }
            if self.interactions >= opts.max_interactions {
                let mut r = self.finish(RunStatus::Exhausted, None);
                r.faults = records;
                return r;
            }
            let steps = stride.min(opts.max_interactions - self.interactions);
            self.refresh_forgery();
            for _ in 0..steps {
                self.step();
            }
        }
    }

    /// Apply one fault strike: every agent is hit independently with
    /// probability `action.frac`. [`Replacement::Rejoin`] restores the
    /// victim's initial state; the other kinds delegate to
    /// [`Protocol::fault_state`], and a protocol returning `None` leaves
    /// the victim untouched (faults degrade, never panic).
    fn strike(&mut self, initial: &[P::State], action: &FaultAction) {
        let frac = action.frac.clamp(0.0, 1.0);
        if frac <= 0.0 {
            return;
        }
        let Self {
            protocol,
            states,
            rng,
            ..
        } = self;
        for (state, init) in states.iter_mut().zip(initial) {
            if !rng.gen_bool(frac) {
                continue;
            }
            match action.replacement {
                Replacement::Rejoin => *state = init.clone(),
                r => {
                    if let Some(s) = protocol.fault_state(&r, rng) {
                        *state = s;
                    }
                }
            }
        }
    }

    fn check(&self, _opts: &RunOptions) -> Option<u32> {
        self.protocol.converged(&self.states)
    }

    /// The convergence-check stride, resolved once per run: `converged` is
    /// an `O(n)` scan, so the hot loop must never recompute or rescan
    /// mid-stride.
    fn check_stride(&self, opts: &RunOptions) -> u64 {
        if opts.check_every == 0 {
            self.n() as u64
        } else {
            opts.check_every
        }
    }

    /// Run under a steady-state churn process until `stop_at` parallel
    /// time: agents join (cloning a uniformly random state of `initial`)
    /// and leave at the process's Poisson rates, applied after every
    /// convergence-check stride, and a [`ChurnSample`] is recorded each
    /// time the clock crosses a multiple of the process's sampling period.
    ///
    /// Convergence does not stop a churned run — the point is measuring
    /// *how long* the run stays correct — so the result's status is
    /// [`RunStatus::Converged`] iff the predicate fires at `stop_at`, and
    /// the series carries the history. Strides are never truncated at
    /// `stop_at` (the run halts at the first stride boundary past it),
    /// which keeps checkpointed and uninterrupted runs on the same RNG
    /// trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or the churn process would not sample.
    pub fn run_churned(
        &mut self,
        opts: &RunOptions,
        churn: &ChurnProcess,
        initial: &[P::State],
        stop_at: f64,
    ) -> RunResult {
        assert!(!initial.is_empty(), "churn needs a join distribution");
        let mut next_mark = churn.next_mark(self.parallel_time());
        let mut series: Vec<ChurnSample> = Vec::new();
        while self.parallel_time() < stop_at && self.interactions < opts.max_interactions {
            // Resolved *per stride*, not per run: the default stride is the
            // population size, which churn changes — and a resumed run must
            // pick the same stride the uninterrupted run would have.
            let stride = self.check_stride(opts);
            let steps = stride.min(opts.max_interactions - self.interactions);
            self.refresh_forgery();
            for _ in 0..steps {
                self.step();
            }
            self.apply_churn_events(churn, initial, steps);
            let clock = self.parallel_time();
            if clock >= next_mark {
                series.push(self.churn_sample(opts));
                next_mark = churn.next_mark(clock);
            }
        }
        let output = self.check(opts);
        let status = if output.is_some() {
            RunStatus::Converged
        } else {
            RunStatus::Exhausted
        };
        let mut r = self.finish(status, output);
        r.series = series;
        r
    }

    /// Poisson join/leave events covering a stride of `len` interactions.
    /// The clock folds before the population changes so parallel time
    /// stays continuous; leaves are capped to keep at least two agents.
    ///
    /// Uniform-target departures keep the exact RNG draw sequence from
    /// before targeting existed; targeted departures hit the census-chosen
    /// opinion class first and fall back to uniform removals once (or if)
    /// the class runs dry.
    fn apply_churn_events(&mut self, churn: &ChurnProcess, initial: &[P::State], len: u64) {
        let (joins, leaves) = churn.draw_events(&mut self.rng, len);
        let leaves = leaves.min(self.states.len() as u64 - 2);
        if joins == 0 && leaves == 0 {
            return;
        }
        self.fold_clock();
        let targeted = match churn.target() {
            ChurnTarget::Uniform => 0,
            target => self.remove_targeted(target, leaves),
        };
        for _ in 0..leaves - targeted {
            let victim = self.rng.gen_range(0..self.states.len());
            self.states.swap_remove(victim);
        }
        for _ in 0..joins {
            let donor = self.rng.gen_range(0..initial.len());
            self.states.push(initial[donor].clone());
        }
    }

    /// Remove up to `leaves` agents from the opinion class the target
    /// selects (plurality leader / weakest minority), returning how many
    /// were actually removed. Victims are distinct members of the class,
    /// chosen by a partial Fisher–Yates shuffle over the member indices —
    /// one `O(n)` scan per stride, matching the census cost — and removed
    /// in descending index order so `swap_remove` never displaces a
    /// pending victim.
    fn remove_targeted(&mut self, target: ChurnTarget, leaves: u64) -> u64 {
        let census = self.opinion_census();
        let want = match target {
            ChurnTarget::Uniform => None,
            ChurnTarget::Plurality => census.leader(),
            ChurnTarget::Minority => census.weakest(),
        };
        // An opinion-free population degrades to uniform departures.
        let Some(want) = want else { return 0 };
        let mut members: Vec<usize> = (0..self.states.len())
            .filter(|&i| self.protocol.opinion_of(&self.states[i]) == Some(want))
            .collect();
        let k = (leaves as usize).min(members.len());
        for m in 0..k {
            let pick = self.rng.gen_range(m..members.len());
            members.swap(m, pick);
        }
        let mut victims = members;
        victims.truncate(k);
        victims.sort_unstable_by(|a, b| b.cmp(a));
        for v in victims {
            self.states.swap_remove(v);
        }
        k as u64
    }

    /// The health sample `run_churned` records at each sampling mark.
    fn churn_sample(&self, opts: &RunOptions) -> ChurnSample {
        let mut tally: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for s in &self.states {
            if let Some(op) = self.protocol.opinion_of(s) {
                *tally.entry(op).or_insert(0) += 1;
            }
        }
        let top = tally.values().copied().max().unwrap_or(0);
        ChurnSample {
            t: self.parallel_time(),
            population: self.states.len() as u64,
            plurality_frac: top as f64 / self.states.len() as f64,
            output: self.check(opts),
        }
    }

    fn finish(&self, status: RunStatus, output: Option<u32>) -> RunResult {
        RunResult {
            status,
            output,
            interactions: self.interactions,
            parallel_time: self.parallel_time(),
            faults: Vec::new(),
            series: Vec::new(),
            notes: if self.scheduler_saturated {
                vec![RunNote::SchedulerSaturated]
            } else {
                Vec::new()
            },
        }
    }

    /// Consume the simulation and return the protocol (for milestone
    /// extraction) together with the final configuration.
    pub fn into_parts(self) -> (P, Vec<P::State>) {
        (self.protocol, self.states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts pair sums; converges when every agent saw at least one
    /// interaction (state > 0).
    struct Touch;
    impl Protocol for Touch {
        type State = u32;
        fn interact(&mut self, _t: u64, a: &mut u32, b: &mut u32, _rng: &mut SimRng) {
            *a += 1;
            *b += 1;
        }
        fn converged(&self, states: &[u32]) -> Option<u32> {
            states.iter().all(|&s| s > 0).then_some(0)
        }
        fn encode(&self, state: &u32) -> u64 {
            u64::from((*state).min(3))
        }
    }

    #[test]
    fn runs_until_everyone_touched() {
        let mut sim = Simulation::new(Touch, vec![0u32; 64], 1);
        let result = sim.run(&RunOptions::default());
        assert_eq!(result.status, RunStatus::Converged);
        // Coupon collector: needs at least n/2 interactions.
        assert!(result.interactions >= 32);
    }

    #[test]
    fn budget_is_respected() {
        let mut sim = Simulation::new(Touch, vec![0u32; 1000], 1);
        let result = sim.run(&RunOptions {
            max_interactions: 10,
            check_every: 0,
        });
        assert_eq!(result.status, RunStatus::Exhausted);
        assert_eq!(result.interactions, 10);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let run = |seed| {
            let mut sim = Simulation::new(Touch, vec![0u32; 128], seed);
            sim.run(&RunOptions::default()).interactions
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn census_counts_distinct_states() {
        let mut sim = Simulation::new(Touch, vec![0u32; 32], 5);
        let mut census = Census::new();
        sim.run_with_census(&RunOptions::default(), &mut census);
        // Encodings are clamped to 0..=3.
        assert!(
            census.len() >= 2 && census.len() <= 4,
            "census = {}",
            census.len()
        );
    }

    #[test]
    fn interactions_counter_matches_steps() {
        let mut sim = Simulation::new(Touch, vec![0u32; 8], 2);
        for _ in 0..17 {
            sim.step();
        }
        assert_eq!(sim.interactions(), 17);
        assert!((sim.parallel_time() - 17.0 / 8.0).abs() < 1e-12);
    }
}
