//! Parallel execution of independent trials.
//!
//! Population-protocol experiments are ensembles of independent runs, so we
//! parallelise across trials with scoped threads (no extra dependency). Each
//! trial receives its index; the caller derives a per-trial seed via
//! [`crate::rng::derive`] so results are independent of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Run `trials` independent trials of `f` (called with the trial index) on
/// `threads` worker threads and return the results in trial order.
///
/// Work is distributed dynamically (atomic work-stealing counter), so uneven
/// trial durations do not idle workers.
///
/// # Panics
///
/// Propagates a panic from any trial.
pub fn run_trials<R, F>(trials: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    let mut slots: Vec<Option<R>> = Vec::with_capacity(trials);
    slots.resize_with(trials, || None);
    if trials == 0 {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let slots_ptr = SendSlots(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let r = f(i);
                // SAFETY: each index is claimed exactly once via the atomic
                // counter, so no two threads write the same slot, and the
                // Vec outlives the scope.
                unsafe { *slots_ptr.0.add(i) = Some(r) };
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("trial slot filled"))
        .collect()
}

/// Wrapper making the raw slot pointer `Sync`; safety argument at the write
/// site.
struct SendSlots<R>(*mut Option<R>);
unsafe impl<R: Send> Sync for SendSlots<R> {}
unsafe impl<R: Send> Send for SendSlots<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u32> = run_trials(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_works() {
        let out = run_trials(10, 1, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Trials with wildly different costs still all complete.
        let out = run_trials(32, 4, |i| {
            let mut acc = 0u64;
            for x in 0..(i as u64 % 7) * 1000 {
                acc = acc.wrapping_add(x);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }
}
