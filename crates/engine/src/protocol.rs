//! The [`Protocol`] trait: a population protocol as seen by the scheduler.

use rand::rngs::SmallRng;

use crate::fault::Replacement;

/// The RNG handed to transition functions.
///
/// A concrete type (rather than a generic parameter) keeps the hot
/// interaction loop monomorphic and the trait object-safe. `SmallRng` is a
/// non-cryptographic generator chosen for speed; experiments derive
/// independent seeds per trial via [`crate::rng::derive`].
pub type SimRng = SmallRng;

/// A population protocol: per-agent state plus a pairwise transition
/// function.
///
/// The scheduler calls [`interact`](Protocol::interact) once per interaction
/// with the (initiator, responder) pair. Protocols take `&mut self` so they
/// can record internal milestones (e.g. "first agent entered phase 0 at
/// interaction t"); the *agent-visible* protocol state must live in
/// [`State`](Protocol::State) only.
///
/// Most protocols in the paper are randomized only through the scheduler;
/// those that flip internal coins (e.g. role selection with probability 1/3)
/// draw from the provided RNG, which models the standard synthetic-coin
/// construction.
pub trait Protocol {
    /// Per-agent state.
    type State: Clone + Send + Sync + std::fmt::Debug;

    /// Apply one interaction at (zero-based) interaction index `t`.
    ///
    /// `a` is the initiator and `b` the responder; the model draws ordered
    /// pairs, and several of the paper's transitions are asymmetric (e.g.
    /// only the initiator's clock counter moves).
    fn interact(&mut self, t: u64, a: &mut Self::State, b: &mut Self::State, rng: &mut SimRng);

    /// Whether the configuration has reached the protocol's target, and if
    /// so which output (opinion identifier) it carries.
    ///
    /// Called periodically (not every step); it should be a pure function of
    /// the configuration. Returning `Some(o)` stops the run.
    fn converged(&self, states: &[Self::State]) -> Option<u32>;

    /// A canonical bounded encoding of an agent state for the state census.
    ///
    /// Two states must encode equal iff the protocol, implemented with
    /// minimal memory, could represent them identically. The default
    /// implementation panics; protocols that participate in census
    /// experiments override it.
    fn encode(&self, state: &Self::State) -> u64 {
        let _ = state;
        unimplemented!("this protocol does not provide a census encoding")
    }

    /// The state a fault-struck agent is replaced with, for the given
    /// [`Replacement`] kind.
    ///
    /// Returning `None` means the protocol cannot synthesize such a state
    /// and the strike leaves the victim untouched (for
    /// [`Replacement::Rejoin`] the engine instead restores the victim's
    /// *initial* state itself, so `None` is the correct answer there).
    /// The default supports no replacement at all, so faults degrade to
    /// no-ops on protocols that have not opted in.
    fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<Self::State> {
        let _ = (replacement, rng);
        None
    }

    /// The opinion an agent in `state` currently advocates, if any — the
    /// hook adversarial [`Scheduler`](crate::Scheduler)s bias on. `None`
    /// (the default) marks undecided or helper agents, which schedulers
    /// treat uniformly.
    fn opinion_of(&self, state: &Self::State) -> Option<u32> {
        let _ = state;
        None
    }
}
