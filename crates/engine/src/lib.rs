//! Simulation engine for population protocols.
//!
//! The *population protocol* model (Angluin et al.) consists of `n`
//! anonymous agents, each a finite state machine. In every discrete step the
//! scheduler draws an ordered pair of distinct agents `(initiator,
//! responder)` independently and uniformly at random, and both agents update
//! their states through a common transition function. *Parallel time* is the
//! number of interactions divided by `n`.
//!
//! This crate provides the infrastructure shared by every protocol in the
//! workspace:
//!
//! * [`Protocol`] — the transition-function interface,
//! * [`Simulation`] — a sequential scheduler with convergence detection,
//! * [`Census`] — exact tracking of the set of distinct agent states visited
//!   (used to validate state-space bounds such as `O(k + log n)`),
//! * [`ensemble`] — embarrassingly-parallel execution of independent trials,
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible from a single base seed.
//!
//! # Example
//!
//! ```
//! use pp_engine::{Protocol, Simulation, SimRng, RunOptions};
//!
//! /// One-way epidemic: state 1 infects state 0.
//! struct Epidemic;
//! impl Protocol for Epidemic {
//!     type State = u8;
//!     fn interact(&mut self, _t: u64, a: &mut u8, b: &mut u8, _rng: &mut SimRng) {
//!         if *a == 1 { *b = 1; }
//!         if *b == 1 { *a = 1; }
//!     }
//!     fn converged(&self, states: &[u8]) -> Option<u32> {
//!         states.iter().all(|&s| s == 1).then_some(1)
//!     }
//! }
//!
//! let mut states = vec![0u8; 1024];
//! states[0] = 1;
//! let mut sim = Simulation::new(Epidemic, states, 42);
//! let result = sim.run(&RunOptions::default());
//! assert_eq!(result.output, Some(1));
//! // An epidemic completes in roughly log2(n) + ln(n) parallel time.
//! assert!(result.parallel_time < 40.0);
//! ```

pub mod batch;
pub mod census;
pub mod ensemble;
pub mod pair;
pub mod protocol;
pub mod result;
pub mod rng;
pub mod sim;

pub use batch::{BatchSimulation, TableProtocol};
pub use census::Census;
pub use protocol::{Protocol, SimRng};
pub use result::{RunOptions, RunResult, RunStatus};
pub use sim::Simulation;
