//! Simulation engines for population protocols.
//!
//! The *population protocol* model (Angluin et al.) consists of `n`
//! anonymous agents, each a finite state machine. In every discrete step the
//! scheduler draws an ordered pair of distinct agents `(initiator,
//! responder)` independently and uniformly at random, and both agents update
//! their states through a common transition function. *Parallel time* is the
//! number of interactions divided by `n`.
//!
//! # The two engines
//!
//! **Sequential** ([`Simulation`]): one agent-state vector, one interaction
//! per step. The pair draw is the hot path: both indices come out of a
//! single RNG word (Lemire bounded sampling on `0..n·(n−1)`, see
//! [`pair::sample_pair`]) whenever `n < 2³²`, and the `O(n)` convergence
//! scan runs on a stride cached once per run — never mid-stride. This
//! engine handles *any* [`Protocol`], including the paper's own
//! `Θ(k + log n)`-state algorithms with their milestone bookkeeping, and
//! tops out around `n ≈ 10⁶` in practice.
//!
//! **Batched configuration-space** ([`BatchSimulation`], module
//! [`batch`]): for protocols expressible as a [`TableProtocol`] — a
//! transition table over a small enumerable state space whose convergence
//! predicate reads only per-state counts — the engine advances in
//! collision-free batches of `Θ(√n)` interactions. Batch lengths are
//! sampled in `O(1)` by inverting the birthday survival function; each
//! batch becomes one *multinomial tally* of ordered state pairs (binomial
//! splits, `O(S·√ℓ)` per batch) applied with multiplicity, with a
//! Fenwick-tree sampler covering the small-count cases in `O(log S)`.
//! Per-interaction cost is **sub-constant**: throughput *grows* with `n`
//! (billions of interactions per second at `n = 10⁸`, see
//! `BENCH_engine.json`). Randomized transitions are supported — the table
//! receives the scheduler RNG and declares itself via
//! [`TableProtocol::is_deterministic`].
//!
//! **Accuracy contract.** Batch participants are sampled *with
//! replacement* from the configuration, deviating from the exact
//! without-replacement law by `O(ℓ²/n)` total variation per batch — with
//! `ℓ = Θ(√n)` that is `O(1)` interactions' worth of drift per batch, and
//! observable statistics (convergence-time medians, winner distributions)
//! match the sequential engine within the 15% tolerance enforced by
//! `tests/engine_equivalence.rs`. Use the sequential engine when
//! trajectory-exact semantics matter; use the batched engine for scaling
//! curves and baseline arms.
//!
//! **Fast-path checklist** for a protocol to run batched: (1) states fit
//! `0..S` for small `S`; (2) the transition is a function of the two
//! states (plus randomness) only — no interaction-index or per-agent
//! identity dependence; (3) convergence reads the counts vector. The
//! constant-state baselines (USD, 3-/4-state majority, epidemics) all
//! qualify; adapters live next to each protocol.
//!
//! This crate provides the infrastructure shared by every protocol in the
//! workspace:
//!
//! * [`Protocol`] — the transition-function interface,
//! * [`Simulation`] — the sequential scheduler with convergence detection,
//! * [`batch`] — the configuration-space engines:
//!   [`BatchSimulation`] (multinomial tallies) and
//!   [`PairwiseBatchSimulation`] (the per-pair reference),
//! * [`Census`] — exact tracking of the set of distinct agent states visited
//!   (used to validate state-space bounds such as `O(k + log n)`),
//! * [`ensemble`] — embarrassingly-parallel execution of independent trials,
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible from a single base seed.
//!
//! # Example
//!
//! ```
//! use pp_engine::{Protocol, Simulation, SimRng, RunOptions};
//!
//! /// One-way epidemic: state 1 infects state 0.
//! struct Epidemic;
//! impl Protocol for Epidemic {
//!     type State = u8;
//!     fn interact(&mut self, _t: u64, a: &mut u8, b: &mut u8, _rng: &mut SimRng) {
//!         if *a == 1 { *b = 1; }
//!         if *b == 1 { *a = 1; }
//!     }
//!     fn converged(&self, states: &[u8]) -> Option<u32> {
//!         states.iter().all(|&s| s == 1).then_some(1)
//!     }
//! }
//!
//! let mut states = vec![0u8; 1024];
//! states[0] = 1;
//! let mut sim = Simulation::new(Epidemic, states, 42);
//! let result = sim.run(&RunOptions::default());
//! assert_eq!(result.output, Some(1));
//! // An epidemic completes in roughly log2(n) + ln(n) parallel time.
//! assert!(result.parallel_time < 40.0);
//! ```

pub mod batch;
pub mod census;
pub mod checkpoint;
pub mod churn;
pub mod ensemble;
pub mod fault;
pub mod pair;
pub mod protocol;
pub mod result;
pub mod rng;
pub mod segment;
pub mod sim;
pub mod table_seq;

pub use batch::{
    BatchSimulation, Fenwick, PairwiseBatchSimulation, ShardedFenwick, StateSampler, TableProtocol,
};
pub use census::Census;
pub use checkpoint::Checkpoint;
pub use churn::ChurnProcess;
pub use fault::{
    AdaptiveAdversary, AdaptiveStrategy, Adversary, AdversarySpec, ByzantineAdversary, Churn,
    ChurnSpec, ChurnTarget, Corrupt, FaultAction, FaultHook, FaultPlan, FaultRecord, FaultSpec,
    Forgery, Inject, LieTarget, OpinionCensus, PairBiasScheduler, Replacement, Scheduler,
    SchedulerSpec, StarveScheduler, UniformScheduler,
};
pub use protocol::{Protocol, SimRng};
pub use result::{ChurnSample, RunNote, RunOptions, RunResult, RunStatus};
pub use segment::SegmentRunner;
pub use sim::Simulation;
pub use table_seq::SeqTable;
