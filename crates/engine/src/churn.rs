//! Steady-state churn: a continuous Poisson join/leave process.
//!
//! Unlike the one-shot [`Churn`](crate::fault::Churn) epoch strike, a
//! [`ChurnProcess`] runs *for the whole run*: after every engine stride or
//! batch of `ℓ` interactions, `Poisson(join·ℓ)` fresh agents drawn from
//! the initial workload join and `Poisson(leave·ℓ)` uniformly random
//! agents leave (never below two agents). Rates are expressed per agent
//! per unit of parallel time, so a stride of `ℓ` interactions — `ℓ/n`
//! parallel time across `n` agents — carries an expected `rate · ℓ`
//! events regardless of the current population size.
//!
//! The engines' `run_churned` methods drive the process and record a
//! [`ChurnSample`](crate::ChurnSample) each time the parallel clock
//! crosses a multiple of [`ChurnProcess::sample_every`], producing the
//! population / plurality-fraction / time-in-consensus series the churn
//! soak experiments report. All churn randomness comes from the engine's
//! own RNG stream, preserving the (seed, config) replay contract.

use crate::batch::multinomial::poisson;
use crate::fault::{ChurnSpec, ChurnTarget};
use crate::protocol::SimRng;

/// A continuous Poisson join/leave process with a sampling period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    join: f64,
    leave: f64,
    target: ChurnTarget,
    sample_every: f64,
}

impl ChurnProcess {
    /// A process with the spec's rates, sampling once per unit of parallel
    /// time.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative rates.
    pub fn new(spec: ChurnSpec) -> Self {
        assert!(
            spec.join.is_finite()
                && spec.join >= 0.0
                && spec.leave.is_finite()
                && spec.leave >= 0.0,
            "churn rates must be finite and non-negative: {spec}"
        );
        Self {
            join: spec.join,
            leave: spec.leave,
            target: spec.target,
            sample_every: 1.0,
        }
    }

    /// Override the sampling period (parallel time between
    /// [`ChurnSample`](crate::ChurnSample)s).
    ///
    /// # Panics
    ///
    /// Panics unless `every` is finite and positive.
    #[must_use]
    pub fn with_sample_every(mut self, every: f64) -> Self {
        assert!(
            every.is_finite() && every > 0.0,
            "sampling period must be finite and positive"
        );
        self.sample_every = every;
        self
    }

    /// The process's rates and departure targeting as a CLI/manifest spec.
    pub fn spec(&self) -> ChurnSpec {
        ChurnSpec {
            join: self.join,
            leave: self.leave,
            target: self.target,
        }
    }

    /// Which agents the departures hit.
    pub fn target(&self) -> ChurnTarget {
        self.target
    }

    /// Parallel time between samples.
    pub fn sample_every(&self) -> f64 {
        self.sample_every
    }

    /// The first sampling mark strictly after `clock`. Derived from the
    /// clock alone (no running state), so a resumed run lands on the same
    /// marks as an uninterrupted one.
    pub fn next_mark(&self, clock: f64) -> f64 {
        ((clock / self.sample_every).floor() + 1.0) * self.sample_every
    }

    /// Draw the `(joins, leaves)` event counts for a stride of `len`
    /// interactions. A zero rate draws nothing from the RNG, so a
    /// zero-rate process leaves the engine's stream untouched.
    pub fn draw_events(&self, rng: &mut SimRng, len: u64) -> (u64, u64) {
        (
            poisson(rng, self.join * len as f64),
            poisson(rng, self.leave * len as f64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn marks_advance_strictly_and_align_to_the_period() {
        let p = ChurnProcess::new(ChurnSpec {
            join: 0.0,
            leave: 0.0,
            target: ChurnTarget::Uniform,
        })
        .with_sample_every(2.5);
        assert_eq!(p.next_mark(0.0), 2.5);
        assert_eq!(p.next_mark(2.4), 2.5);
        assert_eq!(p.next_mark(2.5), 5.0);
        assert_eq!(p.next_mark(7.9), 10.0);
    }

    #[test]
    fn event_counts_track_rates() {
        let p = ChurnProcess::new(ChurnSpec {
            join: 0.02,
            leave: 0.01,
            target: ChurnTarget::Uniform,
        });
        let mut rng = SimRng::seed_from_u64(3);
        let (mut joins, mut leaves) = (0u64, 0u64);
        let reps = 2_000u64;
        for _ in 0..reps {
            let (j, l) = p.draw_events(&mut rng, 1_000);
            joins += j;
            leaves += l;
        }
        let want_joins = 0.02 * 1_000.0 * reps as f64;
        let want_leaves = 0.01 * 1_000.0 * reps as f64;
        assert!(
            (joins as f64 - want_joins).abs() / want_joins < 0.05,
            "{joins}"
        );
        assert!(
            (leaves as f64 - want_leaves).abs() / want_leaves < 0.05,
            "{leaves}"
        );
    }

    #[test]
    fn spec_round_trips_rates_and_target() {
        let spec = ChurnSpec {
            join: 0.01,
            leave: 0.03,
            target: ChurnTarget::Plurality,
        };
        let p = ChurnProcess::new(spec);
        assert_eq!(p.spec(), spec, "manifests must see the targeted spelling");
        assert_eq!(p.target(), ChurnTarget::Plurality);
    }

    #[test]
    fn zero_rates_leave_the_rng_untouched() {
        let p = ChurnProcess::new(ChurnSpec {
            join: 0.0,
            leave: 0.0,
            target: ChurnTarget::Uniform,
        });
        let mut rng = SimRng::seed_from_u64(9);
        let mut clean = rng.clone();
        assert_eq!(p.draw_events(&mut rng, 10_000), (0, 0));
        use rand::Rng;
        assert_eq!(rng.gen::<u64>(), clean.gen::<u64>());
    }
}
