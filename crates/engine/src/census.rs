//! Exact tracking of the set of distinct agent states visited by a run.
//!
//! The paper's space bounds (`O(k + log n)` for `SimpleAlgorithm`,
//! `O(k·loglog n + log n)` for `ImprovedAlgorithm`) count *states per agent*.
//! A [`Census`] collects the canonical encodings (see
//! [`crate::Protocol::encode`]) of every state any agent ever occupies during
//! a run; its cardinality is an empirical lower bound on — and in practice an
//! accurate measurement of — the protocol's used state-space size.

use std::collections::HashSet;

/// A set of distinct visited state encodings.
#[derive(Debug, Default, Clone)]
pub struct Census {
    seen: HashSet<u64>,
}

impl Census {
    /// An empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one visited state encoding.
    #[inline]
    pub fn record(&mut self, encoding: u64) {
        self.seen.insert(encoding);
    }

    /// Number of distinct states visited.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` iff no state was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Merge another census into this one (e.g. across trials, to measure
    /// the union of reachable states over many schedules).
    pub fn merge(&mut self, other: &Census) {
        self.seen.extend(other.seen.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_distinct_only() {
        let mut c = Census::new();
        assert!(c.is_empty());
        c.record(1);
        c.record(1);
        c.record(2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn merge_unions() {
        let mut a = Census::new();
        a.record(1);
        let mut b = Census::new();
        b.record(1);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }
}
