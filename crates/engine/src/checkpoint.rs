//! Crash-safe checkpoint/restore for all three engines.
//!
//! A [`Checkpoint`] captures everything a run needs to resume
//! byte-identically: the configuration (per-state counts, plus the
//! per-agent state vector on the sequential engine), the raw RNG state,
//! the folded parallel clock, the initial distribution (churn rejoins draw
//! from it) and any [`ChurnSample`] series accumulated so far. Restoring
//! rebuilds the engine and replays the *exact* RNG trajectory the
//! checkpointed run would have taken — the engines' churned/faulted loops
//! only cut at natural batch boundaries, so a killed-and-resumed run
//! produces the same CSV as an uninterrupted one.
//!
//! The on-disk format is a versioned line-based text file (`ppckpt v1`).
//! Floats are serialized as their IEEE-754 bit patterns, never decimal, so
//! the clock and series survive the round trip bit-exactly.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::batch::{BatchSimulation, PairwiseBatchSimulation, TableProtocol};
use crate::result::ChurnSample;
use crate::sim::Simulation;
use crate::table_seq::SeqTable;

/// Format magic + version of the current writer.
const HEADER: &str = "ppckpt v1";

/// A point-in-time engine snapshot, restorable byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Engine tag: `"seq"`, `"batch"` or `"pairwise"`.
    pub engine: String,
    /// Interactions executed so far.
    pub interactions: u64,
    /// Interactions folded into `time_base`.
    pub interactions_base: u64,
    /// Parallel time accumulated before `interactions_base`.
    pub time_base: f64,
    /// Raw xoshiro256++ state.
    pub rng: [u64; 4],
    /// Per-state counts (all engines).
    pub counts: Vec<u64>,
    /// Per-agent states — sequential engine only, empty otherwise.
    pub states: Vec<u32>,
    /// The run's initial distribution (churn joins draw from it).
    pub initial: Vec<u64>,
    /// Churn series accumulated up to the snapshot.
    pub series: Vec<ChurnSample>,
}

impl Checkpoint {
    /// Snapshot a batched engine mid-run.
    pub fn of_batch<P: TableProtocol>(
        sim: &BatchSimulation<P>,
        initial: &[u64],
        series: &[ChurnSample],
    ) -> Self {
        let (interactions, interactions_base, time_base) = sim.clock_parts();
        Self {
            engine: "batch".to_string(),
            interactions,
            interactions_base,
            time_base,
            rng: sim.rng_state(),
            counts: sim.counts().to_vec(),
            states: Vec::new(),
            initial: initial.to_vec(),
            series: series.to_vec(),
        }
    }

    /// Snapshot a per-pair engine mid-run.
    pub fn of_pairwise<P: TableProtocol>(
        sim: &PairwiseBatchSimulation<P>,
        initial: &[u64],
        series: &[ChurnSample],
    ) -> Self {
        let (interactions, interactions_base, time_base) = sim.clock_parts();
        Self {
            engine: "pairwise".to_string(),
            interactions,
            interactions_base,
            time_base,
            rng: sim.rng_state(),
            counts: sim.counts().to_vec(),
            states: Vec::new(),
            initial: initial.to_vec(),
            series: series.to_vec(),
        }
    }

    /// Snapshot a sequential table run mid-run (the sequential engine is
    /// checkpointable for table protocols, whose agent states are plain
    /// indices).
    pub fn of_seq<P: TableProtocol>(
        sim: &Simulation<SeqTable<P>>,
        initial: &[u64],
        series: &[ChurnSample],
    ) -> Self {
        let (interactions, interactions_base, time_base) = sim.clock_parts();
        let states = sim.states().to_vec();
        let mut counts = vec![0u64; sim.protocol().table().states()];
        for &s in &states {
            counts[s as usize] += 1;
        }
        Self {
            engine: "seq".to_string(),
            interactions,
            interactions_base,
            time_base,
            rng: sim.rng_state(),
            counts,
            states,
            initial: initial.to_vec(),
            series: series.to_vec(),
        }
    }

    /// Check the snapshot against the engine and protocol it is being
    /// restored into, so a mismatched or hand-corrupted file surfaces as an
    /// error instead of tripping an engine-constructor assertion.
    fn check_restore(&self, engine: &str, states: usize) -> io::Result<()> {
        let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
        if self.engine != engine {
            return Err(bad(format!(
                "checkpoint holds a '{}' snapshot, not '{engine}'",
                self.engine
            )));
        }
        if self.counts.len() != states {
            return Err(bad(format!(
                "checkpoint has {} states, protocol has {states}",
                self.counts.len()
            )));
        }
        let n: u64 = self.counts.iter().sum();
        if n < 2 {
            return Err(bad(format!("checkpoint population {n} is below 2")));
        }
        if engine == "seq" {
            if self.states.len() as u64 != n {
                return Err(bad(format!(
                    "checkpoint agent vector ({}) disagrees with counts ({n})",
                    self.states.len()
                )));
            }
            if let Some(&s) = self.states.iter().find(|&&s| s as usize >= states) {
                return Err(bad(format!(
                    "checkpoint agent state {s} is outside the protocol's 0..{states}"
                )));
            }
        }
        Ok(())
    }

    /// Rebuild a batched engine at the snapshot.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the snapshot is not a `batch` one or disagrees with
    /// the protocol's state space.
    pub fn restore_batch<P: TableProtocol>(&self, protocol: P) -> io::Result<BatchSimulation<P>> {
        self.check_restore("batch", protocol.states())?;
        let mut sim = BatchSimulation::new(protocol, self.counts.clone(), 0);
        sim.restore_clock(
            self.interactions,
            self.interactions_base,
            self.time_base,
            self.rng,
        );
        Ok(sim)
    }

    /// Rebuild a per-pair engine at the snapshot.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the snapshot is not a `pairwise` one or disagrees
    /// with the protocol's state space.
    pub fn restore_pairwise<P: TableProtocol>(
        &self,
        protocol: P,
    ) -> io::Result<PairwiseBatchSimulation<P>> {
        self.check_restore("pairwise", protocol.states())?;
        let mut sim = PairwiseBatchSimulation::new(protocol, self.counts.clone(), 0);
        sim.restore_clock(
            self.interactions,
            self.interactions_base,
            self.time_base,
            self.rng,
        );
        Ok(sim)
    }

    /// Rebuild a sequential table run at the snapshot.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the snapshot is not a `seq` one, its agent vector
    /// disagrees with its counts, or any agent state falls outside the
    /// protocol's state space.
    pub fn restore_seq<P: TableProtocol>(
        &self,
        protocol: P,
    ) -> io::Result<Simulation<SeqTable<P>>> {
        self.check_restore("seq", protocol.states())?;
        let mut sim = Simulation::new(SeqTable::new(protocol), self.states.clone(), 0);
        sim.restore_clock(
            self.interactions,
            self.interactions_base,
            self.time_base,
            self.rng,
        );
        Ok(sim)
    }

    /// Serialize to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "engine {}", self.engine);
        let _ = writeln!(out, "interactions {}", self.interactions);
        let _ = writeln!(out, "interactions_base {}", self.interactions_base);
        let _ = writeln!(out, "time_base_bits {}", self.time_base.to_bits());
        let _ = writeln!(
            out,
            "rng {} {} {} {}",
            self.rng[0], self.rng[1], self.rng[2], self.rng[3]
        );
        for (key, vals) in [("counts", &self.counts), ("initial", &self.initial)] {
            let _ = write!(out, "{key} {}", vals.len());
            for v in vals {
                let _ = write!(out, " {v}");
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "states {}", self.states.len());
        for s in &self.states {
            let _ = write!(out, " {s}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "series {}", self.series.len());
        for s in &self.series {
            let _ = writeln!(
                out,
                "sample {} {} {} {}",
                s.t.to_bits(),
                s.population,
                s.plurality_frac.to_bits(),
                s.output.map_or_else(|| "-".to_string(), |o| o.to_string()),
            );
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parse the versioned text format.
    ///
    /// # Errors
    ///
    /// `InvalidData` on any malformed or version-mismatched input.
    pub fn from_text(text: &str) -> io::Result<Self> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(bad("not a ppckpt v1 checkpoint"));
        }
        let mut field = |key: &str| -> io::Result<String> {
            let line = lines.next().ok_or_else(|| bad("truncated checkpoint"))?;
            line.strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| bad("field out of order"))
        };
        let engine = field("engine")?;
        if !matches!(engine.as_str(), "seq" | "batch" | "pairwise") {
            return Err(bad("unknown engine tag"));
        }
        let parse_u64 = |v: &str| v.parse::<u64>().map_err(|_| bad("malformed integer"));
        let interactions = parse_u64(&field("interactions")?)?;
        let interactions_base = parse_u64(&field("interactions_base")?)?;
        let time_base = f64::from_bits(parse_u64(&field("time_base_bits")?)?);
        let rng_words = field("rng")?;
        let mut rng = [0u64; 4];
        let mut it = rng_words.split_whitespace();
        for w in &mut rng {
            *w = parse_u64(it.next().ok_or_else(|| bad("short rng state"))?)?;
        }
        if it.next().is_some() {
            return Err(bad("long rng state"));
        }
        let vec_field = |raw: String| -> io::Result<Vec<u64>> {
            let mut it = raw.split_whitespace();
            let len = parse_u64(it.next().ok_or_else(|| bad("missing length"))?)? as usize;
            let vals: Vec<u64> = it.map(parse_u64).collect::<io::Result<_>>()?;
            if vals.len() != len {
                return Err(bad("length mismatch"));
            }
            Ok(vals)
        };
        let counts = vec_field(field("counts")?)?;
        let initial = vec_field(field("initial")?)?;
        let states: Vec<u32> = vec_field(field("states")?)?
            .into_iter()
            .map(|s| u32::try_from(s).map_err(|_| bad("state out of range")))
            .collect::<io::Result<_>>()?;
        let series_len = parse_u64(&field("series")?)? as usize;
        // The length is untrusted input: pre-allocate only what the
        // remaining text could plausibly hold, so a corrupt header can't
        // request an absurd capacity. Growth past the hint is still exact.
        let mut series = Vec::with_capacity(series_len.min(text.len() / 8 + 1));
        for _ in 0..series_len {
            let line = lines.next().ok_or_else(|| bad("truncated series"))?;
            let rest = line
                .strip_prefix("sample ")
                .ok_or_else(|| bad("malformed sample"))?;
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [t, population, frac, output] = parts.as_slice() else {
                return Err(bad("malformed sample"));
            };
            series.push(ChurnSample {
                t: f64::from_bits(parse_u64(t)?),
                population: parse_u64(population)?,
                plurality_frac: f64::from_bits(parse_u64(frac)?),
                output: if *output == "-" {
                    None
                } else {
                    Some(
                        output
                            .parse::<u32>()
                            .map_err(|_| bad("malformed sample output"))?,
                    )
                },
            });
        }
        if lines.next() != Some("end") {
            return Err(bad("missing end marker"));
        }
        Ok(Self {
            engine,
            interactions,
            interactions_base,
            time_base,
            rng,
            counts,
            states,
            initial,
            series,
        })
    }

    /// Write the checkpoint to `path` atomically: the bytes go to a `.tmp`
    /// sibling first, are fsynced, and only then renamed over `path`. A
    /// crash at any instant therefore leaves either the previous complete
    /// checkpoint or the new complete one — a torn half-write is never
    /// observable at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Read a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for a malformed file.
    pub fn read(path: &Path) -> io::Result<Self> {
        Self::from_text(&fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SimRng;
    use crate::result::RunOptions;

    /// 3-state approximate majority (blank 0, A 1, B 2).
    struct Am3;
    impl TableProtocol for Am3 {
        fn states(&self) -> usize {
            3
        }
        fn is_deterministic(&self) -> bool {
            true
        }
        fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
            match (a, b) {
                (1, 2) | (2, 1) => (a, 0),
                (1, 0) => (1, 1),
                (2, 0) => (2, 2),
                _ => (a, b),
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            if counts[0] == 0 && counts[2] == 0 {
                Some(1)
            } else if counts[0] == 0 && counts[1] == 0 {
                Some(2)
            } else {
                None
            }
        }
        fn opinion(&self, s: usize) -> Option<u32> {
            (s > 0).then_some(s as u32)
        }
    }

    fn demo_checkpoint() -> Checkpoint {
        Checkpoint {
            engine: "batch".to_string(),
            interactions: 12_345,
            interactions_base: 1_000,
            time_base: 1.25,
            rng: [1, 2, 3, u64::MAX],
            counts: vec![0, 600, 400],
            states: Vec::new(),
            initial: vec![0, 600, 400],
            series: vec![
                ChurnSample {
                    t: 2.0_f64.sqrt(),
                    population: 1000,
                    plurality_frac: 0.6,
                    output: None,
                },
                ChurnSample {
                    t: 2.5,
                    population: 998,
                    plurality_frac: 1.0,
                    output: Some(1),
                },
            ],
        }
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let ck = demo_checkpoint();
        let back = Checkpoint::from_text(&ck.to_text()).expect("parse");
        assert_eq!(back, ck);
        assert_eq!(back.series[0].t.to_bits(), ck.series[0].t.to_bits());
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "ppckpt v2\n",
            "ppckpt v1\nengine warp\n",
            "ppckpt v1\nengine batch\ninteractions x\n",
            &demo_checkpoint().to_text().replace("end", ""),
            &demo_checkpoint().to_text().replace("rng 1 2 3", "rng 1 2"),
            &demo_checkpoint().to_text().replace("counts 3", "counts 4"),
        ] {
            assert!(Checkpoint::from_text(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn mismatched_restores_are_errors_not_panics() {
        // Engine-tag mismatch: a batch snapshot refuses the other restores.
        let ck = demo_checkpoint();
        assert!(ck.restore_pairwise(Am3).is_err());
        assert!(ck.restore_seq(Am3).is_err());

        // State-space mismatch: counts longer than the protocol's table.
        let mut wide = demo_checkpoint();
        wide.counts = vec![0, 600, 400, 7];
        assert!(wide.restore_batch(Am3).is_err());

        // Degenerate population.
        let mut tiny = demo_checkpoint();
        tiny.counts = vec![0, 1, 0];
        assert!(tiny.restore_batch(Am3).is_err());

        // Seq snapshots validate the agent vector against the counts and
        // the protocol's state space.
        let mut seq = demo_checkpoint();
        seq.engine = "seq".to_string();
        seq.counts = vec![0, 2, 1];
        seq.states = vec![1, 1]; // one agent short of the counts
        assert!(seq.restore_seq(Am3).is_err());
        seq.states = vec![1, 1, 9]; // out-of-range state
        assert!(seq.restore_seq(Am3).is_err());
        seq.states = vec![1, 1, 2];
        assert!(seq.restore_seq(Am3).is_ok());
    }

    #[test]
    fn torn_writes_are_never_observed_by_read() {
        let dir = std::env::temp_dir().join(format!("ppckpt-torn-{}", std::process::id()));
        let path = dir.join("soak.ckpt");
        let v1 = demo_checkpoint();
        v1.write(&path).expect("write v1");
        // The atomic write leaves no temporary file behind.
        assert!(!dir.join("soak.ckpt.tmp").exists());

        // Simulate a crash mid-way through writing the *next* checkpoint:
        // the victim of a torn write is the .tmp sibling, never `path`.
        let mut v2 = v1.clone();
        v2.interactions = 99_999;
        let torn = &v2.to_text()[..v2.to_text().len() / 2];
        fs::write(dir.join("soak.ckpt.tmp"), torn).expect("plant torn tmp");
        let seen = Checkpoint::read(&path).expect("read after torn tmp");
        assert_eq!(seen, v1, "a torn write must never corrupt the live file");

        // And had the kill happened before any checkpoint completed, the
        // torn bytes themselves are rejected with a typed error, no panic.
        assert!(Checkpoint::from_text(torn).is_err());

        // A completed second write atomically replaces the first.
        v2.write(&path).expect("write v2");
        assert_eq!(Checkpoint::read(&path).expect("read v2"), v2);
        assert!(!dir.join("soak.ckpt.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_restore_replays_the_exact_stream() {
        let mut sim = BatchSimulation::new(Am3, vec![0, 6_000, 4_000], 42);
        for _ in 0..20 {
            sim.step_batch();
        }
        let ck = Checkpoint::of_batch(&sim, &[0, 6_000, 4_000], &[]);
        let mut resumed = ck.restore_batch(Am3).expect("restore");
        assert_eq!(resumed.counts(), sim.counts());
        assert_eq!(resumed.interactions(), sim.interactions());
        for _ in 0..50 {
            sim.step_batch();
            resumed.step_batch();
            assert_eq!(resumed.counts(), sim.counts());
            assert_eq!(resumed.interactions(), sim.interactions());
        }
    }

    #[test]
    fn pairwise_restore_replays_the_exact_stream() {
        let mut sim = PairwiseBatchSimulation::new(Am3, vec![0, 700, 300], 7);
        for _ in 0..10 {
            sim.step_batch();
        }
        let ck = Checkpoint::of_pairwise(&sim, &[0, 700, 300], &[]);
        let parsed = Checkpoint::from_text(&ck.to_text()).expect("parse");
        let mut resumed = parsed.restore_pairwise(Am3).expect("restore");
        for _ in 0..30 {
            sim.step_batch();
            resumed.step_batch();
            assert_eq!(resumed.counts(), sim.counts());
        }
    }

    #[test]
    fn seq_restore_replays_the_exact_stream() {
        let initial = [0u64, 70, 30];
        let states = SeqTable::<Am3>::initial_states(&initial);
        let mut sim = Simulation::new(SeqTable::new(Am3), states, 5);
        let opts = RunOptions {
            max_interactions: 500,
            check_every: 0,
        };
        sim.run(&opts);
        let ck = Checkpoint::of_seq(&sim, &initial, &[]);
        assert_eq!(ck.counts.iter().sum::<u64>(), 100);
        let mut resumed = ck.restore_seq(Am3).expect("restore");
        assert_eq!(resumed.states(), sim.states());
        for _ in 0..200 {
            let a = sim.step();
            let b = resumed.step();
            assert_eq!(a, b);
            assert_eq!(resumed.states(), sim.states());
        }
    }
}
