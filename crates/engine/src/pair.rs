//! Sampling and mutably borrowing a random ordered pair of agents.

use rand::Rng;

use crate::protocol::SimRng;

/// Draw an ordered pair of distinct indices uniformly from `0..n`.
///
/// Hot path of the sequential scheduler: whenever `n·(n−1)` fits in a
/// `u64` (every population below 2³² agents), both indices come out of a
/// *single* bounded draw from `0..n·(n−1)` (Lemire multiply-shift inside
/// the RNG's `gen_range`) decomposed as `(v / (n−1), v mod (n−1))` —
/// instead of two bounded draws.
///
/// # Panics
///
/// Panics if `n < 2`.
#[inline]
pub fn sample_pair(rng: &mut SimRng, n: usize) -> (usize, usize) {
    debug_assert!(n >= 2, "population must contain at least two agents");
    let i;
    let mut j;
    if n as u64 <= 1u64 << 32 {
        let pairs = (n as u64) * (n as u64 - 1);
        let v = rng.gen_range(0..pairs);
        i = (v / (n as u64 - 1)) as usize;
        j = (v % (n as u64 - 1)) as usize;
    } else {
        i = rng.gen_range(0..n);
        j = rng.gen_range(0..n - 1);
    }
    if j >= i {
        j += 1;
    }
    (i, j)
}

/// Obtain simultaneous mutable references to two distinct slice elements.
///
/// # Panics
///
/// Panics if `i == j` or either index is out of bounds.
#[inline]
pub fn pair_mut<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "pair_mut requires distinct indices");
    if i < j {
        let (lo, hi) = slice.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_pair_is_distinct_and_in_range() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let (i, j) = sample_pair(&mut rng, 5);
            assert_ne!(i, j);
            assert!(i < 5 && j < 5);
        }
    }

    #[test]
    fn sample_pair_covers_all_ordered_pairs() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(sample_pair(&mut rng, n));
        }
        assert_eq!(seen.len(), n * (n - 1));
    }

    #[test]
    fn sample_pair_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 3;
        let trials = 60_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            *counts.entry(sample_pair(&mut rng, n)).or_insert(0u32) += 1;
        }
        let expect = trials as f64 / (n * (n - 1)) as f64;
        for (&pair, &c) in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "pair {pair:?} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn one_word_path_is_uniform_over_ordered_pairs() {
        // n = 100 exercises the single-RNG-word decomposition; every
        // ordered pair must appear with frequency 1/(n·(n−1)).
        let mut rng = SimRng::seed_from_u64(21);
        let n = 100;
        let trials = 2_000_000;
        let mut counts = vec![0u32; n * n];
        for _ in 0..trials {
            let (i, j) = sample_pair(&mut rng, n);
            assert_ne!(i, j);
            counts[i * n + j] += 1;
        }
        let expect = trials as f64 / (n * (n - 1)) as f64;
        let mut worst = 0.0f64;
        for i in 0..n {
            assert_eq!(counts[i * n + i], 0, "self-pair ({i},{i}) drawn");
            for j in 0..n {
                if i != j {
                    worst = worst.max((counts[i * n + j] as f64 - expect).abs() / expect);
                }
            }
        }
        // ~200 expected per cell; 5σ ≈ 0.35 relative.
        assert!(worst < 0.4, "worst cell deviation {worst:.3}");
    }

    #[test]
    fn pair_mut_returns_correct_elements() {
        let mut v = vec![10, 20, 30, 40];
        {
            let (a, b) = pair_mut(&mut v, 1, 3);
            assert_eq!((*a, *b), (20, 40));
            *a = 21;
            *b = 41;
        }
        {
            let (a, b) = pair_mut(&mut v, 3, 1);
            assert_eq!((*a, *b), (41, 21));
        }
        assert_eq!(v, vec![10, 21, 30, 41]);
    }

    #[test]
    #[should_panic]
    fn pair_mut_rejects_equal_indices() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }
}
