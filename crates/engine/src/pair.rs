//! Sampling and mutably borrowing a random ordered pair of agents.

use rand::Rng;

use crate::protocol::SimRng;

/// Draw an ordered pair of distinct indices uniformly from `0..n`.
///
/// # Panics
///
/// Panics if `n < 2`.
#[inline]
pub fn sample_pair(rng: &mut SimRng, n: usize) -> (usize, usize) {
    debug_assert!(n >= 2, "population must contain at least two agents");
    let i = rng.gen_range(0..n);
    let mut j = rng.gen_range(0..n - 1);
    if j >= i {
        j += 1;
    }
    (i, j)
}

/// Obtain simultaneous mutable references to two distinct slice elements.
///
/// # Panics
///
/// Panics if `i == j` or either index is out of bounds.
#[inline]
pub fn pair_mut<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "pair_mut requires distinct indices");
    if i < j {
        let (lo, hi) = slice.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_pair_is_distinct_and_in_range() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let (i, j) = sample_pair(&mut rng, 5);
            assert_ne!(i, j);
            assert!(i < 5 && j < 5);
        }
    }

    #[test]
    fn sample_pair_covers_all_ordered_pairs() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(sample_pair(&mut rng, n));
        }
        assert_eq!(seen.len(), n * (n - 1));
    }

    #[test]
    fn sample_pair_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 3;
        let trials = 60_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            *counts.entry(sample_pair(&mut rng, n)).or_insert(0u32) += 1;
        }
        let expect = trials as f64 / (n * (n - 1)) as f64;
        for (&pair, &c) in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "pair {pair:?} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn pair_mut_returns_correct_elements() {
        let mut v = vec![10, 20, 30, 40];
        {
            let (a, b) = pair_mut(&mut v, 1, 3);
            assert_eq!((*a, *b), (20, 40));
            *a = 21;
            *b = 41;
        }
        {
            let (a, b) = pair_mut(&mut v, 3, 1);
            assert_eq!((*a, *b), (41, 21));
        }
        assert_eq!(v, vec![10, 21, 30, 41]);
    }

    #[test]
    #[should_panic]
    fn pair_mut_rejects_equal_indices() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }
}
